"""Contract-checker overhead benchmark.

Run with::

    pytest benchmarks/test_bench_contract.py --benchmark-only -s

One acceptance gate guards the static/dynamic contract checker:

* ``bench_contract_disarmed_gate`` — a disarmed
  :class:`~repro.analysis.ContractChecker` installed as the simulation
  collector must cost < 5% over a plain no-collector run.  Disarmed,
  the checker advertises an unreachable sampling phase (rate
  ``2**60``, seed 1); the driver detects that no sample can ever fire
  and short-circuits to the no-collector path, so the whole checker
  reduces to one reachability test at simulation start.  A regression
  here means contract checking leaked work into the common case.

Unlike the profiler/telemetry gates (median of interleaved pair
ratios), this gate compares the *minimum* pass time of each arm over
interleaved A/B runs.  Load spikes only ever inflate a timing, never
deflate it, so the min-to-min ratio converges on the systematic
overhead even on a noisy box where pairwise medians cannot settle
under a 5% gate.
"""

import time

from benchmarks.conftest import emit_gate, run_once
from repro.analysis import ContractChecker, StaticContract
from repro.compiler.config import HYPERBLOCK
from repro.predictors import make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import get_workload

#: Interleaved A/B repetitions per batch.
REPS = 11

#: Extra batches allowed when the first ratio lands over the gate.
MAX_BATCHES = 3

#: Simulations per measurement: enough that one pass takes a few
#: hundred milliseconds, keeping timer noise well under the gate.
SIMS_PER_REP = 8


def _one_pass(trace, options, collector_factory=None):
    start = time.perf_counter()
    for _ in range(SIMS_PER_REP):
        collector = collector_factory() if collector_factory else None
        simulate(
            trace,
            make_predictor("gshare", entries=4096),
            options,
            collector=collector,
        )
    return time.perf_counter() - start


def _gated_ratio(trace, options, collector_factory, gate):
    """Best-instrumented over best-plain ratio, interleaved arms."""
    _one_pass(trace, options)  # warm caches before timing anything
    measured = {}
    instrumented = []
    plain = []
    for _ in range(MAX_BATCHES):
        for _ in range(REPS):
            instrumented.append(
                _one_pass(trace, options, collector_factory)
            )
            plain.append(_one_pass(trace, options))
        measured["ratio"] = min(instrumented) / min(plain)
        measured["pairs"] = len(plain)
        if measured["ratio"] - 1.0 < gate:
            break  # settled under the gate; don't burn more time
    return measured


def bench_contract_disarmed_gate(benchmark):
    """Disarmed ContractChecker vs no collector: < 5%."""
    workload = get_workload("compress")
    executable = workload.compile("small", HYPERBLOCK).executable
    contract = StaticContract.for_executable(executable, name="compress")
    trace = workload.trace(scale="small")
    options = SimOptions()

    def factory():
        return ContractChecker(contract, armed=False)

    measured = {}

    def compare():
        measured.update(_gated_ratio(trace, options, factory, gate=0.05))

    run_once(benchmark, compare)
    overhead = measured["ratio"] - 1.0
    print(
        f"\ndisarmed contract-checker overhead: {100 * overhead:+.2f}% "
        f"(min-to-min over {measured['pairs']} interleaved passes, "
        f"{SIMS_PER_REP} sims each)"
    )
    emit_gate(
        "contract_disarmed_overhead",
        overhead=overhead, pairs=measured["pairs"],
    )
    assert overhead < 0.05, (
        "disarmed contract-checker overhead on simulate() exceeded 5%: "
        f"{100 * overhead:.2f}%"
    )
