"""Benchmark-harness configuration.

Each benchmark regenerates one reconstructed paper artefact (table or
figure) and prints its rows, so ``pytest benchmarks/ --benchmark-only -s``
reproduces the full evaluation.  Traces are pre-built once per session
(the on-disk cache makes repeat runs cheap); the benchmark timings then
measure the simulation harness itself.

Gate benchmarks additionally report their measured numbers through
:func:`emit_gate`, so every threshold assertion also leaves a
machine-readable trail: at session end the collected numbers are written
as JSON to ``$REPRO_BENCH_JSON`` (when set) and appended to the
run-history store as a ``benchmark`` RunRecord when
``$REPRO_BENCH_RECORD=1`` (store root per ``$REPRO_RUNSTORE``) — the
longitudinal feed ``repro history trend`` draws gate timelines from.
The assertions themselves are unchanged; recording never gates.
"""

import json
import os

import pytest

from repro.workloads import all_workloads

#: Scale used by the benchmark harness: small enough for CI, large
#: enough that rates are stable.
BENCH_SCALE = "tiny"

#: Technique-sensitive subset used by the heavier sweeps.
BENCH_SUBSET = ["compress", "grep", "nbody", "lexer"]

#: Measured gate numbers collected this session: gate name -> metrics.
GATE_RESULTS = {}


@pytest.fixture(scope="session", autouse=True)
def warm_traces():
    """Populate the trace cache before timing anything."""
    for workload in all_workloads():
        workload.trace(scale=BENCH_SCALE, hyperblocks=False)
        workload.trace(scale=BENCH_SCALE, hyperblocks=True)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def emit_gate(name: str, **metrics) -> None:
    """Record one gate's measured numbers (floats) for export."""
    GATE_RESULTS[name] = {
        key: float(value) for key, value in sorted(metrics.items())
    }


def pytest_sessionfinish(session, exitstatus):
    if not GATE_RESULTS:
        return
    payload = {
        "gates": {name: dict(values)
                  for name, values in sorted(GATE_RESULTS.items())},
        "scale": BENCH_SCALE,
    }
    out = os.environ.get("REPRO_BENCH_JSON", "").strip()
    if out:
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if os.environ.get("REPRO_BENCH_RECORD", "").strip() == "1":
        from repro.runstore import RunRecord, RunStore

        record = RunRecord(
            kind="benchmark", label="gates", scale=BENCH_SCALE,
            metrics={
                f"gates.{gate}.{metric}": value
                for gate, values in sorted(GATE_RESULTS.items())
                for metric, value in values.items()
            },
            command="pytest benchmarks/ --benchmark-only",
        )
        RunStore().add(record.seal())
