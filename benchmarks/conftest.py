"""Benchmark-harness configuration.

Each benchmark regenerates one reconstructed paper artefact (table or
figure) and prints its rows, so ``pytest benchmarks/ --benchmark-only -s``
reproduces the full evaluation.  Traces are pre-built once per session
(the on-disk cache makes repeat runs cheap); the benchmark timings then
measure the simulation harness itself.
"""

import pytest

from repro.workloads import all_workloads

#: Scale used by the benchmark harness: small enough for CI, large
#: enough that rates are stable.
BENCH_SCALE = "tiny"

#: Technique-sensitive subset used by the heavier sweeps.
BENCH_SUBSET = ["compress", "grep", "nbody", "lexer"]


@pytest.fixture(scope="session", autouse=True)
def warm_traces():
    """Populate the trace cache before timing anything."""
    for workload in all_workloads():
        workload.trace(scale=BENCH_SCALE, hyperblocks=False)
        workload.trace(scale=BENCH_SCALE, hyperblocks=True)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
