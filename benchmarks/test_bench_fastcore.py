"""Speedup gates for the fast simulation cores.

Run with::

    pytest benchmarks/test_bench_fastcore.py --benchmark-only -s

Two acceptance gates, both on an E2-style grid (gshare capacity sweep
over the technique-sensitive workload subset, small scale):

* ``bench_fastcore_speedup_gate`` — the flat-kernel core must push
  ``sweep.points_per_second`` at least 5x the object core's, with
  bit-identical results.
* ``bench_numpy_vs_fast_gate`` — the numpy-batched backend must be at
  least as fast as the scalar fast loop on gshare (the table-indexed
  case it exists for).

Both report their measured numbers through :func:`emit_gate`, so the
run-history store tracks the trend behind the thresholds.
"""

from benchmarks.conftest import BENCH_SUBSET, emit_gate, run_once
from repro import telemetry
from repro.predictors import make_predictor
from repro.sim import SimOptions, sweep
from repro.workloads import get_workload

#: Same reasoning as the sweep benchmark: per-point work must dwarf
#: fixed overheads for a throughput ratio to mean anything.
SCALE = "small"

#: E2's capacity axis: gshare at the paper's four table sizes.
SIZES = (256, 1024, 4096, 16384)

#: Minimum accepted points-per-second ratio, fast core vs object core.
#: Measured ~8x warm; 5x leaves room for noisy CI machines.
FAST_SPEEDUP_FLOOR = 5.0


def _grid():
    traces = {
        name: get_workload(name).trace(scale=SCALE)
        for name in BENCH_SUBSET
    }
    factories = {
        f"gshare{size}": (
            lambda size=size: make_predictor("gshare", entries=size)
        )
        for size in SIZES
    }
    return traces, factories, [SimOptions()]


def _run_sweep(traces, factories, grid, core):
    """One sweep under a fresh registry; (results, snapshot)."""
    with telemetry.use_registry(telemetry.MetricsRegistry()) as registry:
        results = sweep(traces, factories, grid, core=core)
    return results, registry.snapshot()


def _points_per_second(snapshot):
    return snapshot["gauges"]["sweep.points_per_second"]


def _fingerprint(results):
    return [
        (r.workload, r.predictor, r.branches, r.mispredictions,
         r.squashed)
        for r in results
    ]


def _best_throughput(traces, factories, grid, core, repeats):
    """Best points-per-second over ``repeats`` runs (noise floor)."""
    best = 0.0
    snapshot = None
    results = None
    for _ in range(repeats):
        results, snap = _run_sweep(traces, factories, grid, core)
        pps = _points_per_second(snap)
        if pps > best:
            best, snapshot = pps, snap
    return best, results, snapshot


def bench_fastcore_speedup_gate(benchmark):
    """Flat kernels >= 5x object-core sweep throughput, identically."""
    traces, factories, grid = _grid()
    measured = {}

    def compare():
        obj_pps, obj_results, _ = _best_throughput(
            traces, factories, grid, "object", repeats=2
        )
        fast_pps, fast_results, fast_snap = _best_throughput(
            traces, factories, grid, "fast", repeats=3
        )
        measured.update(
            object_pps=obj_pps,
            fast_pps=fast_pps,
            identical=_fingerprint(obj_results)
            == _fingerprint(fast_results),
            replay_bps=fast_snap["gauges"].get(
                "fastcore.replay_branches_per_second", 0.0
            ),
        )

    run_once(benchmark, compare)
    speedup = measured["fast_pps"] / measured["object_pps"]
    emit_gate(
        "fastcore_speedup",
        object_points_per_second=measured["object_pps"],
        fast_points_per_second=measured["fast_pps"],
        speedup=speedup,
        replay_branches_per_second=measured["replay_bps"],
        identical=float(measured["identical"]),
    )
    print(
        f"\nobject {measured['object_pps']:.2f} pts/s, "
        f"fast {measured['fast_pps']:.2f} pts/s, "
        f"speedup {speedup:.1f}x; replay "
        f"{measured['replay_bps'] / 1e6:.1f} M branches/s"
    )
    assert measured["identical"], "fast core diverged from object core"
    assert measured["replay_bps"] > 0.0, (
        "fastcore.replay_branches_per_second gauge was not set"
    )
    assert speedup >= FAST_SPEEDUP_FLOOR, (
        f"fast core speedup {speedup:.2f}x is below the "
        f"{FAST_SPEEDUP_FLOOR:.0f}x floor"
    )


def bench_numpy_vs_fast_gate(benchmark):
    """The batched backend must not lose to the scalar fast loop."""
    traces, factories, grid = _grid()
    measured = {}

    def compare():
        # Alternate the two cores run to run so drift in machine load
        # hits both sides, then compare the best of each.
        fast_best, fast_results = 0.0, None
        numpy_best, numpy_results = 0.0, None
        for _ in range(3):
            results, snap = _run_sweep(traces, factories, grid, "fast")
            fast_best = max(fast_best, _points_per_second(snap))
            fast_results = results
            results, snap = _run_sweep(traces, factories, grid, "numpy")
            numpy_best = max(numpy_best, _points_per_second(snap))
            numpy_results = results
        measured.update(
            fast_pps=fast_best,
            numpy_pps=numpy_best,
            identical=_fingerprint(fast_results)
            == _fingerprint(numpy_results),
        )

    run_once(benchmark, compare)
    ratio = measured["numpy_pps"] / measured["fast_pps"]
    emit_gate(
        "fastcore_numpy_vs_fast",
        fast_points_per_second=measured["fast_pps"],
        numpy_points_per_second=measured["numpy_pps"],
        ratio=ratio,
    )
    print(
        f"\nfast {measured['fast_pps']:.2f} pts/s, "
        f"numpy {measured['numpy_pps']:.2f} pts/s, "
        f"ratio {ratio:.2f}x"
    )
    assert measured["identical"], "numpy core diverged from fast core"
    assert ratio >= 1.0, (
        f"numpy backend was slower than the scalar fast loop "
        f"({ratio:.2f}x)"
    )
