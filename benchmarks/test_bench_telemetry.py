"""Telemetry overhead benchmarks.

Run with::

    pytest benchmarks/test_bench_telemetry.py --benchmark-only -s

``bench_nullsink_overhead_gate`` is the acceptance check for the
telemetry subsystem: with the default :class:`NullSink` and coarse
end-of-run counters, instrumented :func:`simulate` must run within 3%
of the fully disabled path.  The gate compares min-of-N timings — the
instrumentation's true cost is a few dozen dict operations per
*simulation* (never per branch), so anything above noise level fails.
"""

import time

from benchmarks.conftest import emit_gate, run_once
from repro import telemetry
from repro.predictors import make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import get_workload

#: Interleaved A/B repetitions per batch; the median pairwise ratio
#: suppresses scheduler noise and clock-speed drift.
REPS = 11

#: Extra batches allowed when the first median lands over the gate —
#: the verdict is the median of *all* pairs collected, so a borderline
#: first batch gets outvoted by quieter ones rather than deciding alone.
MAX_BATCHES = 3

#: Simulations per measurement: enough that one pass takes a few
#: hundred milliseconds, keeping timer noise well under the 3% gate.
SIMS_PER_REP = 8


def _one_pass(trace):
    start = time.perf_counter()
    for _ in range(SIMS_PER_REP):
        simulate(
            trace,
            make_predictor("gshare", entries=4096),
            SimOptions(),
        )
    return time.perf_counter() - start


def bench_nullsink_overhead_gate(benchmark):
    """Instrumented-with-NullSink vs telemetry fully disabled: < 3%.

    Each repetition times the two configurations back to back and
    yields one instrumented/disabled ratio; clock-speed drift or a load
    spike hits both halves of a pair alike, and the median ratio
    discards the pairs it didn't.
    """
    trace = get_workload("compress").trace(scale="small")
    measured = {}

    def compare():
        with telemetry.disabled():
            _one_pass(trace)  # warm caches before timing anything
        ratios = []
        for batch in range(MAX_BATCHES):
            for _ in range(REPS):
                with telemetry.use_registry(telemetry.MetricsRegistry()):
                    instrumented = _one_pass(trace)
                with telemetry.disabled():
                    disabled = _one_pass(trace)
                ratios.append(instrumented / disabled)
            ordered = sorted(ratios)
            measured["ratio"] = ordered[len(ordered) // 2]
            measured["ratios"] = ordered
            measured["pairs"] = len(ratios)
            if measured["ratio"] - 1.0 < 0.03:
                break  # settled under the gate; don't burn more time

    run_once(benchmark, compare)
    overhead = measured["ratio"] - 1.0
    emit_gate(
        "nullsink_overhead",
        overhead=overhead,
        pairs=measured["pairs"],
        spread_low=measured["ratios"][0] - 1.0,
        spread_high=measured["ratios"][-1] - 1.0,
    )
    print(
        f"\noverhead {100 * overhead:+.2f}% (median of "
        f"{measured['pairs']} interleaved pairs, {SIMS_PER_REP} sims "
        f"each; spread "
        f"{100 * (measured['ratios'][0] - 1):+.2f}% .. "
        f"{100 * (measured['ratios'][-1] - 1):+.2f}%)"
    )
    assert overhead < 0.03, (
        "NullSink telemetry overhead on simulate() exceeded 3%: "
        f"{100 * overhead:.2f}%"
    )


def bench_jsonl_sink_sweep(benchmark):
    """A small instrumented sweep with a live JsonlSink (no gate)."""
    import tempfile
    from pathlib import Path

    from repro.sim import sweep

    trace = get_workload("crc").trace(scale="tiny")
    traces = {"crc": trace}
    factories = {"gshare256": lambda: make_predictor("gshare", entries=256)}
    grid = [SimOptions(), SimOptions(distance=8)]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.jsonl"

        def instrumented_sweep():
            registry = telemetry.MetricsRegistry()
            with telemetry.JsonlSink(path) as sink, \
                    telemetry.use_sink(sink), \
                    telemetry.use_registry(registry):
                sweep(traces, factories, grid)
                sink.emit({"event": "metrics", **registry.snapshot()})

        run_once(benchmark, instrumented_sweep)
        events = telemetry.read_events(path)
    assert events[-1]["event"] == "metrics"
    assert events[-1]["counters"]["sweep.points_completed"] == 2
