"""Benchmarks for the parallel sweep engine.

Run with::

    pytest benchmarks/test_bench_sweep.py --benchmark-only -s

``bench_parallel_sweep_speedup`` is the acceptance check for the
parallel executor: a 32-point grid must run measurably faster with 4
workers than serially, while returning bit-identical results.
"""

import os
import time

import pytest

from benchmarks.conftest import BENCH_SUBSET, emit_gate, run_once
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, sweep
from repro.workloads import get_workload

#: The sweep benchmark uses the bigger scale: per-point work must dwarf
#: the pool startup cost for the speedup measurement to mean anything.
SWEEP_SCALE = "small"

GRID_OPTIONS = [
    SimOptions(),
    SimOptions(distance=8),
    SimOptions(distance=16),
    SimOptions(sfp=SFPConfig()),
    SimOptions(pgu=PGUConfig()),
    SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
    SimOptions(sfp=SFPConfig(), pgu=PGUConfig(), distance=8),
    SimOptions(delayed_update=True),
]


def _grid():
    traces = {
        name: get_workload(name).trace(scale=SWEEP_SCALE)
        for name in BENCH_SUBSET
    }
    factories = {
        "gshare4k": lambda: make_predictor("gshare", entries=4096),
    }
    return traces, factories, GRID_OPTIONS


def bench_sweep_serial(benchmark):
    traces, factories, grid = _grid()
    results = run_once(benchmark, sweep, traces, factories, grid)
    assert len(results) == len(traces) * len(grid)


def bench_sweep_parallel_4workers(benchmark):
    traces, factories, grid = _grid()
    results = run_once(
        benchmark, sweep, traces, factories, grid, workers=4
    )
    assert len(results) == len(traces) * len(grid)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_parallel_sweep_speedup(benchmark):
    """Serial vs 4 workers on one grid: assert a real wall-clock win.

    On a single-CPU machine a process pool cannot beat serial execution
    (there is nothing to run in parallel *on*), so the speedup assertion
    only applies when at least two CPUs are usable; determinism is
    asserted regardless.
    """
    traces, factories, grid = _grid()
    measured = {}

    def compare():
        start = time.perf_counter()
        serial = sweep(traces, factories, grid)
        measured["serial"] = time.perf_counter() - start
        start = time.perf_counter()
        parallel = sweep(traces, factories, grid, workers=4)
        measured["parallel"] = time.perf_counter() - start
        measured["identical"] = [
            (r.workload, r.predictor, r.options, r.mispredictions,
             r.squashed, r.branches)
            for r in serial
        ] == [
            (r.workload, r.predictor, r.options, r.mispredictions,
             r.squashed, r.branches)
            for r in parallel
        ]

    run_once(benchmark, compare)
    speedup = measured["serial"] / measured["parallel"]
    emit_gate(
        "parallel_sweep_speedup",
        serial_seconds=measured["serial"],
        parallel_seconds=measured["parallel"],
        speedup=speedup,
        identical=float(measured["identical"]),
    )
    print(
        f"\nserial {measured['serial']:.2f}s, "
        f"4 workers {measured['parallel']:.2f}s, "
        f"speedup {speedup:.2f}x over {len(BENCH_SUBSET) * len(GRID_OPTIONS)}"
        f" points on {_usable_cpus()} CPU(s)"
    )
    assert measured["identical"], "parallel results diverged from serial"
    if _usable_cpus() < 2:
        pytest.skip("speedup needs >= 2 CPUs; determinism verified")
    assert measured["parallel"] < measured["serial"], (
        "4-worker sweep was not faster than serial: "
        f"{measured['parallel']:.2f}s vs {measured['serial']:.2f}s"
    )
