"""One benchmark per reconstructed table/figure (E1..E11).

Run with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark prints the regenerated rows; EXPERIMENTS.md records how
they compare with the paper.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SUBSET, run_once
from repro.experiments import get_experiment


def _run(benchmark, exp_id, workloads=None, **kw):
    module = get_experiment(exp_id)
    kwargs = {"scale": BENCH_SCALE}
    if workloads is not None:
        kwargs["workloads"] = workloads
    code = module.run.__code__
    if "fast" in code.co_varnames[: code.co_argcount]:
        kwargs["fast"] = True
    kwargs.update(kw)
    result = run_once(benchmark, module.run, **kwargs)
    print()
    print(result.format())
    return result


def bench_e1_characterisation(benchmark):
    result = _run(benchmark, "E1")
    assert all(r["branch_reduction"] > 0 for r in result.rows)


def bench_e2_baseline_sizes(benchmark):
    result = _run(benchmark, "E2")
    assert result.rows[-1]["workload"] == "MEAN"


def bench_e3_sfp_coverage(benchmark):
    result = _run(benchmark, "E3")
    coverage = result.column("squashable")
    assert coverage == sorted(coverage, reverse=True)


def bench_e4_sfp(benchmark):
    result = _run(benchmark, "E4")
    mean = result.rows[-1]
    assert mean["sfp_filter"] <= mean["base"]


def bench_e5_pgu(benchmark):
    result = _run(benchmark, "E5")
    mean = result.rows[-1]
    assert mean["pgu_1024"] <= mean["base_1024"]


def bench_e6_combined(benchmark):
    result = _run(benchmark, "E6")
    mean = result.rows[-1]
    assert mean["both"] <= mean["base"]


def bench_e7_region_breakdown(benchmark):
    result = _run(benchmark, "E7")
    assert result.rows


def bench_e8_distance_sweep(benchmark):
    result = _run(benchmark, "E8", workloads=BENCH_SUBSET)
    coverage = result.column("squash_coverage")
    assert coverage == sorted(coverage, reverse=True)


def bench_e9_speedup(benchmark):
    result = _run(benchmark, "E9")
    assert result.rows[-1]["workload"] == "GEOMEAN"


def bench_e10_ablations(benchmark):
    result = _run(benchmark, "E10", workloads=BENCH_SUBSET)
    configs = {row["config"] for row in result.rows}
    assert "pgu/delay=0" in configs


def bench_e11_families(benchmark):
    result = _run(benchmark, "E11", workloads=BENCH_SUBSET)
    assert {row["predictor"] for row in result.rows} >= {
        "bimodal", "gshare", "local"
    }


def bench_e12_btb(benchmark):
    result = _run(benchmark, "E12", workloads=BENCH_SUBSET)
    assert all(row["techniques_speedup"] > 0 for row in result.rows)


def bench_e13_frontend(benchmark):
    result = _run(benchmark, "E13", workloads=BENCH_SUBSET)
    geomean = result.rows[-1]
    assert geomean["hyper_ipc"] > geomean["base_ipc"]


def bench_e14_confidence(benchmark):
    result = _run(benchmark, "E14", workloads=BENCH_SUBSET)
    by_config = {row["config"]: row for row in result.rows}
    assert by_config["sfp"]["perfect_cov"] > 0.0


def bench_e15_controlled(benchmark):
    result = _run(benchmark, "E15")
    noise_rows = [r for r in result.rows if r["knob"].startswith("noise=")]
    assert noise_rows[0]["benefit"] >= noise_rows[-1]["benefit"]
