"""Profiler overhead benchmarks.

Run with::

    pytest benchmarks/test_bench_profiler.py --benchmark-only -s

Two acceptance gates guard the :func:`simulate` hot loop:

* ``bench_collector_disabled_gate`` — with no collector installed the
  event machinery must cost < 3%.  The disabled path is a single
  sentinel integer comparison per branch (``i == next_sample`` with
  ``next_sample = -1``), so anything above noise level fails.
* ``bench_sampled_collection_gate`` — an :class:`AggregatingCollector`
  at 1-in-64 sampling must stay < 15% over the no-collector run.

Both compare interleaved A/B pairs and take the median pairwise ratio,
the same scheme as the telemetry gates: drift or a load spike hits both
halves of a pair alike, and the median discards the pairs it didn't.
"""

import time

from benchmarks.conftest import emit_gate, run_once
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.profiler import AggregatingCollector, ProfileSpec
from repro.sim import SimOptions, simulate
from repro.workloads import get_workload

#: Interleaved A/B repetitions per batch.
REPS = 11

#: Extra batches allowed when the first median lands over the gate.
MAX_BATCHES = 3

#: Simulations per measurement: enough that one pass takes a few
#: hundred milliseconds, keeping timer noise well under the gates.
SIMS_PER_REP = 8


def _one_pass(trace, options, collector_factory=None):
    start = time.perf_counter()
    for _ in range(SIMS_PER_REP):
        collector = collector_factory() if collector_factory else None
        simulate(
            trace,
            make_predictor("gshare", entries=4096),
            options,
            collector=collector,
        )
    return time.perf_counter() - start


def _gated_ratio(trace, options, collector_factory, gate):
    """Median instrumented/plain ratio over interleaved pairs."""
    _one_pass(trace, options)  # warm caches before timing anything
    measured = {}
    ratios = []
    for _ in range(MAX_BATCHES):
        for _ in range(REPS):
            with_collector = _one_pass(trace, options, collector_factory)
            plain = _one_pass(trace, options)
            ratios.append(with_collector / plain)
        ordered = sorted(ratios)
        measured["ratio"] = ordered[len(ordered) // 2]
        measured["ratios"] = ordered
        measured["pairs"] = len(ratios)
        if measured["ratio"] - 1.0 < gate:
            break  # settled under the gate; don't burn more time
    return measured


def _report(measured, label):
    overhead = measured["ratio"] - 1.0
    print(
        f"\n{label}: {100 * overhead:+.2f}% (median of "
        f"{measured['pairs']} interleaved pairs, {SIMS_PER_REP} sims "
        f"each; spread "
        f"{100 * (measured['ratios'][0] - 1):+.2f}% .. "
        f"{100 * (measured['ratios'][-1] - 1):+.2f}%)"
    )
    return overhead


def bench_collector_disabled_gate(benchmark):
    """Event machinery armed but never sampling vs no collector: < 3%.

    With ``collector=None`` the only trace of the profiler in the hot
    loop is one dead integer comparison against a ``-1`` sentinel — the
    pre-profiler loop is not timeable at runtime, so the gate instead
    installs a collector whose sampling phase lies past the end of the
    trace.  The driver detects that no sample can ever fire and
    short-circuits to the no-collector path (no event closure, no
    per-branch sentinel work), so the gate requires that installing it
    costs < 3%.  Any regression that charges the common case for a
    collector that never fires trips this.
    """
    trace = get_workload("compress").trace(scale="small")
    options = SimOptions()
    # seed=1 puts the first (only) sample at seq rate-1, past the
    # last branch: armed, never fires.
    spec = ProfileSpec(rate=trace.num_branches + 2, seed=1)

    def factory():
        return AggregatingCollector(spec, workload="compress")

    measured = {}

    def compare():
        measured.update(_gated_ratio(trace, options, factory, gate=0.03))

    run_once(benchmark, compare)
    overhead = _report(measured, "armed-but-idle collector overhead")
    emit_gate(
        "profiler_idle_overhead",
        overhead=overhead, pairs=measured["pairs"],
    )
    assert overhead < 0.03, (
        "idle-collector overhead on simulate() exceeded 3%: "
        f"{100 * overhead:.2f}%"
    )


def bench_sampled_collection_gate(benchmark):
    """AggregatingCollector at 1-in-64 sampling vs no collector: < 15%."""
    trace = get_workload("compress").trace(scale="small")
    options = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())
    spec = ProfileSpec(rate=64)

    def factory():
        return AggregatingCollector(spec, workload="compress")

    measured = {}

    def compare():
        measured.update(_gated_ratio(trace, options, factory, gate=0.15))

    run_once(benchmark, compare)
    overhead = _report(measured, "1-in-64 sampling overhead")
    emit_gate(
        "profiler_sampled_overhead",
        overhead=overhead, pairs=measured["pairs"],
    )
    assert overhead < 0.15, (
        "1-in-64 sampled profiling overhead on simulate() exceeded "
        f"15%: {100 * overhead:.2f}%"
    )
