"""Distributed-tracing overhead benchmarks.

Run with::

    pytest benchmarks/test_bench_tracing.py --benchmark-only -s

Two acceptance gates for the tracing subsystem:

* ``bench_tracing_disabled_overhead_gate`` — with tracing compiled in
  but switched off (the default), instrumented :func:`simulate` must
  run within 3% of a build that never heard of tracing.  Off-path cost
  is one flag check per ``trace_span`` entry, so anything above timer
  noise fails.
* ``bench_tracing_enabled_overhead_gate`` — with tracing fully on
  (collector installed, every ``sim.driver`` span recorded), the same
  workload must stay within 10%.  Spans are per *simulation*, never per
  branch, so the on-path cost is a couple of hashes and one dict
  append per sim.

Both use the interleaved-pair protocol from the telemetry gate: each
repetition times the two configurations back to back and yields one
ratio; the median pairwise ratio discards drift and load spikes.
"""

import time

from benchmarks.conftest import emit_gate, run_once
from repro import telemetry
from repro.predictors import make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import get_workload

#: Interleaved A/B repetitions per batch (median pairwise ratio).
REPS = 11

#: Extra batches allowed when the first median lands over the gate.
MAX_BATCHES = 3

#: Simulations per measurement: a few hundred milliseconds per pass
#: keeps timer noise well under the 3% gate.
SIMS_PER_REP = 8

DISABLED_GATE = 0.03
ENABLED_GATE = 0.10


def _one_pass(trace):
    start = time.perf_counter()
    for _ in range(SIMS_PER_REP):
        simulate(
            trace,
            make_predictor("gshare", entries=4096),
            SimOptions(),
        )
    return time.perf_counter() - start


def _gate(benchmark, name, gate, traced_pass):
    """Interleaved traced-vs-baseline comparison, median of all pairs."""
    trace = get_workload("compress").trace(scale="small")
    measured = {}

    def compare():
        _one_pass(trace)  # warm trace/plan caches before timing
        ratios = []
        for _ in range(MAX_BATCHES):
            for _ in range(REPS):
                with telemetry.use_registry(telemetry.MetricsRegistry()):
                    traced = traced_pass(trace)
                with telemetry.use_registry(telemetry.MetricsRegistry()):
                    with telemetry.use_tracing(False):
                        baseline = _one_pass(trace)
                ratios.append(traced / baseline)
            ordered = sorted(ratios)
            measured["ratio"] = ordered[len(ordered) // 2]
            measured["ratios"] = ordered
            measured["pairs"] = len(ratios)
            if measured["ratio"] - 1.0 < gate:
                break  # settled under the gate; don't burn more time

    run_once(benchmark, compare)
    overhead = measured["ratio"] - 1.0
    emit_gate(
        name,
        overhead=overhead,
        pairs=measured["pairs"],
        spread_low=measured["ratios"][0] - 1.0,
        spread_high=measured["ratios"][-1] - 1.0,
    )
    print(
        f"\noverhead {100 * overhead:+.2f}% (median of "
        f"{measured['pairs']} interleaved pairs, {SIMS_PER_REP} sims "
        f"each; spread "
        f"{100 * (measured['ratios'][0] - 1):+.2f}% .. "
        f"{100 * (measured['ratios'][-1] - 1):+.2f}%)"
    )
    assert overhead < gate, (
        f"{name} on simulate() exceeded {100 * gate:.0f}%: "
        f"{100 * overhead:.2f}%"
    )


def bench_tracing_disabled_overhead_gate(benchmark):
    """Tracing off (the default) vs tracing off: < 3% — i.e. noise.

    Both halves run with tracing disabled; the traced half still goes
    through every ``trace_span`` call site, so the ratio isolates the
    cost of the flag checks the instrumentation added to the hot path.
    """

    def traced_pass(trace):
        with telemetry.use_tracing(False):
            return _one_pass(trace)

    _gate(benchmark, "tracing_disabled_overhead", DISABLED_GATE,
          traced_pass)


def bench_tracing_enabled_overhead_gate(benchmark):
    """Tracing fully on (collector + every span recorded): < 10%."""

    def traced_pass(trace):
        collector = telemetry.SpanCollector()
        with telemetry.use_tracing(True), \
                telemetry.use_collector(collector):
            elapsed = _one_pass(trace)
        assert len(collector) == SIMS_PER_REP  # one sim.driver span each
        return elapsed

    _gate(benchmark, "tracing_enabled_overhead", ENABLED_GATE,
          traced_pass)
