"""Latency and throughput gates for the ``repro serve`` daemon.

Run with::

    pytest benchmarks/test_bench_serve.py --benchmark-only -s

Two acceptance gates, one live daemon (inline executor, private store):

* ``bench_serve_memoization_gate`` — a warm cache hit (the run-history
  store lookup path) must answer at least 20x faster than the cold
  simulate that populated it;
* the same gate measures sustained memoized throughput over concurrent
  keep-alive connections, which must clear 200 req/s.

Both numbers ride out through :func:`emit_gate`, so
``$REPRO_BENCH_JSON`` (committed as ``BENCH_serve.json``) and the
run-history store track the daemon's service-latency trend.
"""

import asyncio
import tempfile
import time

from benchmarks.conftest import emit_gate, run_once
from repro.serve import (
    AsyncServeClient,
    ServeClient,
    ServeConfig,
    ServerThread,
)
from repro.telemetry import QuantileSketch

#: Cold request scale: big enough that one simulation dwarfs the HTTP
#: round-trip, so the speedup measures memoization, not parsing.
SCALE = "small"

#: Warm-hit latency samples (sequential, one connection).
WARM_SAMPLES = 50

#: Sustained-throughput phase: memoized requests over N connections.
THROUGHPUT_REQUESTS = 600
CONCURRENCY = 16

#: Floors. Measured locally: speedup ~100x, throughput ~2000 req/s;
#: the floors leave generous room for noisy CI machines.
SPEEDUP_FLOOR = 20.0
RPS_FLOOR = 200.0

REQUEST = {"workload": "crc", "scale": SCALE}


async def _memoized_rps(port: int) -> float:
    """Fan identical (memoized) requests over keep-alive connections."""
    queue = asyncio.Queue()
    for _ in range(THROUGHPUT_REQUESTS):
        queue.put_nowait(REQUEST)

    async def worker():
        async with AsyncServeClient(port=port) as client:
            while True:
                try:
                    body = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                status, reply = await client.submit("simulate", **body)
                assert status == 200 and reply["cached"] is True

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(CONCURRENCY)))
    return THROUGHPUT_REQUESTS / (time.perf_counter() - started)


def bench_serve_memoization_gate(benchmark):
    """Warm hits >= 20x faster than the cold run; >= 200 req/s."""
    measured = {}

    def run():
        with tempfile.TemporaryDirectory() as tmp:
            config = ServeConfig(port=0, workers=0, store=tmp)
            with ServerThread(config) as handle:
                with ServeClient(port=handle.port,
                                 timeout=600.0) as client:
                    started = time.perf_counter()
                    status, cold = client.simulate(**REQUEST)
                    cold_seconds = time.perf_counter() - started
                    assert status == 200
                    assert cold["cached"] is False

                    # Warm latencies run through the same streaming
                    # sketch the daemon's histograms use, so the gate's
                    # percentiles and /metrics quantiles agree.
                    warm = QuantileSketch()
                    for _ in range(WARM_SAMPLES):
                        started = time.perf_counter()
                        status, hit = client.simulate(**REQUEST)
                        warm.observe(time.perf_counter() - started)
                        assert status == 200
                        assert hit["cached"] is True
                    # The hit body matches the cold body bit for bit.
                    assert hit["run_id"] == cold["run_id"]
                    assert hit["metrics"] == cold["metrics"]

                rps = asyncio.run(_memoized_rps(handle.port))
        percentiles = warm.percentiles()
        measured.update(
            cold_seconds=cold_seconds,
            warm_p50_seconds=percentiles["p50"],
            warm_p95_seconds=percentiles["p95"],
            warm_p99_seconds=percentiles["p99"],
            memoized_rps=rps,
        )

    run_once(benchmark, run)
    speedup = measured["cold_seconds"] / measured["warm_p50_seconds"]
    emit_gate(
        "serve_memoization",
        cold_seconds=measured["cold_seconds"],
        warm_p50_seconds=measured["warm_p50_seconds"],
        warm_p95_seconds=measured["warm_p95_seconds"],
        warm_p99_seconds=measured["warm_p99_seconds"],
        speedup=speedup,
        memoized_requests_per_second=measured["memoized_rps"],
    )
    print(
        f"\ncold {measured['cold_seconds'] * 1000:.1f}ms, "
        f"warm p50 {measured['warm_p50_seconds'] * 1000:.2f}ms "
        f"p95 {measured['warm_p95_seconds'] * 1000:.2f}ms "
        f"p99 {measured['warm_p99_seconds'] * 1000:.2f}ms, "
        f"speedup {speedup:.0f}x; memoized throughput "
        f"{measured['memoized_rps']:.0f} req/s "
        f"({CONCURRENCY} connections)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm-cache speedup {speedup:.1f}x is below the "
        f"{SPEEDUP_FLOOR:.0f}x floor"
    )
    assert measured["memoized_rps"] >= RPS_FLOOR, (
        f"memoized throughput {measured['memoized_rps']:.0f} req/s is "
        f"below the {RPS_FLOOR:.0f} req/s floor"
    )
