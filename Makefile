# Convenience targets; everything also works via plain pytest / repro.

PYTHON ?= python

.PHONY: install test bench experiments experiments-parallel fuzz \
	lint clean-cache lines

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) -m repro.cli run-all --scale small

experiments-parallel:
	$(PYTHON) -m repro.cli run-all --scale small --workers 0

fuzz:
	$(PYTHON) -m pytest tests/test_differential.py -q

lint:
	$(PYTHON) -m repro.cli lint --synthetic
	-ruff check src tests

clean-cache:
	$(PYTHON) -m repro.cli clear-cache

lines:
	find src tests benchmarks examples -name "*.py" | xargs wc -l | tail -1
