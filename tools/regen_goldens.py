#!/usr/bin/env python
"""Regenerate the golden tables after an intentional codegen change.

Prints replacements for:

* ``src/repro/workloads/expected.py`` — per-workload return values;
* ``tests/test_regression_rates.py`` — per-workload prediction counts.

Remember to bump ``CODEGEN_REVISION`` in ``repro/compiler/config.py``
whenever generated code changes, so cached traces regenerate.
"""

from repro.compiler.config import BASELINE
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import all_workloads


def main() -> None:
    print("# --- workloads/expected.py ---")
    print("EXPECTED = {")
    for workload in all_workloads():
        values = {
            scale: workload.run(scale, BASELINE).return_value
            for scale in ("tiny", "small")
        }
        print(f'    "{workload.name}": {values},')
    print("}")

    print()
    print("# --- tests/test_regression_rates.py ---")
    print("GOLDEN = {")
    for workload in all_workloads():
        trace = workload.trace("tiny", hyperblocks=True)
        plain = simulate(
            trace, make_predictor("gshare", entries=1024), SimOptions()
        )
        both = simulate(
            trace,
            make_predictor("gshare", entries=1024),
            SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
        )
        print(
            f'    "{workload.name}": ({plain.mispredictions}, '
            f"{both.mispredictions}, {both.squashed}, "
            f"{trace.num_branches}),"
        )
    print("}")


if __name__ == "__main__":
    main()
