#!/usr/bin/env python
"""Regenerate the golden tables after an intentional codegen change.

Prints replacements for:

* ``src/repro/workloads/expected.py`` — per-workload return values;
* ``tests/test_regression_rates.py`` — per-workload prediction counts.

``--runstore`` instead regenerates the committed run-history golden
(``docs/results/baseline-run.json``): it records E2 at small scale
through the same RunRecorder path the CLI's ``--record`` flag uses, so
the golden's metric payload is byte-identical to what ``repro run E2
--scale small --record`` produces on an unchanged tree — which is
exactly what CI's ``history-smoke`` job diffs against.

Remember to bump ``CODEGEN_REVISION`` in ``repro/compiler/config.py``
whenever generated code changes, so cached traces regenerate.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler.config import BASELINE  # noqa: E402
from repro.predictors import (  # noqa: E402
    PGUConfig,
    SFPConfig,
    make_predictor,
)
from repro.sim import SimOptions, simulate  # noqa: E402
from repro.workloads import all_workloads  # noqa: E402

#: Where the run-history golden lives (CI diffs fresh runs against it).
BASELINE_RUN = "docs/results/baseline-run.json"


def regen_runstore_golden(path=BASELINE_RUN, scale="small") -> None:
    from repro import telemetry
    from repro.experiments import get_experiment
    from repro.runstore import RunRecorder

    recorder = RunRecorder(
        "experiment", "E2", scale=scale,
        command=f"repro run E2 --scale {scale} --record",
    )
    registry = telemetry.MetricsRegistry()
    with telemetry.use_registry(registry):
        with recorder.timed():
            result = get_experiment("E2").run(scale=scale)
    recorder.add_experiment(result)
    # The golden carries only the deterministic payload + envelope: the
    # telemetry snapshot is machine-local timing noise that would churn
    # the committed file on every regen without changing the diff.
    record = recorder.finish(registry=None)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {target} (run {record.run_id}, "
          f"{len(record.metrics)} metrics)")


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--runstore", action="store_true",
        help=f"regenerate {BASELINE_RUN} instead of the code goldens",
    )
    parser.add_argument(
        "--scale", default="small", choices=("tiny", "small", "ref"),
        help="scale for --runstore (default small, the CI gate scale)",
    )
    parser.add_argument(
        "--output", default=BASELINE_RUN, metavar="PATH",
        help="target for --runstore (default %(default)s)",
    )
    args = parser.parse_args()
    if args.runstore:
        regen_runstore_golden(args.output, scale=args.scale)
        return

    print("# --- workloads/expected.py ---")
    print("EXPECTED = {")
    for workload in all_workloads():
        values = {
            scale: workload.run(scale, BASELINE).return_value
            for scale in ("tiny", "small")
        }
        print(f'    "{workload.name}": {values},')
    print("}")

    print()
    print("# --- tests/test_regression_rates.py ---")
    print("GOLDEN = {")
    for workload in all_workloads():
        trace = workload.trace("tiny", hyperblocks=True)
        plain = simulate(
            trace, make_predictor("gshare", entries=1024), SimOptions()
        )
        both = simulate(
            trace,
            make_predictor("gshare", entries=1024),
            SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
        )
        print(
            f'    "{workload.name}": ({plain.mispredictions}, '
            f"{both.mispredictions}, {both.squashed}, "
            f"{trace.num_branches}),"
        )
    print("}")


if __name__ == "__main__":
    main()
