"""Validate distributed-tracing artifacts against the published schema.

CI's ``trace-smoke`` job runs an instrumented sweep (``--trace``) and a
traced serve request, then pipes the span JSONL and the Prometheus
exposition through this checker before uploading them as artifacts, so
a schema drift (renamed field, malformed id, broken parent link) fails
the build instead of shipping an artifact downstream tooling can no
longer parse.

Usage::

    python tools/check_trace_schema.py --spans spans.jsonl
    python tools/check_trace_schema.py --spans spans.jsonl \\
        --min-spans 4 --min-pids 2
    python tools/check_trace_schema.py --prom metrics.prom

Exit status is 0 iff every named file validates.  ``--spans`` checks
per-record shape (required fields, 32/16-hex ids, non-negative
timings) and per-trace structure (every non-empty ``parent_id``
resolves inside its trace; at least one root; no span is its own
parent).  ``--min-spans`` / ``--min-pids`` additionally require the
largest trace to link that many spans across that many processes — the
cross-worker propagation invariant.  ``--prom`` checks the text
exposition parses line by line and carries the three quantile series
for every histogram.
"""

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry import read_spans  # noqa: E402

#: Required fields of one span record, with their types.
SPAN_FIELDS = {
    "event": str,
    "trace_id": str,
    "span_id": str,
    "parent_id": str,
    "name": str,
    "start": (int, float),
    "seconds": (int, float),
    "pid": int,
    "attrs": dict,
}

_HEX32 = re.compile(r"^[0-9a-f]{32}$")
_HEX16 = re.compile(r"^[0-9a-f]{16}$")

#: One Prometheus text-format sample line:  name{labels} value
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"
)


def fail(problems, message) -> None:
    problems.append(message)


def check_spans(path, problems, min_spans=0, min_pids=0) -> None:
    records = read_spans(path)
    if not records:
        fail(problems, f"{path}: no span records")
        return

    for index, record in enumerate(records):
        where = f"{path}: span {index}"
        for field, kind in SPAN_FIELDS.items():
            if field not in record:
                fail(problems, f"{where}: missing field {field!r}")
            elif not isinstance(record[field], kind):
                fail(problems,
                     f"{where}: field {field!r} is "
                     f"{type(record[field]).__name__}")
        if record.get("event") != "trace-span":
            fail(problems, f"{where}: event != 'trace-span'")
        if not _HEX32.match(record.get("trace_id", "")):
            fail(problems, f"{where}: trace_id is not 32 hex chars")
        if not _HEX16.match(record.get("span_id", "")):
            fail(problems, f"{where}: span_id is not 16 hex chars")
        parent = record.get("parent_id", "")
        if parent and not _HEX16.match(parent):
            fail(problems, f"{where}: parent_id is not 16 hex chars")
        if parent and parent == record.get("span_id"):
            fail(problems, f"{where}: span is its own parent")
        for field in ("start", "seconds"):
            value = record.get(field, 0)
            if isinstance(value, (int, float)) and value < 0:
                fail(problems, f"{where}: negative {field}")

    traces = defaultdict(list)
    for record in records:
        traces[record.get("trace_id", "?")].append(record)
    for trace_id, spans in sorted(traces.items()):
        ids = {span.get("span_id") for span in spans}
        if len(ids) != len(spans):
            fail(problems,
                 f"{path}: trace {trace_id}: duplicate span ids")
        roots = [s for s in spans if not s.get("parent_id")]
        if not roots:
            fail(problems, f"{path}: trace {trace_id}: no root span")
        for span in spans:
            parent = span.get("parent_id")
            if parent and parent not in ids:
                fail(problems,
                     f"{path}: trace {trace_id}: span "
                     f"{span.get('name')!r} has unknown parent "
                     f"{parent}")

    largest = max(traces.values(), key=len)
    linked = sum(1 for s in largest if s.get("parent_id"))
    pids = {s.get("pid") for s in largest}
    if min_spans and len(largest) < min_spans:
        fail(problems,
             f"{path}: largest trace has {len(largest)} span(s), "
             f"need >= {min_spans}")
    if min_spans and linked < min_spans - 1:
        fail(problems,
             f"{path}: largest trace has {linked} parent-linked "
             f"span(s), need >= {min_spans - 1}")
    if min_pids and len(pids) < min_pids:
        fail(problems,
             f"{path}: largest trace spans {len(pids)} process(es), "
             f"need >= {min_pids}")
    print(f"{path}: {len(records)} span(s) in {len(traces)} trace(s); "
          f"largest links {linked + 1} span(s) across "
          f"{len(pids)} process(es)")


def check_prom(path, problems) -> None:
    text = Path(path).read_text()
    if not text.endswith("\n"):
        fail(problems, f"{path}: exposition must end with a newline")
    histograms = set()
    quantiles = defaultdict(set)
    samples = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("#"):
            if line.startswith("# TYPE ") and line.endswith(" histogram"):
                histograms.add(line.split()[2])
            continue
        if not _PROM_SAMPLE.match(line):
            fail(problems, f"{path}:{number}: unparsable sample: "
                           f"{line!r}")
            continue
        samples += 1
        name = line.split("{", 1)[0].split(" ", 1)[0]
        if name.endswith("_quantile"):
            match = re.search(r'quantile="([^"]+)"', line)
            if match:
                quantiles[name[:-len("_quantile")]].add(match.group(1))
    if not samples:
        fail(problems, f"{path}: no samples")
    for name in sorted(histograms):
        got = quantiles.get(name, set())
        if got != {"0.5", "0.95", "0.99"}:
            fail(problems,
                 f"{path}: histogram {name} has quantile series "
                 f"{sorted(got)}, want ['0.5', '0.95', '0.99']")
    print(f"{path}: {samples} sample(s), {len(histograms)} "
          f"histogram(s), quantile series complete")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--spans", metavar="PATH", action="append",
                        default=[], help="span JSONL file to validate")
    parser.add_argument("--min-spans", type=int, default=0,
                        help="require the largest trace to link this "
                             "many spans")
    parser.add_argument("--min-pids", type=int, default=0,
                        help="require the largest trace to cross this "
                             "many processes")
    parser.add_argument("--prom", metavar="PATH", action="append",
                        default=[],
                        help="Prometheus exposition file to validate")
    args = parser.parse_args(argv)
    if not args.spans and not args.prom:
        parser.error("nothing to check: pass --spans and/or --prom")

    problems = []
    for path in args.spans:
        try:
            check_spans(path, problems, min_spans=args.min_spans,
                        min_pids=args.min_pids)
        except FileNotFoundError:
            fail(problems, f"{path}: no such file")
    for path in args.prom:
        try:
            check_prom(path, problems)
        except FileNotFoundError:
            fail(problems, f"{path}: no such file")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("OK")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
