"""Validate ``repro profile`` artifacts against the published schema.

CI's ``profile-smoke`` step runs a profile with ``--json`` and
``--events`` and pipes both files through this checker before uploading
them as artifacts, so a schema drift (renamed field, type change,
missing section) fails the build instead of shipping an artifact that
downstream tooling can no longer parse.

Usage::

    python tools/check_profile_schema.py --report profile.json
    python tools/check_profile_schema.py --events events.jsonl
    python tools/check_profile_schema.py --report profile.json \\
        --events events.jsonl

Exit status is 0 iff every named file validates.  ``--report`` also
re-checks the rate-1 reconciliation invariant: attribution totals must
match the simulated branch/misprediction/squash counts exactly.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.profiler import (  # noqa: E402
    EVENT_FIELDS,
    EVENT_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    AttributionAggregator,
)

#: Required top-level keys of a ``repro profile --json`` report.
REPORT_KEYS = (
    "workload", "scale", "compile_config", "predictor", "frontend",
    "simulated", "attribution",
)

#: Required sections of the nested attribution report.
ATTRIBUTION_KEYS = (
    "schema", "rate", "seed", "interval", "workload", "totals",
    "classes", "sfp", "pgu", "availability", "regions", "timeline",
    "sites",
)


def _fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def check_report(path) -> int:
    """Validate a ``repro profile --json`` report file."""
    payload = json.loads(Path(path).read_text())
    for key in REPORT_KEYS:
        if key not in payload:
            return _fail(path, f"report missing top-level key {key!r}")
    attribution = payload["attribution"]
    for key in ATTRIBUTION_KEYS:
        if key not in attribution:
            return _fail(path, f"attribution missing section {key!r}")
    if attribution["schema"] != REPORT_SCHEMA_VERSION:
        return _fail(
            path,
            f"report schema {attribution['schema']!r} != "
            f"{REPORT_SCHEMA_VERSION}",
        )
    # The report must survive the documented round trip.
    AttributionAggregator.from_dict(attribution)

    simulated = payload["simulated"]
    totals = attribution["totals"]
    if attribution["rate"] == 1:
        for report_key, sim_key in (
            ("events", "branches"),
            ("mispredictions", "mispredictions"),
            ("filtered", "squashed"),
        ):
            if totals[report_key] != simulated[sim_key]:
                return _fail(
                    path,
                    f"rate-1 reconciliation failed: "
                    f"totals[{report_key!r}]={totals[report_key]} != "
                    f"simulated[{sim_key!r}]={simulated[sim_key]}",
                )
    site_misp = sum(s["mispredictions"] for s in attribution["sites"])
    if site_misp != totals["mispredictions"]:
        return _fail(
            path,
            f"per-site mispredictions sum to {site_misp}, totals say "
            f"{totals['mispredictions']}",
        )
    print(
        f"{path}: ok — {payload['workload']} ({payload['scale']}), "
        f"{totals['events']} events over "
        f"{len(attribution['sites'])} sites"
    )
    return 0


def check_events(path) -> int:
    """Validate a ``repro profile --events`` JSONL stream."""
    checked = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if lineno == 1:
                if record.get("event") != "profile-header":
                    return _fail(
                        path, "first record is not a profile-header"
                    )
                if record.get("schema") != EVENT_SCHEMA_VERSION:
                    return _fail(
                        path,
                        f"event schema {record.get('schema')!r} != "
                        f"{EVENT_SCHEMA_VERSION}",
                    )
                continue
            if record.get("event") != "prediction":
                continue  # interleaved telemetry is legal
            for field, expected in EVENT_FIELDS.items():
                if field not in record:
                    return _fail(
                        path, f"line {lineno}: missing field {field!r}"
                    )
                value = record[field]
                # JSON has no int/bool distinction problem here: bool
                # is an int subclass, so check bools first.
                if expected is bool:
                    ok = isinstance(value, bool)
                else:
                    ok = (
                        isinstance(value, expected)
                        and not isinstance(value, bool)
                    ) if expected is int else isinstance(value, expected)
                if not ok:
                    return _fail(
                        path,
                        f"line {lineno}: field {field!r} is "
                        f"{type(value).__name__}, expected "
                        f"{expected.__name__}",
                    )
            extra = set(record) - set(EVENT_FIELDS)
            if extra:
                return _fail(
                    path,
                    f"line {lineno}: unknown fields {sorted(extra)}",
                )
            checked += 1
    if checked == 0:
        return _fail(path, "no prediction records found")
    print(f"{path}: ok — {checked} prediction records")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", metavar="PATH",
                        help="a `repro profile --json` output file")
    parser.add_argument("--events", metavar="PATH",
                        help="a `repro profile --events` JSONL file")
    args = parser.parse_args(argv)
    if not args.report and not args.events:
        parser.error("nothing to check: pass --report and/or --events")
    status = 0
    if args.report:
        status |= check_report(args.report)
    if args.events:
        status |= check_events(args.events)
    return status


if __name__ == "__main__":
    sys.exit(main())
