"""Validate run-history records against the published schema.

CI's ``history-smoke`` job pipes the freshly recorded run (and the
committed golden baseline) through this checker before diffing and
uploading, so a schema drift — renamed field, type change, a payload
that no longer matches its content hash — fails the build instead of
shipping a store downstream tooling cannot parse.

Usage::

    python tools/check_runstore_schema.py .repro/runs/*.json
    python tools/check_runstore_schema.py --store .repro/runs
    python tools/check_runstore_schema.py docs/results/baseline-run.json

Exit status is 0 iff every named record validates.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.runstore import (  # noqa: E402
    KINDS,
    SCHEMA_VERSION,
    RunRecord,
    payload_hash,
)

#: Required top-level keys and their types.
RECORD_KEYS = {
    "schema": int,
    "kind": str,
    "label": str,
    "scale": str,
    "compile_config": str,
    "matrix": dict,
    "metrics": dict,
    "run_id": str,
    "timestamp": str,
    "git": dict,
    "version": str,
    "command": str,
    "wall_seconds": (int, float),
    "throughput": (int, float),
    "telemetry": dict,
}

#: Optional envelope keys: absent in records written before the field
#: existed (the committed golden baseline predates ``sim_core``), but
#: type-checked when present.
OPTIONAL_KEYS = {
    "sim_core": str,
}


def _fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def check_record(path) -> int:
    """Validate one RunRecord JSON file."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return _fail(path, f"unreadable: {exc}")
    for key, expected in RECORD_KEYS.items():
        if key not in document:
            return _fail(path, f"missing key {key!r}")
        value = document[key]
        if isinstance(value, bool) or not isinstance(value, expected):
            name = (
                expected.__name__
                if isinstance(expected, type)
                else "number"
            )
            return _fail(
                path,
                f"key {key!r} is {type(value).__name__}, "
                f"expected {name}",
            )
    for key, expected in OPTIONAL_KEYS.items():
        if key not in document:
            continue
        value = document[key]
        if isinstance(value, bool) or not isinstance(value, expected):
            return _fail(
                path,
                f"key {key!r} is {type(value).__name__}, "
                f"expected {expected.__name__}",
            )
    sim_core = document.get("sim_core", "")
    if sim_core not in ("", "object", "fast", "numpy"):
        return _fail(path, f"unknown sim_core {sim_core!r}")
    if document["schema"] != SCHEMA_VERSION:
        return _fail(
            path,
            f"schema {document['schema']!r} != {SCHEMA_VERSION}",
        )
    if document["kind"] not in KINDS:
        return _fail(path, f"unknown kind {document['kind']!r}")
    for name, value in document["metrics"].items():
        if isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            return _fail(
                path,
                f"metric {name!r} is {type(value).__name__}, "
                "expected a number",
            )
    # The record must survive the documented round trip, and the run id
    # must be the content hash of the deterministic payload — the store
    # is content-addressed, so a mismatch means corruption or an edit.
    record = RunRecord.from_dict(document)
    expected_id = payload_hash(record.payload())[:12]
    if document["run_id"] != expected_id:
        return _fail(
            path,
            f"run_id {document['run_id']} does not match payload "
            f"content hash {expected_id}",
        )
    git = document["git"]
    if "sha" not in git or "dirty" not in git:
        return _fail(path, "git envelope missing sha/dirty")
    print(
        f"{path}: ok — {document['kind']}/{document['label']} "
        f"({document['scale'] or '-'}), {len(document['metrics'])} "
        f"metric(s), run {document['run_id']}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("records", nargs="*", metavar="PATH",
                        help="RunRecord JSON files")
    parser.add_argument("--store", metavar="DIR",
                        help="validate every record in a store root")
    args = parser.parse_args(argv)
    paths = [Path(p) for p in args.records]
    if args.store:
        root = Path(args.store)
        if root.is_dir():
            paths.extend(sorted(
                p for p in root.iterdir()
                if p.suffix == ".json" and not p.name.startswith(".")
            ))
    if not paths:
        parser.error("nothing to check: pass record paths and/or --store")
    status = 0
    for path in paths:
        status |= check_record(path)
    return status


if __name__ == "__main__":
    sys.exit(main())
