"""Validate ``repro lint --json`` / ``repro analyze --json`` artifacts.

CI's ``lint-workloads`` job writes both machine-readable reports and
pipes them through this checker before uploading them as artifacts, so
a schema drift (renamed field, type change, missing section) fails the
build instead of shipping an artifact downstream tooling can no longer
parse.

Usage::

    python tools/check_lint_schema.py --lint lint.json
    python tools/check_lint_schema.py --analyze analyze.json
    python tools/check_lint_schema.py --lint lint.json \\
        --analyze analyze.json

Exit status is 0 iff every named file validates.  ``--lint`` also
re-checks the counting invariants (per-report counts match the
diagnostics list; totals match the per-report counts) and ``--analyze``
re-checks that verdict counts sum to the branch count.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import RULES, Severity  # noqa: E402
from repro.analysis.predflow import (  # noqa: E402
    ANALYZE_SCHEMA_VERSION,
    VERDICTS,
)

#: Required keys of one diagnostic record in a lint report.
DIAGNOSTIC_KEYS = (
    "rule", "severity", "program", "function", "index", "abs_index",
    "location", "message",
)

#: Required keys of the ``repro analyze --json`` payload.
ANALYZE_KEYS = (
    "schema", "program", "distance", "summary", "functions",
    "workload", "scale", "compile_config", "regions",
)

#: Required keys of the nested analyze summary.
SUMMARY_KEYS = (
    "functions", "branches", "region_branches", "must_not_taken",
    "must_taken", "complement_only", "define_sites", "distance",
    "verdicts", "sfp_site_coverage_bound",
)

#: Required keys of one per-branch fact record.
BRANCH_KEYS = (
    "pc", "function", "index", "opcode", "region", "region_based",
    "guard", "guard_value", "min_avail", "max_avail",
    "may_be_undefined", "reaching_defines", "guard_defines",
    "in_region_defines", "complement_only", "dominated_by_define",
    "must_not_taken", "must_taken", "sfp_verdict",
)

SEVERITIES = tuple(s.label for s in Severity)


def _fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def check_lint(path) -> int:
    """Validate a ``repro lint --json`` report file."""
    payload = json.loads(Path(path).read_text())
    for key in ("programs", "totals"):
        if key not in payload:
            return _fail(path, f"lint report missing key {key!r}")
    totals = {label: 0 for label in SEVERITIES}
    diagnostics = 0
    for report in payload["programs"]:
        for key in ("program", "counts", "diagnostics"):
            if key not in report:
                return _fail(
                    path, f"program report missing key {key!r}"
                )
        seen = {label: 0 for label in SEVERITIES}
        for record in report["diagnostics"]:
            for key in DIAGNOSTIC_KEYS:
                if key not in record:
                    return _fail(
                        path,
                        f"diagnostic missing key {key!r} in "
                        f"{report['program']!r}",
                    )
            if record["rule"] not in RULES:
                return _fail(
                    path, f"unregistered rule id {record['rule']!r}"
                )
            if record["severity"] not in SEVERITIES:
                return _fail(
                    path, f"unknown severity {record['severity']!r}"
                )
            seen[record["severity"]] += 1
            diagnostics += 1
        if report["counts"] != seen:
            return _fail(
                path,
                f"{report['program']!r}: counts {report['counts']} do "
                f"not match diagnostics {seen}",
            )
        for label in SEVERITIES:
            totals[label] += seen[label]
    if payload["totals"] != totals:
        return _fail(
            path,
            f"totals {payload['totals']} do not match per-report "
            f"counts {totals}",
        )
    print(
        f"{path}: ok — {len(payload['programs'])} program(s), "
        f"{diagnostics} diagnostic(s)"
    )
    return 0


def check_analyze(path) -> int:
    """Validate a ``repro analyze --json`` payload."""
    payload = json.loads(Path(path).read_text())
    for key in ANALYZE_KEYS:
        if key not in payload:
            return _fail(path, f"analyze payload missing key {key!r}")
    if payload["schema"] != ANALYZE_SCHEMA_VERSION:
        return _fail(
            path,
            f"analyze schema {payload['schema']!r} != "
            f"{ANALYZE_SCHEMA_VERSION}",
        )
    summary = payload["summary"]
    for key in SUMMARY_KEYS:
        if key not in summary:
            return _fail(path, f"summary missing key {key!r}")
    verdicts = summary["verdicts"]
    if sorted(verdicts) != sorted(VERDICTS):
        return _fail(
            path, f"verdict keys {sorted(verdicts)} != {sorted(VERDICTS)}"
        )
    branches = 0
    for function in payload["functions"]:
        for key in ("name", "start", "end", "branches"):
            if key not in function:
                return _fail(
                    path, f"function record missing key {key!r}"
                )
        for branch in function["branches"]:
            for key in BRANCH_KEYS:
                if key not in branch:
                    return _fail(
                        path,
                        f"branch record at pc "
                        f"{branch.get('pc')} missing key {key!r}",
                    )
            if branch["sfp_verdict"] not in VERDICTS:
                return _fail(
                    path,
                    f"unknown verdict {branch['sfp_verdict']!r} at pc "
                    f"{branch['pc']}",
                )
            branches += 1
    if branches != summary["branches"]:
        return _fail(
            path,
            f"summary says {summary['branches']} branches, functions "
            f"list {branches}",
        )
    if sum(verdicts.values()) != branches:
        return _fail(
            path,
            f"verdict counts sum to {sum(verdicts.values())}, expected "
            f"{branches}",
        )
    print(
        f"{path}: ok — {payload['workload']} "
        f"({payload['compile_config']}), {branches} branch site(s) at "
        f"distance {payload['distance']}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lint", metavar="PATH",
                        help="a `repro lint --json` output file")
    parser.add_argument("--analyze", metavar="PATH",
                        help="a `repro analyze --json` output file")
    args = parser.parse_args(argv)
    if not args.lint and not args.analyze:
        parser.error("nothing to check: pass --lint and/or --analyze")
    status = 0
    if args.lint:
        status |= check_lint(args.lint)
    if args.analyze:
        status |= check_analyze(args.analyze)
    return status


if __name__ == "__main__":
    sys.exit(main())
