"""Async load-test harness for the ``repro serve`` daemon.

Drives a live daemon with a two-phase mixed workload over N concurrent
keep-alive connections:

1. **mixed phase** — a deterministic mix of distinct simulate / sweep /
   profile requests (cache misses that exercise the queue and the pool)
   interleaved with repeats (hits and coalesced in-flight duplicates);
2. **duplicate phase** — every request re-issues a request from phase 1,
   so a correct daemon serves *all* of it from the run-history store:
   the phase asserts a 100% cache-hit ratio and zero additional
   simulator invocations (``sim.*`` counter deltas are zero).

Every response is checked (HTTP 200, well-formed body); any error fails
the run.  Latency percentiles are printed per phase and the full
per-request latency log is written as JSONL for offline analysis — this
is the artifact CI's serve-smoke job uploads.

Usage::

    # against a running daemon
    python tools/loadtest_serve.py --port 8023 --requests 2000

    # self-contained: spawn a daemon on an ephemeral port, load it,
    # shut it down (what CI runs)
    python tools/loadtest_serve.py --spawn --requests 2000 \
        --concurrency 64 --out loadtest-serve.jsonl

Exit status is 0 iff every request succeeded and the duplicate phase
was served entirely from the store.
"""

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import AsyncServeClient  # noqa: E402
from repro.telemetry import QuantileSketch  # noqa: E402

#: The deterministic request mix (weights sum to 100).  Sweeps and
#: profiles are rarer and heavier, like real traffic.
WORKLOADS = ("crc", "qsort", "grep", "bitmix")


def build_mix(count: int, scale: str) -> list:
    """``count`` deterministic requests: ~70% simulate, 20% repeats of
    earlier requests, 5% sweep, 5% profile."""
    requests = []
    distinct = []
    for index in range(count):
        slot = index % 20
        workload = WORKLOADS[index % len(WORKLOADS)]
        if slot < 14 or not distinct:
            body = {
                "workload": workload,
                "scale": scale,
                # A small set of entry sizes keeps the distinct-request
                # universe bounded so repeats and phase 2 actually hit.
                "entries": 1 << (6 + (index // len(WORKLOADS)) % 4),
            }
            op = "simulate"
            distinct.append((op, body))
        elif slot < 18:
            op, body = distinct[index % len(distinct)]  # repeat: a hit
        elif slot == 18:
            body = {"workloads": [workload], "scale": scale}
            op = "sweep"
            distinct.append((op, body))
        else:
            body = {"workload": workload, "scale": scale, "rate": 1}
            op = "profile"
            distinct.append((op, body))
        requests.append((op, body))
    return requests


async def run_phase(name, requests, port, concurrency, log):
    """Fan ``requests`` out over ``concurrency`` keep-alive clients."""
    queue = asyncio.Queue()
    for index, item in enumerate(requests):
        queue.put_nowait((index, item))
    results = [None] * len(requests)

    async def worker():
        async with AsyncServeClient(port=port) as client:
            while True:
                try:
                    index, (op, body) = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = time.perf_counter()
                status, reply = await client.submit(op, **body)
                elapsed = time.perf_counter() - started
                results[index] = (op, status, reply, elapsed)
                log.append({
                    "phase": name, "index": index, "op": op,
                    "status": status,
                    "cached": reply.get("cached"),
                    "latency_seconds": round(elapsed, 6),
                })

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    wall = time.perf_counter() - started

    errors = [
        (index, result[1], result[2])
        for index, result in enumerate(results)
        if result is None or result[1] != 200 or "run_id" not in
        result[2]
    ]
    hits = sum(1 for r in results if r and r[2].get("cached"))
    # Same streaming sketch the daemon's registry uses for its
    # histograms, so loadtest numbers and /metrics quantiles agree.
    sketch = QuantileSketch()
    peak = 0.0
    for r in results:
        if r:
            sketch.observe(r[3])
            peak = max(peak, r[3])
    return {
        "phase": name,
        "requests": len(requests),
        "errors": errors,
        "hits": hits,
        "hit_ratio": hits / max(1, len(results)),
        "wall_seconds": wall,
        "rps": len(requests) / wall if wall else 0.0,
        "latency": dict(sketch.percentiles(), max=peak),
    }


async def sim_counters(port) -> dict:
    async with AsyncServeClient(port=port) as client:
        _, snapshot = await client.metrics()
    return {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if name.startswith("sim.")
    }


def report(summary) -> None:
    latency = summary["latency"]
    print(
        f"{summary['phase']:>9}: {summary['requests']} requests "
        f"in {summary['wall_seconds']:.2f}s "
        f"({summary['rps']:.0f} req/s), "
        f"hits {summary['hits']}/{summary['requests']} "
        f"({summary['hit_ratio']:.0%}), "
        f"p50 {latency['p50'] * 1000:.1f}ms "
        f"p95 {latency['p95'] * 1000:.1f}ms "
        f"p99 {latency['p99'] * 1000:.1f}ms "
        f"max {latency['max'] * 1000:.1f}ms"
    )
    for index, status, reply in summary["errors"][:5]:
        print(f"  ERROR request {index}: HTTP {status} {reply}")


async def drive(args, port) -> int:
    mixed = build_mix(args.requests, args.scale)
    log = []
    summary_mixed = await run_phase(
        "mixed", mixed, port, args.concurrency, log
    )
    report(summary_mixed)

    before = await sim_counters(port)
    summary_dup = await run_phase(
        "duplicate", mixed, port, args.concurrency, log
    )
    report(summary_dup)
    after = await sim_counters(port)

    if args.out:
        with open(args.out, "w") as handle:
            for entry in log:
                handle.write(json.dumps(entry) + "\n")
            handle.write(json.dumps({
                "summary": [summary_mixed, summary_dup],
                "sim_counter_delta_during_duplicates": {
                    key: after.get(key, 0) - before.get(key, 0)
                    for key in sorted(set(before) | set(after))
                },
            }) + "\n")
        print(f"latency log: {args.out} ({len(log)} entries)")

    failed = False
    for summary in (summary_mixed, summary_dup):
        if summary["errors"]:
            print(f"FAIL: {len(summary['errors'])} errors in "
                  f"{summary['phase']} phase")
            failed = True
    if summary_dup["hit_ratio"] < 1.0:
        print(f"FAIL: duplicate phase hit ratio "
              f"{summary_dup['hit_ratio']:.2%} < 100%")
        failed = True
    if after != before:
        print("FAIL: simulator ran during the duplicate phase: "
              f"{before} -> {after}")
        failed = True
    if not failed:
        print("OK: zero errors; duplicate phase served entirely from "
              "the run-history store")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8023,
                        help="daemon port (ignored with --spawn)")
    parser.add_argument("--spawn", action="store_true",
                        help="start a private daemon (ephemeral port, "
                             "temp store) for the duration of the run")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool workers for --spawn (0 = inline)")
    parser.add_argument("--requests", type=int, default=2000,
                        help="requests per phase")
    parser.add_argument("--concurrency", type=int, default=64,
                        help="concurrent client connections")
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small"))
    parser.add_argument("--out", metavar="PATH",
                        help="write the per-request latency log (JSONL)")
    args = parser.parse_args(argv)

    if not args.spawn:
        return asyncio.run(drive(args, args.port))

    from repro.serve import ServeConfig, ServerThread

    with tempfile.TemporaryDirectory(prefix="loadtest-store-") as tmp:
        config = ServeConfig(
            port=0, workers=args.workers, store=tmp,
            max_queue_depth=max(256, args.requests),
        )
        with ServerThread(config) as handle:
            print(f"spawned daemon on port {handle.port} "
                  f"(workers={args.workers}, store={tmp})")
            return asyncio.run(drive(args, handle.port))


if __name__ == "__main__":
    sys.exit(main())
