"""Tests for the run-history store, diff engine and trend reports.

End-to-end contract (the acceptance path): ``repro run E2 --record``
appends a schema-valid RunRecord whose run id is the content hash of
its deterministic payload, ``repro history diff`` exits 0 against an
identical baseline and non-zero — naming the offending metric — when a
metric regresses, and recording the same sweep serially or over worker
processes produces byte-identical metric payloads.
"""

import json

import pytest

from repro.cli import main
from repro.runstore import (
    MetricNoise,
    NoiseModel,
    RunRecord,
    RunRecorder,
    RunStore,
    Thresholds,
    canonical_json,
    diff_against_history,
    diff_runs,
    higher_is_better,
    load_record,
    payload_hash,
    render_diff,
    render_trend_json,
    render_trend_markdown,
    sparkline,
    trend_series,
    utc_timestamp,
)


def make_record(metrics, label="E2", kind="experiment", epoch=1000.0):
    record = RunRecord(
        kind=kind, label=label, scale="tiny", metrics=dict(metrics)
    )
    record.timestamp = utc_timestamp(epoch)
    record.git = {"sha": "f" * 40, "dirty": False}
    return record.seal()


class TestRecord:
    def test_run_id_is_payload_hash_prefix(self):
        record = make_record({"E2.crc.mpki": 1.5})
        assert record.run_id == payload_hash(record.payload())[:12]

    def test_envelope_excluded_from_hash(self):
        a = make_record({"E2.crc.mpki": 1.5}, epoch=1000.0)
        b = make_record({"E2.crc.mpki": 1.5}, epoch=2000.0)
        b.wall_seconds = 99.0
        b.telemetry = {"counters": {"sim.branches": 7}}
        assert a.timestamp != b.timestamp
        assert a.content_hash() == b.content_hash()
        assert a.run_id == b.run_id

    def test_payload_changes_hash(self):
        a = make_record({"E2.crc.mpki": 1.5})
        b = make_record({"E2.crc.mpki": 1.6})
        assert a.run_id != b.run_id

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == \
            canonical_json({"a": 2, "b": 1})

    def test_round_trip(self):
        record = make_record({"E2.crc.mpki": 1.5})
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_from_dict_rejects_unknown_schema(self):
        document = make_record({}).to_dict()
        document["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_dict(document)

    def test_recorder_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            RunRecorder("frobnicate", "x")


class TestStore:
    def test_add_and_list(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        for i, rate in enumerate([0.10, 0.11]):
            store.add(make_record({"m.rate": rate}, epoch=1000.0 + i))
        records = store.records()
        assert [r.metrics["m.rate"] for r in records] == [0.10, 0.11]

    def test_resolve_head_and_offsets(self, tmp_path):
        store = RunStore(tmp_path)
        for i in range(3):
            store.add(make_record({"m.i": float(i)}, epoch=1000.0 + i))
        assert store.resolve("HEAD").metrics["m.i"] == 2.0
        assert store.resolve("HEAD~0").metrics["m.i"] == 2.0
        assert store.resolve("HEAD~2").metrics["m.i"] == 0.0
        with pytest.raises(KeyError, match="3 matching"):
            store.resolve("HEAD~3")
        with pytest.raises(KeyError, match="offset"):
            store.resolve("HEAD~x")

    def test_resolve_run_id_prefix_and_file(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        path = store.add(make_record({"m.rate": 0.5}))
        record = store.resolve("HEAD")
        assert store.resolve(record.run_id[:6]).run_id == record.run_id
        assert load_record(path).run_id == record.run_id
        assert store.resolve(str(path)).run_id == record.run_id
        with pytest.raises(KeyError, match="no stored run"):
            store.resolve("ffffffffffff")

    def test_kind_label_filters(self, tmp_path):
        store = RunStore(tmp_path)
        store.add(make_record({"a": 1.0}, label="E2", epoch=1000.0))
        store.add(make_record({"b": 2.0}, label="E3", epoch=1001.0))
        assert len(store.records(label="E2")) == 1
        assert store.resolve("HEAD", label="E2").metrics == {"a": 1.0}

    def test_tampered_record_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        path = store.add(make_record({"m.rate": 0.5}))
        document = json.loads(path.read_text())
        document["metrics"]["m.rate"] = 0.001  # juice the numbers
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="content hash"):
            load_record(path)

    def test_gc_drops_oldest(self, tmp_path):
        store = RunStore(tmp_path)
        for i in range(5):
            store.add(make_record({"m.i": float(i)}, epoch=1000.0 + i))
        would = store.gc(keep=2, dry_run=True)
        assert len(would) == 3
        assert len(store.paths()) == 5  # dry run removed nothing
        removed = store.gc(keep=2)
        assert [p.name for p in removed] == [p.name for p in would]
        survivors = [r.metrics["m.i"] for r in store.records()]
        assert survivors == [3.0, 4.0]


class TestDiff:
    def test_identical_runs_ok(self):
        a = make_record({"m.misprediction_rate": 0.10, "m.mpki": 5.0})
        diff = diff_runs(a, a)
        assert diff.ok
        assert diff.regressions == []
        assert "no regressions" in render_diff(diff)

    def test_regression_named_in_report(self):
        base = make_record({"m.misprediction_rate": 0.100})
        cur = make_record({"m.misprediction_rate": 0.110})
        diff = diff_runs(cur, base)
        assert not diff.ok
        assert [d.name for d in diff.regressions] == \
            ["m.misprediction_rate"]
        report = render_diff(diff)
        assert "FAIL" in report
        assert "m.misprediction_rate" in report
        assert "REGRESSION" in report

    def test_improvement_never_gates(self):
        base = make_record({"m.misprediction_rate": 0.110})
        cur = make_record({"m.misprediction_rate": 0.100})
        assert diff_runs(cur, base).ok

    def test_higher_is_better_direction(self):
        assert higher_is_better("E9.crc.squash_accuracy")
        assert higher_is_better("sweep.throughput")
        assert not higher_is_better("E2.crc.misprediction_rate")
        base = make_record({"m.squash_coverage": 0.50})
        cur = make_record({"m.squash_coverage": 0.40})
        diff = diff_runs(cur, base)
        assert not diff.ok  # coverage *dropping* is the regression

    def test_both_thresholds_must_trip(self):
        base = make_record({"m.mpki": 10.0})
        # +1% relative: over the absolute bound, under the 2% relative.
        assert diff_runs(make_record({"m.mpki": 10.1}), base).ok
        # tiny absolute move on a tiny baseline: relative huge, abs not.
        tiny = make_record({"m.rate": 0.0001})
        assert diff_runs(make_record({"m.rate": 0.0003}), tiny).ok
        assert not diff_runs(
            make_record({"m.mpki": 10.1}), base,
            Thresholds(absolute=0.05, relative=0.005),
        ).ok

    def test_zero_baseline_uses_absolute_only(self):
        base = make_record({"m.mpki": 0.0})
        assert diff_runs(make_record({"m.mpki": 0.0004}), base).ok
        assert not diff_runs(make_record({"m.mpki": 0.1}), base).ok

    def test_new_and_disappeared_metrics_reported_not_gated(self):
        base = make_record({"m.old": 1.0})
        cur = make_record({"m.new": 1.0})
        diff = diff_runs(cur, base)
        assert diff.ok
        report = render_diff(diff)
        assert "new metric" in report
        assert "metric disappeared" in report

    def test_to_dict_deterministic(self):
        base = make_record({"m.a": 1.0, "m.b": 2.0})
        cur = make_record({"m.a": 1.5, "m.b": 2.0})
        payload = diff_runs(cur, base).to_dict()
        assert payload["mode"] == "pairwise"
        assert [d["metric"] for d in payload["deltas"]] == ["m.a"]
        assert json.dumps(payload)  # JSON-serialisable


class TestRollingDiff:
    def history(self, values):
        return [
            make_record({"m.misprediction_rate": v}, epoch=1000.0 + i)
            for i, v in enumerate(values)
        ]

    def test_within_noise_ok(self):
        history = self.history([0.100, 0.102, 0.098, 0.101])
        cur = make_record({"m.misprediction_rate": 0.1015})
        assert diff_against_history(cur, history).ok

    def test_beyond_sigma_flags(self):
        history = self.history([0.100, 0.102, 0.098, 0.101])
        cur = make_record({"m.misprediction_rate": 0.140})
        diff = diff_against_history(cur, history)
        assert not diff.ok
        assert diff.regressions[0].name == "m.misprediction_rate"
        assert diff.mode == "rolling"

    def test_absolute_floor_guards_zero_variance(self):
        # Deterministic series: sigma is 0, so *any* movement clears
        # k*sigma — the floor keeps sub-threshold wobble quiet.
        history = self.history([0.100, 0.100, 0.100])
        cur = make_record({"m.misprediction_rate": 0.1001})
        assert diff_against_history(cur, history).ok
        worse = make_record({"m.misprediction_rate": 0.200})
        assert not diff_against_history(worse, history).ok

    def test_window_limits_seed(self):
        history = self.history([9.0] * 5 + [0.100, 0.102, 0.098])
        cur = make_record({"m.misprediction_rate": 0.101})
        diff = diff_against_history(cur, history, window=3)
        assert diff.ok
        assert diff.baseline_id == "rolling(3)"

    def test_noise_model_population_sigma(self):
        model = NoiseModel.from_records(self.history([1.0, 3.0]))
        noise = model.stats["m.misprediction_rate"]
        assert noise == MetricNoise(mean=2.0, sigma=1.0, samples=2)


class TestTrend:
    def test_sparkline_levels(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▄▄"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_series_align_with_none_slots(self):
        records = [
            make_record({"m.a": 1.0}, epoch=1000.0),
            make_record({"m.a": 2.0, "m.b": 5.0}, epoch=1001.0),
        ]
        series = trend_series(records)
        assert series == {"m.a": [1.0, 2.0], "m.b": [None, 5.0]}
        assert trend_series(records, pattern="*.b") == \
            {"m.b": [None, 5.0]}

    def test_markdown_render(self):
        records = [
            make_record({"m.mpki": 5.0}, epoch=1000.0),
            make_record({"m.mpki": 4.0}, epoch=1001.0),
        ]
        text = render_trend_markdown(records)
        assert "| m.mpki | 5 | 4 | -20.00% | 4 | 5 |" in text
        assert render_trend_markdown([]).strip().endswith(
            "(no runs in the store)"
        )

    def test_json_render(self):
        records = [make_record({"m.mpki": 5.0})]
        payload = json.loads(render_trend_json(records))
        assert payload["metrics"] == {"m.mpki": [5.0]}
        assert payload["runs"][0]["run_id"] == records[0].run_id

    def test_telemetry_report_integration(self, tmp_path):
        from repro.telemetry import render_history_trend

        store = RunStore(tmp_path)
        store.add(make_record({"m.mpki": 5.0}, epoch=1000.0))
        store.add(make_record({"m.mpki": 4.0}, epoch=1001.0))
        text = render_history_trend(tmp_path)
        assert "# Run-history trends" in text
        assert "m.mpki" in text
        assert render_history_trend(tmp_path, last=1).count("▄") == 1


class TestRecordingDeterminism:
    """Satellite: serial and 4-worker recordings hash identically."""

    ARGS = ("run", "e02", "--scale", "tiny", "--workloads", "crc,qsort",
            "--fast", "--record")

    def test_worker_count_does_not_change_payload(self, tmp_path,
                                                  capsys):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        assert main([*self.ARGS, "--store", str(serial)]) == 0
        assert main([*self.ARGS, "--workers", "4",
                     "--store", str(parallel)]) == 0
        capsys.readouterr()
        a = RunStore(serial).resolve("HEAD")
        b = RunStore(parallel).resolve("HEAD")
        assert canonical_json(a.payload()) == canonical_json(b.payload())
        assert a.run_id == b.run_id
        # Envelopes legitimately differ (timestamps, wall time) — only
        # the deterministic payload is the identity.
        assert a.timestamp != b.timestamp or a.wall_seconds != \
            b.wall_seconds or a.to_dict() == b.to_dict()


class TestHistoryCli:
    ARGS = ("run", "e02", "--scale", "tiny", "--workloads", "crc",
            "--fast", "--record")

    @pytest.fixture()
    def store(self, tmp_path, capsys):
        root = tmp_path / "runs"
        assert main([*self.ARGS, "--store", str(root)]) == 0
        capsys.readouterr()
        return root

    def test_record_then_list_and_show(self, store, capsys):
        assert main(["history", "list", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        record = RunStore(store).resolve("HEAD")
        assert record.run_id in out
        assert "E2" in out
        assert main(["history", "show", "HEAD",
                     "--store", str(store)]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == record.run_id
        assert shown["schema"] == 1
        assert shown["version"]
        assert "sha" in shown["git"]

    def test_show_bad_selector_exits_2(self, store, capsys):
        assert main(["history", "show", "HEAD~9",
                     "--store", str(store)]) == 2

    def test_diff_identical_recordings_exit_0(self, store, capsys):
        assert main([*self.ARGS, "--store", str(store)]) == 0
        capsys.readouterr()
        code = main(["history", "diff", "HEAD", "HEAD~1",
                     "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions" in out

    def test_seeded_fault_fails_diff_naming_metric(self, store, capsys):
        # Seed a fault: republish the last run with one misprediction
        # rate inflated, as if a predictor change had regressed it.
        # (E2's columns are per-predictor misprediction rates.)
        runstore = RunStore(store)
        faulty = runstore.resolve("HEAD")
        name = "E2.crc.gshare_1024"
        assert name in faulty.metrics
        faulty.metrics[name] *= 1.5
        faulty.run_id = ""
        faulty.timestamp = ""
        runstore.add(faulty)
        code = main(["history", "diff", "HEAD", "HEAD~1",
                     "--store", str(store)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert name in out

    def test_diff_against_committed_golden_file(self, store, capsys):
        record = RunStore(store).resolve("HEAD")
        golden = store.parent / "golden.json"
        golden.write_text(json.dumps(record.to_dict()))
        assert main(["history", "diff", "HEAD", "--baseline",
                     str(golden), "--store", str(store)]) == 0

    def test_rolling_diff_needs_history(self, store, capsys):
        assert main(["history", "diff", "HEAD",
                     "--store", str(store)]) == 2
        assert "noise model" in capsys.readouterr().err
        assert main([*self.ARGS, "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["history", "diff", "HEAD",
                     "--store", str(store)]) == 0

    def test_diff_json_output(self, store, capsys):
        assert main([*self.ARGS, "--store", str(store)]) == 0
        capsys.readouterr()
        code = main(["history", "diff", "HEAD", "HEAD~1", "--json",
                     "--store", str(store)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["ok"] is True
        assert payload["regressions"] == []

    def test_trend_and_gc(self, store, capsys):
        assert main([*self.ARGS, "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["history", "trend", "--store", str(store),
                     "--metric", "E2.crc.*"]) == 0
        out = capsys.readouterr().out
        assert "# Run-history trends" in out
        assert "E2.crc" in out
        assert main(["history", "gc", "--keep", "1", "--dry-run",
                     "--store", str(store)]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert len(RunStore(store).paths()) == 2
        assert main(["history", "gc", "--keep", "1",
                     "--store", str(store)]) == 0
        assert len(RunStore(store).paths()) == 1

    def test_records_validate_against_schema_checker(self, store):
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        result = subprocess.run(
            [sys.executable, str(repo / "tools/check_runstore_schema.py"),
             "--store", str(store)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "ok" in result.stdout
