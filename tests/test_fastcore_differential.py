"""Differential equivalence: fast simulation cores vs the object core.

The object-model loop in :mod:`repro.sim.driver` is the reference; the
flat-kernel (``fast``) and numpy-batched (``numpy``) cores must be
*bit-identical* to it — same mispredict counts, same per-class stats,
same headline metrics, branch for branch.  This suite enforces that
over the whole workload suite under both compile configs, over the
paper's mechanism space on focused workloads, and over
hypothesis-generated random traces, and proves the harness can
localise a seeded divergence.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import BranchKind
from repro.predictors import (
    BimodalPredictor,
    GAgPredictor,
    GSelectPredictor,
    GSharePredictor,
    LocalPredictor,
    PGUConfig,
    SFPConfig,
)
from repro.sim import SimOptions, simulate, use_core
from repro.sim import fastcore
from repro.trace.container import Trace, TraceMeta
from repro.workloads import get_workload, workload_names

pytestmark = pytest.mark.fastcore

FAST_CORES = ("fast", "numpy")

#: One factory per kernelized predictor family.
PREDICTORS = {
    "bimodal": lambda: BimodalPredictor(entries=512),
    "gshare": lambda: GSharePredictor(entries=1024, history_bits=10),
    "gselect": lambda: GSelectPredictor(entries=1024, history_bits=5),
    "gag": lambda: GAgPredictor(entries=1024),
    "local": lambda: LocalPredictor(
        entries=512, local_entries=64, history_bits=9
    ),
}

#: The two headline configurations the full matrix runs under.
MATRIX_OPTIONS = {
    "plain": SimOptions(),
    "sfp+pgu": SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
}

#: Mechanism-space variants exercised on focused workloads.
VARIANT_OPTIONS = {
    "sfp-pht": SimOptions(sfp=SFPConfig(update_pht=True)),
    "sfp-nohist": SimOptions(sfp=SFPConfig(update_history=False)),
    "sfp-true": SimOptions(sfp=SFPConfig(squash_known_true=True)),
    "pgu0-guards": SimOptions(
        pgu=PGUConfig(delay=0, which="guards_only")
    ),
    "delayed": SimOptions(delayed_update=True),
    "delayed+sfp+pgu": SimOptions(
        delayed_update=True, sfp=SFPConfig(), pgu=PGUConfig()
    ),
    "d0-delayed": SimOptions(distance=0, delayed_update=True),
    "h8": SimOptions(history_bits=8),
    "h64": SimOptions(history_bits=64),
}


def _assert_identical(ref, got, context):
    assert got.headline_metrics() == ref.headline_metrics(), context
    assert got.per_class == ref.per_class, context
    assert got.branches == ref.branches, context
    assert got.mispredictions == ref.mispredictions, context


@pytest.mark.parametrize(
    "hyperblocks", [True, False], ids=["hyperblock", "baseline"]
)
@pytest.mark.parametrize("workload", workload_names())
def test_full_matrix(workload, hyperblocks):
    """All workloads x both configs x every kernelized predictor."""
    trace = get_workload(workload).trace(
        scale="tiny", hyperblocks=hyperblocks
    )
    for oname, options in MATRIX_OPTIONS.items():
        for label, factory in PREDICTORS.items():
            ref = simulate(trace, factory(), options)
            for core in FAST_CORES:
                got = simulate(trace, factory(), options, core=core)
                _assert_identical(
                    ref, got,
                    f"{workload}/{oname}/{label} on core {core}",
                )


@pytest.mark.parametrize("oname", sorted(VARIANT_OPTIONS))
@pytest.mark.parametrize("workload", ["crc", "grep"])
def test_option_variants(workload, oname):
    """Every mechanism knob, checked branch-for-branch via the harness."""
    trace = get_workload(workload).trace(scale="tiny", hyperblocks=True)
    options = VARIANT_OPTIONS[oname]
    for label, factory in PREDICTORS.items():
        batchable = fastcore.batch_supported(
            fastcore.kernel_from_predictor(factory())
        )
        for core in FAST_CORES:
            if core == "numpy" and not batchable:
                # No numpy backend (local histories are serial); the
                # public knob falls back to the scalar fast loop, which
                # the "fast" leg of this loop already checks.
                continue
            report = fastcore.differential_check(
                trace, factory, options, core=core
            )
            assert report.matches, report.summary()
            assert report.first_divergence is None


def test_trained_state_matches_object_predictor():
    """Replay leaves the kernel tables exactly as object training does."""
    trace = get_workload("crc").trace(scale="tiny", hyperblocks=True)
    predictor = GSharePredictor(entries=1024, history_bits=10)
    simulate(trace, predictor, SimOptions())
    for core in FAST_CORES:
        kernel = fastcore.kernel_from_predictor(
            GSharePredictor(entries=1024, history_bits=10)
        )
        fastcore.run_fast(
            trace,
            GSharePredictor(entries=1024, history_bits=10),
            SimOptions(),
            core=core,
            kernel=kernel,
            require=True,
        )
        assert kernel.table == list(predictor.counters.table), core


class TestSeededDivergence:
    """Corrupt one kernel table entry; the harness must localise it."""

    def _first_read_entry(self, trace, kernel, options):
        plan = fastcore.build_plan(trace, options)
        return plan, int(
            kernel.batch_index(plan.pc[:1], plan.ghr[:1])[0]
        )

    @pytest.mark.parametrize("core", FAST_CORES)
    def test_reports_first_diverging_branch(self, core):
        trace = get_workload("crc").trace(
            scale="tiny", hyperblocks=True
        )
        factory = PREDICTORS["gshare"]
        kernel = fastcore.kernel_from_predictor(factory())
        _, entry = self._first_read_entry(trace, kernel, SimOptions())
        # Flip the prediction the very first branch will read.
        kernel.table[entry] = 3 if kernel.table[entry] < 2 else 0
        report = fastcore.differential_check(
            trace, factory, SimOptions(), core=core, kernel=kernel
        )
        assert not report.matches
        assert report.first_divergence == 0
        assert report.predictor == factory().name
        assert str(report.first_divergence) in report.summary()
        assert core in report.summary()

    def test_clean_kernel_reports_agreement(self):
        trace = get_workload("crc").trace(
            scale="tiny", hyperblocks=True
        )
        factory = PREDICTORS["gshare"]
        report = fastcore.differential_check(
            trace, factory, SimOptions(), core="fast"
        )
        assert report.matches
        assert report.first_divergence is None
        assert "agree" in report.summary()


# -- random-trace equivalence --------------------------------------------------


def random_trace(draw):
    """A structurally valid random trace: sorted dynamic indices,
    guard-define links consistent with the predicate-define stream."""
    n = draw(st.integers(min_value=1, max_value=60))
    last_def = {}
    branches = []
    pdefs = []
    idx = 0
    for _ in range(n):
        idx += draw(st.integers(min_value=1, max_value=5))
        if draw(st.booleans()):
            pred = draw(st.integers(min_value=1, max_value=3))
            pdefs.append(
                (
                    draw(st.integers(min_value=0, max_value=15)),
                    idx,
                    draw(st.integers(min_value=0, max_value=1)),
                    pred,
                )
            )
            last_def[pred] = idx
            idx += draw(st.integers(min_value=1, max_value=3))
        guard = draw(st.integers(min_value=0, max_value=3))
        kind = draw(
            st.sampled_from(
                [BranchKind.COND, BranchKind.LOOP, BranchKind.EXIT]
            )
        )
        branches.append(
            (
                draw(st.integers(min_value=0, max_value=15)),
                idx,
                draw(st.booleans()),
                guard,
                last_def.get(guard, -1) if guard else -1,
                kind,
                draw(st.booleans()),
            )
        )
    return Trace.from_lists(
        b_pc=[b[0] for b in branches],
        b_idx=[b[1] for b in branches],
        b_taken=[b[2] for b in branches],
        b_guard=[b[3] for b in branches],
        b_guard_def=[b[4] for b in branches],
        b_kind=[int(b[5]) for b in branches],
        b_region=[b[6] for b in branches],
        b_target=[0 for _ in branches],
        d_pc=[d[0] for d in pdefs],
        d_idx=[d[1] for d in pdefs],
        d_value=[d[2] for d in pdefs],
        d_pred=[d[3] for d in pdefs],
        meta=TraceMeta(workload="random", instructions=idx + 1),
    )


RANDOM_OPTIONS = [
    SimOptions(),
    SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
    SimOptions(delayed_update=True, sfp=SFPConfig(update_pht=True)),
    SimOptions(distance=1, pgu=PGUConfig(delay=0)),
]


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_random_trace_equivalence(data):
    trace = random_trace(data.draw)
    options = data.draw(st.sampled_from(RANDOM_OPTIONS))
    label = data.draw(st.sampled_from(sorted(PREDICTORS)))
    factory = PREDICTORS[label]
    ref = simulate(trace, factory(), options)
    for core in FAST_CORES:
        got = simulate(trace, factory(), options, core=core)
        _assert_identical(ref, got, f"random/{label} on core {core}")


def test_empty_trace_all_cores():
    trace = Trace.from_lists(
        b_pc=[], b_idx=[], b_taken=[], b_guard=[], b_guard_def=[],
        b_kind=[], b_region=[], b_target=[],
        d_pc=[], d_idx=[], d_value=[], d_pred=[],
        meta=TraceMeta(workload="empty", instructions=0),
    )
    ref = simulate(trace, PREDICTORS["gshare"](), SimOptions())
    for core in FAST_CORES:
        got = simulate(
            trace, PREDICTORS["gshare"](), SimOptions(), core=core
        )
        assert got.branches == ref.branches == 0
        assert got.mispredictions == ref.mispredictions == 0


# -- core knob plumbing --------------------------------------------------------


def test_unsupported_predictor_falls_back_to_object():
    from repro.predictors import make_predictor

    trace = get_workload("crc").trace(scale="tiny", hyperblocks=True)
    predictor = make_predictor("tournament", entries=512)
    ref = simulate(trace, make_predictor("tournament", entries=512),
                   SimOptions())
    got = simulate(trace, predictor, SimOptions(), core="fast")
    assert got.headline_metrics() == ref.headline_metrics()


def test_use_core_context_and_flags():
    trace = get_workload("crc").trace(scale="tiny", hyperblocks=True)
    opts = SimOptions(record_flags=True)
    ref = simulate(trace, PREDICTORS["gshare"](), opts)
    with use_core("fast"):
        got = simulate(trace, PREDICTORS["gshare"](), opts)
    assert np.array_equal(got.flags.correct, ref.flags.correct)
    assert np.array_equal(got.flags.squashed, ref.flags.squashed)
    assert np.array_equal(got.flags.misfetch, ref.flags.misfetch)


def test_same_run_id_across_cores():
    """sim_core lives in the envelope, so records hash identically."""
    from repro import telemetry
    from repro.runstore import RunRecorder

    trace = get_workload("crc").trace(scale="tiny", hyperblocks=True)
    records = {}
    for core in ("object", "fast"):
        recorder = RunRecorder("simulate", "crc", scale="tiny")
        recorder.record.sim_core = core
        with telemetry.use_registry(
            telemetry.MetricsRegistry()
        ) as registry:
            result = simulate(
                trace, PREDICTORS["gshare"](), SimOptions(), core=core
            )
        recorder.add_sim_result(result, prefix="crc")
        records[core] = recorder.finish(registry)
    assert records["object"].run_id == records["fast"].run_id
    for core, record in records.items():
        assert record.to_dict()["sim_core"] == core
        assert "sim_core" not in record.payload()


def test_fastcore_telemetry_counters_match_object():
    from repro import telemetry

    trace = get_workload("grep").trace(scale="tiny", hyperblocks=True)
    options = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())
    snapshots = {}
    for core in ("object", "fast", "numpy"):
        with telemetry.use_registry(
            telemetry.MetricsRegistry()
        ) as registry:
            simulate(trace, PREDICTORS["gshare"](), options, core=core)
        snapshots[core] = registry.snapshot()["counters"]
    for core in FAST_CORES:
        got = dict(snapshots[core])
        used = got.pop(f"sim.core.{core}")
        assert used == 1
        assert got == snapshots["object"], core
