"""Tests for the static/dynamic contract checker (``repro.analysis.contract``).

Two halves:

* deterministic unit tests — hand-built traces, flags and events
  replayed against a tiny program with fully known static facts, plus
  seeded *faults* (a tampered outcome, a bogus guard resolution, a
  squash on a provably unfilterable branch) that must each be detected
  under its stable violation kind;
* the differential acceptance gate — every bundled workload, both
  compile configs, all three simulation cores, replayed against their
  own static contracts with zero violations.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (
    ContractChecker,
    ContractError,
    ContractViolation,
    StaticContract,
    run_contract_gate,
)
from repro.analysis.contract import (
    AVAIL_ABOVE_MAX,
    AVAIL_BELOW_MIN,
    DEFINE_NOT_REACHING,
    DEFINE_NOT_RECORDED,
    DISARMED_RATE,
    FILTERED_UNFILTERABLE,
    NOT_TAKEN_CONST,
    TAKEN_DEAD,
    UNDEFINED_GUARD,
    UNKNOWN_SITE,
    check_flags,
    check_trace,
)
from repro.compiler.config import HYPERBLOCK
from repro.isa import ProgramBuilder, Relation
from repro.predictors import make_predictor
from repro.profiler.events import (
    AVAIL_NEVER,
    PGUPath,
    PredictionEvent,
    SFPDecision,
)
from repro.profiler.spec import ProfileSpec
from repro.sim.driver import SimOptions, simulate
from repro.workloads import get_workload, workload_names


def contract_program():
    """A program whose static facts are known exactly.

    pc 6: ``br qp=1`` — guard unknown, avail (5, 5), verdict always.
    pc 7: same branch on the fall-through — p1 proven false
          (must_not_taken), avail (6, 6).
    pc 10: ``br qp=4`` one instruction after its compare — avail
          (1, 1), verdict never (never_filterable at distance 4).
    """
    pb = ProgramBuilder()
    f = pb.function("main")
    f.movi(1, 3)
    f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
    for _ in range(4):
        f.addi(3, 1, 0)
    f.br("done", qp=1)
    f.br("done", qp=1)
    f.halt()
    f.label("done")
    f.cmp(Relation.LT, 4, 5, ra=1, imm=0)
    f.br("end", qp=4)
    f.halt()
    f.label("end")
    f.halt()
    return pb.link()


def must_taken_program():
    """pc 8 is a branch whose guard is proven true (taken-edge only),
    resolved 6 instructions back so it stays SFP-filterable."""
    pb = ProgramBuilder()
    f = pb.function("main")
    f.movi(1, 3)
    f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
    for _ in range(4):
        f.addi(3, 1, 0)
    f.br("taken", qp=1)
    f.halt()
    f.label("taken")
    f.br("out", qp=1)
    f.halt()
    f.label("out")
    f.halt()
    return pb.link()


@pytest.fixture(scope="module")
def contract():
    return StaticContract.for_executable(contract_program(), name="t")


@pytest.fixture(scope="module")
def must_taken_contract():
    return StaticContract.for_executable(must_taken_program(), name="t")


def make_event(
    pc,
    seq=0,
    taken=False,
    avail=AVAIL_NEVER,
    sfp=SFPDecision.NOT_FILTERED,
    guard=1,
):
    return PredictionEvent(
        seq=seq,
        pc=pc,
        branch_class=0,
        region_based=False,
        guard=guard,
        avail=avail,
        sfp=sfp,
        pgu=PGUPath.OFF,
        pgu_bits=0,
        predicted=False,
        taken=taken,
    )


def kinds(violations):
    return [v.kind for v in violations]


class TestCheckEvent:
    def test_clean_event_passes(self, contract):
        assert contract.check_event(make_event(6, avail=5)) == []

    def test_taken_dead_branch(self, contract):
        found = contract.check_event(make_event(7, taken=True, avail=6))
        assert kinds(found) == [TAKEN_DEAD]
        assert "proven false" in found[0].detail

    def test_not_taken_const_branch(self, must_taken_contract):
        found = must_taken_contract.check_event(
            make_event(8, taken=False, avail=6)
        )
        assert kinds(found) == [NOT_TAKEN_CONST]

    def test_unknown_site(self, contract):
        found = contract.check_event(make_event(10**6))
        assert kinds(found) == [UNKNOWN_SITE]

    def test_filtered_unfilterable(self, contract):
        found = contract.check_event(
            make_event(
                10, guard=4, avail=1, sfp=SFPDecision.FILTERED_CORRECT
            )
        )
        assert FILTERED_UNFILTERABLE in kinds(found)

    def test_avail_bounds(self, contract):
        below = contract.check_event(make_event(6, avail=2))
        assert kinds(below) == [AVAIL_BELOW_MIN]
        above = contract.check_event(make_event(6, avail=9))
        assert kinds(above) == [AVAIL_ABOVE_MAX]

    def test_guard_unexpectedly_undefined(self, contract):
        found = contract.check_event(make_event(6, avail=AVAIL_NEVER))
        assert kinds(found) == [UNDEFINED_GUARD]


def fake_trace(
    b_pc, b_idx, b_taken, b_guard_def, d_idx=(), d_pc=()
):
    return SimpleNamespace(
        b_pc=np.asarray(b_pc, dtype=np.int64),
        b_idx=np.asarray(b_idx, dtype=np.int64),
        b_taken=np.asarray(b_taken, dtype=bool),
        b_guard_def=np.asarray(b_guard_def, dtype=np.int64),
        d_idx=np.asarray(d_idx, dtype=np.int64),
        d_pc=np.asarray(d_pc, dtype=np.int64),
        num_branches=len(b_pc),
    )


class TestCheckTrace:
    """Hand-built branch streams against the known facts of
    :func:`contract_program` — including seeded simulator faults."""

    def test_consistent_trace_passes(self, contract):
        trace = fake_trace(
            b_pc=[6], b_idx=[100], b_taken=[False], b_guard_def=[95],
            d_idx=[95], d_pc=[1],
        )
        assert check_trace(trace, contract) == []

    def test_tampered_outcome_on_dead_branch(self, contract):
        trace = fake_trace(
            b_pc=[7], b_idx=[100], b_taken=[True], b_guard_def=[94],
            d_idx=[94], d_pc=[1],
        )
        assert TAKEN_DEAD in kinds(check_trace(trace, contract))

    def test_avail_below_static_min(self, contract):
        # Guard "resolved" 2 instructions back; statically it is
        # always exactly 5.
        trace = fake_trace(
            b_pc=[6], b_idx=[100], b_taken=[False], b_guard_def=[98],
            d_idx=[98], d_pc=[1],
        )
        assert AVAIL_BELOW_MIN in kinds(check_trace(trace, contract))

    def test_avail_above_static_max(self, contract):
        trace = fake_trace(
            b_pc=[6], b_idx=[100], b_taken=[False], b_guard_def=[80],
            d_idx=[80], d_pc=[1],
        )
        assert AVAIL_ABOVE_MAX in kinds(check_trace(trace, contract))

    def test_define_not_recorded(self, contract):
        # The claimed resolving define has no define-stream row.
        trace = fake_trace(
            b_pc=[6], b_idx=[100], b_taken=[False], b_guard_def=[95],
            d_idx=[90], d_pc=[1],
        )
        assert DEFINE_NOT_RECORDED in kinds(check_trace(trace, contract))

    def test_define_not_reaching(self, contract):
        # The define-stream row points at an instruction the analysis
        # proves can never define this branch's guard.
        trace = fake_trace(
            b_pc=[6], b_idx=[100], b_taken=[False], b_guard_def=[95],
            d_idx=[95], d_pc=[3],
        )
        assert DEFINE_NOT_REACHING in kinds(check_trace(trace, contract))

    def test_unknown_branch_site(self, contract):
        trace = fake_trace(
            b_pc=[12345], b_idx=[0], b_taken=[False], b_guard_def=[-1],
        )
        assert kinds(check_trace(trace, contract)) == [UNKNOWN_SITE]

    def test_undefined_guard_on_always_defined_site(self, contract):
        trace = fake_trace(
            b_pc=[6], b_idx=[100], b_taken=[False], b_guard_def=[-1],
        )
        assert UNDEFINED_GUARD in kinds(check_trace(trace, contract))

    def test_violations_capped(self, contract):
        n = 50
        trace = fake_trace(
            b_pc=[7] * n,
            b_idx=list(range(100, 100 + n)),
            b_taken=[True] * n,
            b_guard_def=[-1] * n,
        )
        found = check_trace(trace, contract, max_violations=5)
        assert len(found) == 5


class TestCheckFlags:
    def test_squash_on_unfilterable_site(self, contract):
        trace = fake_trace(
            b_pc=[10], b_idx=[100], b_taken=[False], b_guard_def=[99],
        )
        flags = SimpleNamespace(squashed=np.array([True]))
        found = check_flags(trace, flags, contract)
        assert kinds(found) == [FILTERED_UNFILTERABLE]

    def test_squash_on_must_taken_site(self, must_taken_contract):
        trace = fake_trace(
            b_pc=[8], b_idx=[10], b_taken=[True], b_guard_def=[3],
        )
        flags = SimpleNamespace(squashed=np.array([True]))
        found = check_flags(trace, flags, must_taken_contract)
        assert kinds(found) == [NOT_TAKEN_CONST]
        # With squash_known_true the squash is the configured behavior.
        assert (
            check_flags(
                trace, flags, must_taken_contract, squash_known_true=True
            )
            == []
        )

    def test_unsquashed_branches_are_not_checked(self, contract):
        trace = fake_trace(
            b_pc=[10], b_idx=[100], b_taken=[False], b_guard_def=[99],
        )
        flags = SimpleNamespace(squashed=np.array([False]))
        assert check_flags(trace, flags, contract) == []


class TestContractChecker:
    def test_armed_checker_accumulates_and_raises(self, contract):
        checker = ContractChecker(contract, spec=ProfileSpec(rate=1))
        checker.collect(make_event(7, taken=True, avail=6))
        checker.collect(make_event(6, avail=5))
        assert checker.events_checked == 2
        assert kinds(checker.violations) == [TAKEN_DEAD]
        with pytest.raises(ContractError) as excinfo:
            checker.raise_on_violations()
        assert TAKEN_DEAD in str(excinfo.value)
        assert excinfo.value.violations == checker.violations

    def test_fail_fast_raises_on_first_violation(self, contract):
        checker = ContractChecker(contract, fail_fast=True)
        with pytest.raises(ContractError):
            checker.collect(make_event(7, taken=True, avail=6))

    def test_disarmed_checker_advertises_unreachable_rate(self, contract):
        checker = ContractChecker(contract, armed=False)
        assert checker.rate == DISARMED_RATE
        assert checker.events_checked == 0

    def test_disarmed_checker_sees_no_events_in_simulation(self):
        workload = get_workload("crc")
        executable = workload.compile("tiny", HYPERBLOCK).executable
        contract = StaticContract.for_executable(executable, name="crc")
        trace = workload.trace("tiny", hyperblocks=True)
        checker = ContractChecker(contract, armed=False)
        simulate(
            trace,
            make_predictor("gshare"),
            SimOptions(),
            collector=checker,
            core="object",
        )
        assert checker.events_checked == 0
        assert checker.violations == []

    def test_error_message_truncates_display_not_data(self, contract):
        violations = [
            ContractViolation(TAKEN_DEAD, 7, seq, "tampered")
            for seq in range(30)
        ]
        error = ContractError(violations)
        assert len(error.violations) == 30
        assert "(10 more)" in str(error)

    def test_violation_to_dict(self):
        violation = ContractViolation(TAKEN_DEAD, 7, 3, "detail")
        assert violation.to_dict() == {
            "kind": TAKEN_DEAD,
            "pc": 7,
            "seq": 3,
            "detail": "detail",
        }


class TestDifferentialGate:
    """The acceptance sweep: every workload × config × core replays
    with zero contract violations against its own static facts."""

    @pytest.mark.parametrize("core", ["object", "fast", "numpy"])
    @pytest.mark.parametrize(
        "hyperblocks", [False, True], ids=["baseline", "hyper"]
    )
    @pytest.mark.parametrize("name", workload_names())
    def test_gate_is_clean(self, name, hyperblocks, core):
        result = run_contract_gate(name, hyperblocks=hyperblocks, core=core)
        assert result.ok, "\n".join(
            str(v) for v in result.violations[:10]
        )
        assert result.branches > 0
        assert result.workload == name
        assert result.core == core
        if core == "object":
            # Rate-1 sampling: the armed checker saw the whole stream.
            assert result.events_checked > 0

    def test_gate_result_raises_when_dirty(self):
        from repro.analysis import GateResult

        result = GateResult(
            workload="w",
            config="hyperblock",
            core="object",
            branches=1,
            events_checked=1,
            violations=[ContractViolation(TAKEN_DEAD, 0, 0, "x")],
        )
        assert not result.ok
        with pytest.raises(ContractError):
            result.raise_on_violations()
