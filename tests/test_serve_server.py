"""End-to-end daemon tests: memoization, errors, backpressure, cores.

Most tests run the server in ``--workers 0`` inline mode (jobs execute
on a thread inside the daemon process — fast, and safe to combine with
the background server thread).  One test runs a real spawned pool
worker to prove the core knob threads end-to-end.

The acceptance assertions from the issue live here:

* the same request twice returns byte-identical bodies except
  ``"cached": true`` the second time, with **zero** additional
  simulator invocations (``sim.*`` counter deltas are zero);
* a request the serial CLI already recorded is served from the store,
  and a record the daemon publishes is bit-identical (same ``run_id``,
  same metrics) to what the serial CLI writes for the same request.
"""

import http.client
import json
import time
from contextlib import contextmanager

import pytest

from repro.cli import main
from repro.runstore import RunStore
from repro.serve import ServeClient, ServeConfig, ServerThread

TINY = {"workload": "crc", "scale": "tiny"}


@contextmanager
def serve(store, **overrides):
    overrides.setdefault("workers", 0)
    config = ServeConfig(port=0, store=str(store), **overrides)
    with ServerThread(config) as handle:
        with ServeClient(port=handle.port, timeout=120.0) as client:
            yield handle, client


def sim_counters(client):
    _, snapshot = client.metrics()
    return {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if name.startswith("sim.")
    }


def counter(client, name):
    _, snapshot = client.metrics()
    return snapshot.get("counters", {}).get(name, 0)


def wait_for(predicate, timeout=60.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not met before timeout")


class TestMemoization:
    def test_second_request_is_a_cache_hit_without_simulation(
        self, tmp_path
    ):
        with serve(tmp_path / "runs") as (_, client):
            status, first = client.simulate(**TINY)
            assert status == 200
            assert first["cached"] is False
            assert first["metrics"]  # real numbers came back

            before = sim_counters(client)
            assert before["sim.runs"] >= 1

            status, second = client.simulate(**TINY)
            assert status == 200
            assert second["cached"] is True
            assert second["run_id"] == first["run_id"]

            # Identical bodies except the cached flag.
            a, b = dict(first), dict(second)
            assert a.pop("cached") is False
            assert b.pop("cached") is True
            assert a == b

            # Zero additional simulator work for the hit.
            assert sim_counters(client) == before
            assert counter(client, "serve.cache_hit") == 1
            assert counter(client, "serve.cache_miss") == 1

    def test_hit_survives_a_daemon_restart(self, tmp_path):
        store = tmp_path / "runs"
        with serve(store) as (_, client):
            _, first = client.simulate(**TINY)
            assert first["cached"] is False
        # New daemon, same store: the index is primed from disk.
        with serve(store) as (_, client):
            status, again = client.simulate(**TINY)
            assert status == 200
            assert again["cached"] is True
            assert again["run_id"] == first["run_id"]
            assert counter(client, "serve.cache_miss") == 0

    def test_run_route_returns_the_stored_record(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            _, body = client.simulate(**TINY)
            status, record = client.run(body["run_id"])
            assert status == 200
            assert record["run_id"] == body["run_id"]
            assert record["kind"] == "simulate"
            assert record["metrics"] == body["metrics"]
            assert record["command"] == "serve simulate"


class TestSerialDaemonIdentity:
    def test_cli_recorded_run_is_served_from_the_store(self, tmp_path):
        """Serial first, daemon second: daemon reuses the CLI record."""
        store = tmp_path / "runs"
        assert main([
            "simulate", "crc", "--scale", "tiny",
            "--record", "--store", str(store),
        ]) == 0
        (cli_record,) = RunStore(store).records()
        with serve(store) as (_, client):
            status, body = client.simulate(**TINY)
            assert status == 200
            assert body["cached"] is True
            assert body["run_id"] == cli_record.run_id
            assert body["metrics"] == cli_record.metrics
            assert counter(client, "serve.cache_miss") == 0
            # The daemon never wrote anything.
            assert len(RunStore(store).paths()) == 1

    def test_daemon_record_is_bit_identical_to_the_cli(self, tmp_path):
        """Daemon first, serial second: same run id, same metrics."""
        with serve(tmp_path / "daemon-runs") as (_, client):
            _, body = client.simulate(**TINY)
        cli_store = tmp_path / "cli-runs"
        assert main([
            "simulate", "crc", "--scale", "tiny",
            "--record", "--store", str(cli_store),
        ]) == 0
        (cli_record,) = RunStore(cli_store).records()
        assert body["run_id"] == cli_record.run_id
        assert body["metrics"] == cli_record.metrics
        assert body["request_key"] == cli_record.request_key()


class TestOtherOps:
    def test_profile_roundtrip_and_memoization(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.profile(**TINY)
            assert status == 200
            assert body["kind"] == "profile"
            assert body["metrics"]["profile.events"] > 0
            status, again = client.profile(**TINY)
            assert again["cached"] is True
            assert again["run_id"] == body["run_id"]

    def test_sweep_roundtrip_and_memoization(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.sweep(
                workloads=["crc", "qsort"], scale="tiny"
            )
            assert status == 200
            assert body["kind"] == "sweep"
            assert any(
                key.startswith("crc.") for key in body["metrics"]
            )
            assert any(
                key.startswith("qsort.") for key in body["metrics"]
            )
            # Re-ordered axes are the same logical request.
            status, again = client.sweep(
                workloads=["qsort", "crc", "qsort"], scale="tiny"
            )
            assert again["cached"] is True
            assert again["run_id"] == body["run_id"]


class TestErrorPaths:
    def test_malformed_json_is_structured_400(self, tmp_path):
        with serve(tmp_path / "runs") as (handle, _):
            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=30.0
            )
            try:
                conn.request(
                    "POST", "/v1/simulate", body=b"{not json",
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = json.loads(response.read())
            finally:
                conn.close()
            assert response.status == 400
            assert body["error"]["code"] == "bad_json"

    def test_unknown_workload_is_structured_404(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.simulate(
                workload="not-a-workload", scale="tiny"
            )
            assert status == 404
            assert body["error"]["code"] == "unknown_workload"

    def test_unknown_field_is_structured_400(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.simulate(workload="crc", turbo=True)
            assert status == 400
            assert body["error"]["code"] == "unknown_field"

    def test_unknown_route_and_method(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.request("GET", "/v1/nope")
            assert status == 404
            status, body = client.request("PUT", "/v1/simulate")
            assert status == 405
            status, body = client.request("GET", "/v1/jobs/job-999999")
            assert status == 404
            assert body["error"]["code"] == "unknown_job"
            status, body = client.request("GET", "/v1/runs/ffffffffffff")
            assert status == 404
            assert body["error"]["code"] == "unknown_run"

    def test_oversized_body_is_413(self, tmp_path):
        with serve(tmp_path / "runs", max_body_bytes=1024) as \
                (handle, _):
            conn = http.client.HTTPConnection(
                "127.0.0.1", handle.port, timeout=30.0
            )
            try:
                conn.request(
                    "POST", "/v1/simulate",
                    body=b"x" * 2048,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = json.loads(response.read())
            finally:
                conn.close()
            assert response.status == 413
            assert body["error"]["code"] == "body_too_large"


class TestQueueBehaviour:
    def test_backpressure_429_when_the_queue_is_full(self, tmp_path):
        with serve(tmp_path / "runs", max_queue_depth=2) as \
                (handle, client):
            handle.pause()
            job_ids = []
            # First job is dequeued and held at the pause gate...
            status, body = client.simulate(
                workload="crc", scale="tiny", entries=16, wait=False
            )
            assert status == 202
            job_ids.append(body["job_id"])
            wait_for(lambda: client.healthz()[1]["queue_depth"] == 0)
            # ...the next two fill the queue...
            for entries in (32, 64):
                status, body = client.simulate(
                    workload="crc", scale="tiny", entries=entries,
                    wait=False,
                )
                assert status == 202
                job_ids.append(body["job_id"])
            # ...and the fourth distinct request is shed at admission.
            status, body = client.simulate(
                workload="crc", scale="tiny", entries=128, wait=False
            )
            assert status == 429
            assert body["error"]["code"] == "queue_full"
            assert body["retry_after"] == 1
            assert counter(client, "serve.rejected_queue_full") == 1

            handle.resume()
            for job_id in job_ids:
                wait_for(
                    lambda j=job_id: client.job(j)[1]["state"] == "done"
                )

    def test_cancel_a_queued_job(self, tmp_path):
        with serve(tmp_path / "runs", max_queue_depth=8) as \
                (handle, client):
            handle.pause()
            # Occupy the dispatcher so the victim stays in the queue.
            _, gate = client.simulate(
                workload="crc", scale="tiny", entries=16, wait=False
            )
            wait_for(lambda: client.healthz()[1]["queue_depth"] == 0)
            _, victim = client.simulate(
                workload="crc", scale="tiny", entries=32, wait=False
            )
            status, body = client.cancel(victim["job_id"])
            assert status == 200
            assert body["state"] == "cancelled"
            status, body = client.job(victim["job_id"])
            assert body["state"] == "cancelled"
            # Cancelling a finished job is a structured conflict.
            handle.resume()
            wait_for(
                lambda: client.job(gate["job_id"])[1]["state"] == "done"
            )
            status, body = client.cancel(gate["job_id"])
            assert status == 409
            assert body["error"]["code"] == "not_cancellable"
            assert counter(client, "serve.jobs_cancelled") == 1
            # The cancelled job's record was never published.
            assert len(RunStore(tmp_path / "runs").paths()) == 1

    def test_identical_inflight_requests_coalesce(self, tmp_path):
        with serve(tmp_path / "runs") as (handle, client):
            handle.pause()
            _, first = client.simulate(**TINY, wait=False)
            _, second = client.simulate(**TINY, wait=False)
            assert first["job_id"] == second["job_id"]
            assert counter(client, "serve.coalesced") == 1
            assert counter(client, "serve.jobs_enqueued") == 1
            handle.resume()
            wait_for(
                lambda: client.job(first["job_id"])[1]["state"]
                == "done"
            )
            status, body = client.job(first["job_id"])
            assert body["result"]["cached"] is False

    def test_wait_false_then_poll_for_the_result(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.simulate(**TINY, wait=False)
            assert status == 202
            job_id = body["job_id"]
            wait_for(
                lambda: client.job(job_id)[1]["state"] == "done"
            )
            _, done = client.job(job_id)
            assert done["result"]["run_id"]
            assert done["exec_seconds"] > 0


class TestOperational:
    def test_healthz_shape(self, tmp_path):
        with serve(tmp_path / "runs") as (handle, client):
            status, body = client.healthz()
            assert status == 200
            assert body["status"] == "ok"
            assert body["core"] == "object"
            assert body["workers"] == 0
            assert body["queue_depth"] == 0
            assert str(tmp_path / "runs") in body["store"]

    def test_priority_zero_jumps_the_queue(self, tmp_path):
        with serve(tmp_path / "runs", max_queue_depth=8) as \
                (handle, client):
            handle.pause()
            _, gate = client.simulate(
                workload="crc", scale="tiny", entries=16, wait=False
            )
            wait_for(lambda: client.healthz()[1]["queue_depth"] == 0)
            _, slow = client.simulate(
                workload="crc", scale="tiny", entries=32,
                wait=False, priority=9,
            )
            _, urgent = client.simulate(
                workload="crc", scale="tiny", entries=64,
                wait=False, priority=0,
            )
            handle.resume()
            for body in (gate, slow, urgent):
                wait_for(
                    lambda b=body: client.job(b["job_id"])[1]["state"]
                    == "done"
                )
            finished = {
                name: client.job(body["job_id"])[1]
                for name, body in (("slow", slow), ("urgent", urgent))
            }
            # The urgent job waited less than the low-priority one that
            # was admitted before it.
            assert finished["urgent"]["queue_seconds"] <= \
                finished["slow"]["queue_seconds"]


class TestAsyncClient:
    def test_async_roundtrip(self, tmp_path):
        import asyncio

        from repro.serve import AsyncServeClient

        async def run(port):
            async with AsyncServeClient(port=port) as client:
                status, health = await client.healthz()
                assert status == 200
                status, body = await client.submit("simulate", **TINY)
                assert status == 200
                status, again = await client.submit("simulate", **TINY)
                assert again["cached"] is True
                return body, again

        with serve(tmp_path / "runs") as (handle, _):
            body, again = asyncio.run(run(handle.port))
        assert again["run_id"] == body["run_id"]


class TestCoreThreading:
    def test_core_knob_threads_into_spawned_pool_workers(
        self, tmp_path
    ):
        """The --core satellite, end to end: a daemon under
        ``--core numpy`` runs its (spawned) pool workers on the numpy
        core, the envelope says so, and the record is bit-identical to
        the serial object-core run."""
        pytest.importorskip("numpy")
        store = tmp_path / "runs"
        with serve(store, workers=1, core="numpy",
                   mp_context="spawn") as (_, client):
            status, body = client.simulate(**TINY)
            assert status == 200
            assert body["sim_core"] == "numpy"
        record = RunStore(store).records()[-1]
        assert record.sim_core == "numpy"
        # The worker really replayed on the numpy core (its merged
        # telemetry says which core ran), not just the envelope.
        assert record.telemetry["counters"].get("sim.core.numpy", 0) \
            >= 1
        # Cores are bit-identical: the serial object-core CLI run
        # produces the same payload, hence the same run id.
        cli_store = tmp_path / "cli-runs"
        assert main([
            "simulate", "crc", "--scale", "tiny",
            "--record", "--store", str(cli_store),
        ]) == 0
        (cli_record,) = RunStore(cli_store).records()
        assert cli_record.run_id == record.run_id
        assert cli_record.metrics == record.metrics
