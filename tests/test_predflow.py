"""Tests for the predicate-flow analysis (``repro.analysis.predflow``).

Mirrors the structure of ``test_analysis.py``: one seeded fixture per
new rule id (RPA012-RPA017), each firing *exactly* that rule, plus unit
tests for the value lattice, guard-distance bounds and the report
shape, and the no-truncation regression test for
:class:`StaticAnalysisError`.
"""

import pytest

from repro.analysis import (
    LintReport,
    Severity,
    StaticAnalysisError,
    analyze_executable,
    lint_executable,
)
from repro.analysis.predflow import (
    ANALYZE_SCHEMA_VERSION,
    SAT_DISTANCE,
    VERDICT_ALWAYS,
    VERDICT_NEVER,
    VERDICT_SOMETIMES,
    VERDICT_UNDEFINED,
    VERDICT_UNGUARDED,
    BranchFacts,
)
from repro.isa import (
    BranchKind,
    Instruction,
    Opcode,
    ProgramBuilder,
    Relation,
)
from repro.isa.registers import P_TRUE


def lint(pb: ProgramBuilder, name: str = "t") -> LintReport:
    return lint_executable(pb.link(), name=name)


def _single_rule(pb, rule_id, severity):
    report = lint(pb)
    assert report.rule_ids() == [rule_id], report.render()
    fired = report.by_severity(severity)
    assert fired and all(d.rule_id == rule_id for d in fired)
    return report


def region_exit(f, qp, target, region=1):
    """Emit a region-based exit branch guarded by ``qp``."""
    return f.emit(
        Instruction(
            op=Opcode.BR,
            qp=qp,
            target=target,
            kind=BranchKind.EXIT,
            region=region,
            region_based=True,
        )
    )


def pad(f, count=4):
    """Filler between a compare and its branch so the guard resolves a
    full availability distance ahead (keeps RPA015 out of fixtures that
    seed a different rule)."""
    for _ in range(count):
        f.addi(3, 1, 0)


class TestSeededPredflowViolations:
    """One minimal fixture per new rule id, firing exactly that rule."""

    def test_rpa012_guard_clobbered_outside_region(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        cmp = f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        cmp.region = 1                          # in-region define of p1
        f.br("skip", qp=2)
        f.cmp(Relation.LT, 1, 3, ra=1, imm=5)   # region -1 clobber of p1
        f.label("skip")
        pad(f)
        region_exit(f, qp=1, target="done")
        f.halt()
        f.label("done")
        f.halt()
        report = _single_rule(pb, "RPA012", Severity.WARNING)
        assert "outside" in report.warnings[0].message

    def test_rpa013_statically_dead_region_exit(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        cmp = f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        cmp.region = 1
        pad(f)
        f.br("done", qp=1)
        # Fall through proves p1 false: the exit below is dead.
        region_exit(f, qp=1, target="done")
        f.halt()
        f.label("done")
        f.halt()
        report = _single_rule(pb, "RPA013", Severity.WARNING)
        assert "provably false" in report.warnings[0].message

    def test_rpa014_region_branch_always_taken(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        cmp = f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        cmp.region = 1
        pad(f)
        f.br("taken", qp=1)
        f.halt()
        f.label("taken")
        # Only reachable on the taken edge, where p1 is proven true.
        region_exit(f, qp=1, target="out")
        f.halt()
        f.label("out")
        f.halt()
        report = _single_rule(pb, "RPA014", Severity.INFO)
        assert "provably true" in report.diagnostics[0].message

    def test_rpa015_never_sfp_filterable(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        cmp = f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        cmp.region = 1
        # No padding: the guard resolves 1 instruction before the
        # branch, below the default availability distance of 4.
        region_exit(f, qp=1, target="done")
        f.halt()
        f.label("done")
        f.halt()
        report = _single_rule(pb, "RPA015", Severity.INFO)
        assert "SFP" in report.diagnostics[0].message

    def test_rpa016_pgu_invisible_complement_guard(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        cmp = f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        cmp.region = 1
        pad(f)
        # Guarded by the complement (pd2) target: PGU never sees it.
        region_exit(f, qp=2, target="done")
        f.halt()
        f.label("done")
        f.halt()
        report = _single_rule(pb, "RPA016", Severity.INFO)
        assert "complement" in report.diagnostics[0].message

    def test_rpa017_loop_carried_region_guard(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 8)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)   # pre-loop define
        pad(f)
        f.label("loop")
        # The in-region define of p1 sits *after* this branch: the
        # guard only reaches it around the back edge.
        region_exit(f, qp=1, target="done")
        f.subi(1, 1, 1)
        cmp = f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        cmp.region = 1
        f.jmp("loop")
        f.label("done")
        f.halt()
        report = _single_rule(pb, "RPA017", Severity.WARNING)
        assert "loop-carried" in report.warnings[0].message


class TestValueAnalysis:
    def test_fall_through_refinement_proves_guard_false(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.br("done", qp=1)
        f.br("done", qp=1)   # second look at p1 on the fall-through
        f.halt()
        f.label("done")
        f.halt()
        report = analyze_executable(pb.link(), name="t")
        # Two branch events on p1; the second sits on the refined path.
        branches = [b for b in report.branches() if b.guard == 1]
        assert len(branches) == 2
        assert branches[0].guard_value == "unknown"
        assert branches[1].guard_value == "false"
        assert branches[1].must_not_taken

    def test_taken_refinement_proves_guard_true(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.br("taken", qp=1)
        f.halt()
        f.label("taken")
        f.br("out", qp=1)
        f.halt()
        f.label("out")
        f.halt()
        report = analyze_executable(pb.link(), name="t")
        branches = [b for b in report.branches() if b.guard == 1]
        assert branches[1].guard_value == "true"
        assert branches[1].must_taken

    def test_complement_partner_refines_the_other_register(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.br("done", qp=2)
        # Fall through: p2 false, hence complement p1 true.
        f.br("done", qp=1)
        f.halt()
        f.label("done")
        f.halt()
        report = analyze_executable(pb.link(), name="t")
        branches = list(report.branches())
        assert branches[1].guard == 1
        assert branches[1].guard_value == "true"

    def test_entry_state_knows_non_p0_predicates_false(self):
        # The activation installs an all-false predicate file: a branch
        # guarded by an undefined predicate is provably not taken.
        pb = ProgramBuilder()
        f = pb.function("main")
        f.br("done", qp=5)
        f.halt()
        f.label("done")
        f.halt()
        report = analyze_executable(pb.link(), name="t")
        (branch,) = report.branches()
        assert branch.guard_value == "false"
        assert branch.must_not_taken
        assert branch.verdict(4) == VERDICT_UNDEFINED


class TestGuardDistance:
    def test_distance_counts_fetched_instructions(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.addi(3, 1, 0)
        f.addi(3, 1, 0)
        f.br("done", qp=1)
        f.halt()
        f.label("done")
        f.halt()
        report = analyze_executable(pb.link(), name="t")
        (branch,) = report.branches()
        assert (branch.min_avail, branch.max_avail) == (3, 3)
        assert not branch.may_be_undefined
        assert branch.verdict(3) == VERDICT_ALWAYS
        assert branch.verdict(4) == VERDICT_NEVER

    def test_call_saturates_the_upper_bound_only(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.call(4, "g", nargs=0)
        f.br("done", qp=1)
        f.halt()
        f.label("done")
        f.halt()
        g = pb.function("g")
        g.ret(imm=0)
        report = analyze_executable(pb.link(), name="t")
        branch = next(b for b in report.branches() if b.opcode == "br")
        assert branch.min_avail == 2
        assert branch.max_avail == SAT_DISTANCE
        assert branch.verdict(4) == VERDICT_SOMETIMES

    def test_diverging_paths_give_min_max_interval(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.br("late", qp=2)
        f.br("out", qp=1)      # short path: distance 2
        f.label("late")
        f.addi(3, 1, 0)
        f.addi(3, 1, 0)
        f.br("out", qp=1)      # reached taken (dist 4) or fallen (5)
        f.halt()
        f.label("out")
        f.halt()
        report = analyze_executable(pb.link(), name="t")
        guarded = [b for b in report.branches() if b.guard == 1]
        assert [(b.min_avail, b.max_avail) for b in guarded] == [
            (2, 2),
            (4, 5),
        ]


class TestVerdicts:
    def _facts(self, **overrides) -> BranchFacts:
        base = dict(
            pc=0,
            function="f",
            index=0,
            opcode="br",
            region=1,
            region_based=True,
            guard=1,
            guard_value="unknown",
            min_avail=5,
            max_avail=9,
            may_be_undefined=False,
            reaching_defines=(),
            guard_defines=(),
            in_region_defines=(),
            complement_only=False,
            dominated_by_define=True,
        )
        base.update(overrides)
        return BranchFacts(**base)

    def test_verdict_table(self):
        assert self._facts(guard=P_TRUE).verdict(4) == VERDICT_UNGUARDED
        assert (
            self._facts(min_avail=-1, max_avail=-1).verdict(4)
            == VERDICT_UNDEFINED
        )
        assert self._facts(max_avail=3).verdict(4) == VERDICT_NEVER
        assert self._facts().verdict(4) == VERDICT_ALWAYS
        assert (
            self._facts(may_be_undefined=True).verdict(4)
            == VERDICT_SOMETIMES
        )
        assert self._facts(min_avail=3).verdict(4) == VERDICT_SOMETIMES

    def test_must_properties(self):
        assert self._facts(guard_value="false").must_not_taken
        assert self._facts(guard_value="unreachable").must_not_taken
        assert self._facts(guard_value="true").must_taken
        assert not self._facts().must_taken
        assert not self._facts().must_not_taken


class TestReportShape:
    def _program(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 3)
        cmp = f.cmp(Relation.LE, 1, 2, ra=1, imm=0)
        cmp.region = 1
        pad(f)
        region_exit(f, qp=1, target="done")
        f.jmp("done")
        f.label("done")
        f.halt()
        return pb.link()

    def test_summary_counts(self):
        report = analyze_executable(self._program(), name="p")
        summary = report.summary()
        assert summary["functions"] == 1
        assert summary["branches"] == 1          # jmp is not an event
        assert summary["region_branches"] == 1
        assert summary["verdicts"][VERDICT_ALWAYS] == 1
        assert summary["sfp_site_coverage_bound"] == 1.0
        assert summary["distance"] == 4

    def test_to_dict_schema(self):
        report = analyze_executable(self._program(), name="p")
        payload = report.to_dict()
        assert payload["schema"] == ANALYZE_SCHEMA_VERSION
        assert payload["program"] == "p"
        assert payload["distance"] == 4
        assert set(payload["summary"]) == {
            "functions",
            "branches",
            "region_branches",
            "must_not_taken",
            "must_taken",
            "complement_only",
            "define_sites",
            "distance",
            "verdicts",
            "sfp_site_coverage_bound",
        }
        (function,) = payload["functions"]
        assert function["name"] == "main"
        (branch,) = function["branches"]
        assert branch["sfp_verdict"] == VERDICT_ALWAYS
        assert branch["region_based"] is True
        assert branch["guard"] == 1
        assert branch["in_region_defines"] == branch["guard_defines"]

    def test_by_pc_round_trip(self):
        report = analyze_executable(self._program(), name="p")
        for facts in report.branches():
            assert report.by_pc()[facts.pc] is facts


class TestStaticAnalysisErrorRegression:
    """``Program.link(verify=True)`` reports *all* diagnostics."""

    def _failing_builder(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 1, 2, ra=0, imm=0)
        f.emit(Instruction(op=Opcode.HALT, qp=1))   # RPA011 warning
        for name in ("alpha", "beta", "gamma"):
            g = pb.function(name)
            g.movi(1, 1, qp=3)                      # RPA002 error
            g.movi(2, 1, qp=4)                      # RPA002 error
            g.halt()
        return pb

    def test_all_diagnostics_reported_sorted_untruncated(self):
        with pytest.raises(StaticAnalysisError) as excinfo:
            self._failing_builder().link(verify=True)
        error = excinfo.value
        diagnostics = error.report.diagnostics
        assert len(diagnostics) == 7   # 6 errors + 1 warning

        message = str(error)
        lines = message.splitlines()
        # Header plus exactly one line per diagnostic: no truncation.
        assert len(lines) == 1 + len(diagnostics)
        assert lines[0].startswith("static analysis found 6 error(s)")
        assert "1 warning(s)" in lines[0]
        assert "..." not in message

        # Every finding's location appears in the message.
        for diagnostic in diagnostics:
            assert diagnostic.location in message

        # Most severe first, then program:function:index order.
        assert all("error RPA002" in line for line in lines[1:7])
        assert "warning RPA011" in lines[7]
        error_functions = [line.split(":")[1] for line in lines[1:7]]
        assert error_functions == sorted(error_functions)

    def test_report_attached_for_programmatic_use(self):
        with pytest.raises(StaticAnalysisError) as excinfo:
            self._failing_builder().link(verify=True)
        report = excinfo.value.report
        assert report.has_errors
        assert report.counts() == {"error": 6, "warning": 1, "info": 0}
