"""Tests for ``repro.profiler``.

The load-bearing contracts, straight from the acceptance criteria:

* at sampling rate 1 the attribution totals reconcile *exactly* with
  ``SimResult`` / per-class ``ClassStats`` for every bundled workload,
  under both compile configs;
* sampled event streams are deterministic — same seed and rate produce
  identical events, different seeds diverge;
* a 4-worker sweep merges worker aggregators into exactly the report a
  serial sweep produces;
* aggregators survive pickling and ``to_dict``/``from_dict`` round
  trips, so the sweep boundary and the JSON export are lossless;
* the JSONL event stream replays into the same aggregator, and the
  file is complete even when the simulation raises mid-run.
"""

import json
import pickle

import pytest

from repro.compiler import config as config_mod
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.profiler import (
    AggregatingCollector,
    AttributionAggregator,
    EVENT_FIELDS,
    JsonlEventCollector,
    PredictionEvent,
    ProfileSpec,
    RingBufferCollector,
    SiteTable,
    TeeCollector,
    aggregate_event_stream,
    merge_attributions,
    read_event_stream,
)
from repro.sim import SimOptions, simulate, sweep
from repro.trace.container import BranchClass
from repro.workloads import get_workload, workload_names


def _options(sfp=True, pgu=True):
    return SimOptions(
        sfp=SFPConfig() if sfp else None,
        pgu=PGUConfig() if pgu else None,
    )


def _profiled(workload, spec=None, options=None, baseline=False,
              entries=256, sites=None):
    trace = get_workload(workload).trace(
        scale="tiny", hyperblocks=not baseline
    )
    predictor = make_predictor("gshare", entries=entries)
    collector = AggregatingCollector(
        spec or ProfileSpec(), sites=sites, workload=workload
    )
    result = simulate(
        trace, predictor, options or _options(), collector=collector
    )
    return result, collector.aggregator


class TestSpec:
    def test_defaults_and_describe(self):
        spec = ProfileSpec()
        assert spec.rate == 1
        assert spec.seed == 0
        assert spec.wants(0) and spec.wants(1)
        assert "1/1" in spec.describe()

    def test_wants_matches_sampling_rule(self):
        spec = ProfileSpec(rate=4, seed=3)
        sampled = [seq for seq in range(16) if spec.wants(seq)]
        assert sampled == [1, 5, 9, 13]

    def test_validation(self):
        with pytest.raises(ValueError):
            ProfileSpec(rate=0)
        with pytest.raises(ValueError):
            ProfileSpec(interval=0)
        with pytest.raises(ValueError):
            ProfileSpec(seed=-1)


class TestReconciliation:
    """Rate-1 attribution must agree exactly with the simulator."""

    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("baseline", [False, True],
                             ids=["hyperblock", "baseline"])
    def test_totals_match_sim_result(self, workload, baseline):
        result, aggregator = _profiled(workload, baseline=baseline)
        totals = aggregator.totals()
        assert totals["events"] == result.branches
        assert totals["mispredictions"] == result.mispredictions
        assert totals["filtered"] == result.squashed
        site_sum = sum(
            r.mispredictions for r in aggregator.records()
        )
        assert site_sum == result.mispredictions

    @pytest.mark.parametrize("workload", ["crc", "qsort", "lexer"])
    def test_per_class_matches_class_stats(self, workload):
        result, aggregator = _profiled(workload)
        for branch_class in BranchClass:
            stats = result.class_stats(branch_class)
            got = aggregator.classes.get(
                int(branch_class), [0, 0, 0]
            )
            assert got[0] == stats.branches
            assert got[1] == stats.mispredictions
            assert got[2] == stats.squashed

    @pytest.mark.parametrize("workload", ["crc", "lexer", "grep"])
    def test_mechanism_breakdowns_nonempty_on_hyperblocks(self, workload):
        _, aggregator = _profiled(workload)
        sfp = aggregator.sfp_breakdown()
        pgu = aggregator.pgu_breakdown()
        # Hyperblock traces exercise both predicate mechanisms.
        assert sfp["filtered_correct"] + sfp["filtered_wrong"] > 0
        assert pgu["insert"]["events"] + pgu["update"]["events"] > 0

    def test_baseline_has_no_mechanism_events(self):
        _, aggregator = _profiled(
            "crc", options=SimOptions(), baseline=True
        )
        sfp = aggregator.sfp_breakdown()
        assert sfp["filtered_correct"] == sfp["filtered_wrong"] == 0
        assert aggregator.pgu_breakdown()["off"]["events"] > 0


class TestSampledDeterminism:
    def _ring(self, spec):
        trace = get_workload("qsort").trace(scale="tiny")
        predictor = make_predictor("gshare", entries=256)
        collector = RingBufferCollector(spec, capacity=1 << 20)
        simulate(trace, predictor, _options(), collector=collector)
        return collector.events

    def test_same_seed_same_stream(self):
        spec = ProfileSpec(rate=64, seed=7)
        first = self._ring(spec)
        second = self._ring(spec)
        assert len(first) > 0
        assert first == second

    def test_different_seed_diverges(self):
        first = self._ring(ProfileSpec(rate=64, seed=0))
        second = self._ring(ProfileSpec(rate=64, seed=1))
        assert [e.seq for e in first] != [e.seq for e in second]

    def test_rate_partitions_stream(self):
        """Every branch lands in exactly one of the ``rate`` phases."""
        by_seed = [
            self._ring(ProfileSpec(rate=4, seed=seed))
            for seed in range(4)
        ]
        total = sum(len(events) for events in by_seed)
        all_rate1 = self._ring(ProfileSpec())
        assert total == len(all_rate1)
        seqs = sorted(e.seq for events in by_seed for e in events)
        assert seqs == [e.seq for e in all_rate1]

    def test_sampled_counts_match_spec(self):
        spec = ProfileSpec(rate=64, seed=3)
        events = self._ring(spec)
        assert all(spec.wants(e.seq) for e in events)


class TestSweepMerge:
    def _grid(self):
        traces = {
            name: get_workload(name).trace(scale="tiny")
            for name in ("crc", "qsort")
        }
        factories = {
            "gshare256": lambda: make_predictor("gshare", entries=256),
            "bimodal256": lambda: make_predictor("bimodal", entries=256),
        }
        grid = [SimOptions(), _options()]
        return traces, factories, grid

    def _merged(self, workers, profile):
        traces, factories, grid = self._grid()
        results = sweep(traces, factories, grid, workers=workers,
                        profile=profile)
        return merge_attributions(r.attribution for r in results)

    @pytest.mark.parametrize("spec", [ProfileSpec(),
                                      ProfileSpec(rate=16, seed=5)])
    def test_serial_and_parallel_merge_identical(self, spec):
        serial = self._merged(None, spec)
        parallel = self._merged(4, spec)
        assert serial.to_dict() == parallel.to_dict()
        assert serial.totals()["events"] > 0

    def test_no_profile_means_no_attribution(self):
        traces, factories, grid = self._grid()
        results = sweep(traces, factories, grid)
        assert all(r.attribution is None for r in results)

    def test_merged_sites_keyed_by_workload(self):
        merged = self._merged(None, ProfileSpec())
        workloads = {r.workload for r in merged.records()}
        assert workloads == {"crc", "qsort"}

    def test_merge_rejects_spec_mismatch(self):
        a = AttributionAggregator(ProfileSpec(rate=1))
        b = AttributionAggregator(ProfileSpec(rate=2))
        with pytest.raises(ValueError, match="spec"):
            a.merge(b)


class TestRoundTrips:
    def test_pickle_roundtrip(self):
        _, aggregator = _profiled("crc")
        clone = pickle.loads(pickle.dumps(aggregator))
        assert clone.to_dict() == aggregator.to_dict()

    def test_dict_roundtrip(self):
        _, aggregator = _profiled("lexer")
        payload = json.loads(json.dumps(aggregator.to_dict()))
        clone = AttributionAggregator.from_dict(payload)
        assert clone.to_dict() == aggregator.to_dict()

    def test_event_dict_roundtrip(self):
        trace = get_workload("crc").trace(scale="tiny")
        predictor = make_predictor("gshare", entries=256)
        collector = RingBufferCollector(ProfileSpec(rate=32))
        simulate(trace, predictor, _options(), collector=collector)
        for event in collector.events:
            record = event.to_dict()
            assert set(record) == set(EVENT_FIELDS) | {"event"}
            assert PredictionEvent.from_dict(record) == event


class TestJsonlEventStream:
    def _write(self, tmp_path, spec=None, workload="crc"):
        path = tmp_path / "events.jsonl"
        trace = get_workload(workload).trace(scale="tiny")
        predictor = make_predictor("gshare", entries=256)
        aggregating = AggregatingCollector(
            spec or ProfileSpec(), workload=workload
        )
        with TeeCollector([
            aggregating,
            JsonlEventCollector(path, spec or ProfileSpec(),
                                workload=workload),
        ]) as collector:
            simulate(trace, predictor, _options(), collector=collector)
        return path, aggregating.aggregator

    def test_stream_replays_to_same_report(self, tmp_path):
        spec = ProfileSpec(rate=8, seed=1)
        path, live = self._write(tmp_path, spec=spec)
        replayed = aggregate_event_stream(path)
        assert replayed.to_dict() == live.to_dict()

    def test_header_carries_spec(self, tmp_path):
        spec = ProfileSpec(rate=8, seed=1)
        path, _ = self._write(tmp_path, spec=spec)
        read_spec, workload, events = read_event_stream(path)
        assert read_spec == spec
        assert workload == "crc"
        assert all(spec.wants(e.seq) for e in events)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"event": "prediction"}\n')
        with pytest.raises(ValueError, match="profile-header"):
            read_event_stream(path)

    def test_file_complete_when_simulation_raises(self, tmp_path):
        """Satellite regression: mid-run crash leaves a parseable file."""
        path = tmp_path / "crash.jsonl"
        trace = get_workload("crc").trace(scale="tiny")
        predictor = make_predictor("gshare", entries=256)

        class Boom(RuntimeError):
            pass

        class ExplodingCollector(JsonlEventCollector):
            def collect(self, event):
                super().collect(event)
                if event.seq >= 500:
                    raise Boom()

        with pytest.raises(Boom):
            with ExplodingCollector(path, workload="crc") as collector:
                simulate(trace, predictor, _options(),
                         collector=collector)
        # Every buffered record was flushed on the exception exit.
        spec, workload, events = read_event_stream(path)
        assert workload == "crc"
        assert len(events) >= 500
        assert events[-1].seq >= 500


class TestSiteTable:
    def test_from_executable_annotates_events(self):
        workload = get_workload("lexer")
        compiled = workload.compile("tiny", config_mod.HYPERBLOCK)
        sites = SiteTable.from_executable(compiled.executable)
        assert len(sites) > 0
        _, aggregator = _profiled("lexer", sites=sites)
        functions = {r.function for r in aggregator.records()}
        assert functions and functions != {""}
        assert any(
            r.region_id >= 0 for r in aggregator.records()
            if r.region_based
        )

    def test_unknown_pc_defaults(self):
        sites = SiteTable()
        assert sites.function(1234) == ""
        assert sites.region(1234) == -1


class TestRankingAndCoverage:
    def test_ranked_order_and_coverage(self):
        _, aggregator = _profiled("qsort")
        ranked = aggregator.ranked()
        misp = [r.mispredictions for r in ranked]
        assert misp == sorted(misp, reverse=True)
        assert aggregator.coverage(len(ranked)) == pytest.approx(1.0)
        assert 1 <= aggregator.h2p_count(0.9) <= len(ranked)
        assert aggregator.top_branches(3) == ranked[:3]

    def test_timeline_counts_reconcile(self):
        result, aggregator = _profiled("compress")
        points = aggregator.timeline_points()
        assert sum(p["branches"] for p in points) == result.branches
        assert (
            sum(p["mispredictions"] for p in points)
            == result.mispredictions
        )
