"""Tests for the ``repro.telemetry`` subsystem.

The load-bearing contracts: registry merges are deterministic (a
4-worker sweep and a serial sweep produce identical merged counters),
the JSONL sink round-trips events losslessly, spans nest and record
into the current registry, and the disabled switch really turns
recording off.
"""

import pickle

import pytest

from repro import telemetry
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate, sweep
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    read_events,
    span,
    use_registry,
    use_sink,
)
from repro.workloads import get_workload


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(50.0)
        assert registry.counter("c").value == 5
        assert registry.gauge("g").value == 2.5
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(55.5 / 3)

    def test_merge_semantics(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        b.counter("only_b").inc(7)
        a.gauge("g").set(1.0)
        b.gauge("g").set(4.0)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.counter("only_b").value == 7
        assert a.gauge("g").value == 4.0  # max wins
        assert a.histogram("h", buckets=(1.0,)).counts == [1, 1]

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b)

    def test_merge_is_commutative_on_counters(self):
        parts = []
        for i in range(3):
            registry = MetricsRegistry()
            registry.counter("c").inc(i + 1)
            registry.counter(f"p{i}").inc(10)
            parts.append(registry)
        forward = MetricsRegistry()
        for part in parts:
            forward.merge(part)
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge(part)
        assert (
            forward.snapshot()["counters"]
            == backward.snapshot()["counters"]
        )

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.gauge("g").set(0.25)
        registry.histogram("h").observe(0.002)
        restored = MetricsRegistry.from_snapshot(registry.snapshot())
        assert restored.snapshot() == registry.snapshot()

    def test_registry_pickles(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(1.0)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()

    def test_use_registry_restores_previous(self):
        outer = MetricsRegistry()
        inner = MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                telemetry.get_registry().counter("c").inc()
            telemetry.get_registry().counter("c").inc(10)
        assert inner.counter("c").value == 1
        assert outer.counter("c").value == 10


class TestSinks:
    def test_null_sink_discards(self):
        sink = NullSink()
        sink.emit({"event": "span"})  # must not raise

    def test_memory_sink_collects(self):
        sink = MemorySink()
        sink.emit({"event": "span", "name": "x"})
        assert sink.events == [{"event": "span", "name": "x"}]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "out" / "events.jsonl"
        events = [
            {"event": "span", "name": "a", "seconds": 0.25},
            {"event": "metrics", "counters": {"c": 3}},
        ]
        with JsonlSink(path) as sink:
            for event in events:
                sink.emit(event)
        assert read_events(path) == events

    def test_jsonl_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"event": "span", "name": "one"})
        with JsonlSink(path) as sink:
            sink.emit({"event": "span", "name": "two"})
        assert [e["name"] for e in read_events(path)] == ["one", "two"]

    def test_jsonl_flushes_buffered_records_on_exception(self, tmp_path):
        """Regression: a crash inside the ``with`` block must not lose
        block-buffered records — the exception exit closes the handle."""
        path = tmp_path / "crash.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with JsonlSink(path) as sink:
                for i in range(2000):
                    sink.emit({"event": "span", "i": i})
                raise RuntimeError("boom")
        assert sink.closed
        events = read_events(path)
        assert len(events) == 2000
        assert events[-1]["i"] == 1999

    def test_jsonl_flush_and_idempotent_close(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        assert sink.closed  # lazy open: no handle until first emit
        sink.emit({"event": "span", "i": 0})
        sink.flush()
        assert read_events(path) == [{"event": "span", "i": 0}]
        sink.close()
        sink.close()  # second close is a no-op
        assert sink.closed

    def test_read_events_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_events(path)


class TestSpans:
    def test_nested_paths_and_registry_recording(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        with use_registry(registry), use_sink(sink):
            with span("outer"):
                with span("inner", detail=1):
                    pass
        paths = [e["path"] for e in sink.events]
        assert paths == ["outer/inner", "outer"]  # inner closes first
        assert sink.events[0]["depth"] == 1
        assert sink.events[0]["attrs"] == {"detail": 1}
        counters = registry.snapshot()["counters"]
        assert counters["span.outer.calls"] == 1
        assert counters["span.outer/inner.calls"] == 1
        assert registry.histogram("span.outer.seconds").count == 1

    def test_disabled_records_nothing(self):
        registry = MetricsRegistry()
        sink = MemorySink()
        with use_registry(registry), use_sink(sink):
            with telemetry.disabled():
                with span("quiet"):
                    pass
        assert sink.events == []
        assert registry.snapshot()["counters"] == {}


class TestSimulateCounters:
    def test_counters_match_result(self):
        trace = get_workload("crc").trace(scale="tiny")
        registry = MetricsRegistry()
        with use_registry(registry):
            result = simulate(
                trace,
                make_predictor("gshare", entries=256),
                SimOptions(sfp=SFPConfig()),
            )
        counters = registry.snapshot()["counters"]
        assert counters["sim.runs"] == 1
        assert counters["sim.branches"] == result.branches
        assert counters["sim.mispredictions"] == result.mispredictions
        assert counters["sim.squashed"] == result.squashed
        assert counters["sim.instructions"] == result.instructions
        assert (
            counters["sim.predicts"]
            == result.branches - result.squashed
        )
        per_class_branches = sum(
            counters[f"sim.class.{name}.branches"]
            for name in ("normal", "region", "loop")
        )
        assert per_class_branches == result.branches

    def test_disabled_simulate_records_nothing(self):
        trace = get_workload("crc").trace(scale="tiny")
        registry = MetricsRegistry()
        with use_registry(registry), telemetry.disabled():
            simulate(trace, make_predictor("gshare", entries=256))
        assert registry.snapshot()["counters"] == {}


class TestSweepMergeDeterminism:
    def _grid(self):
        traces = {
            name: get_workload(name).trace(scale="tiny")
            for name in ("crc", "qsort")
        }
        factories = {
            "gshare256": lambda: make_predictor("gshare", entries=256),
            "bimodal256": lambda: make_predictor("bimodal", entries=256),
        }
        grid = [
            SimOptions(),
            SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
        ]
        return traces, factories, grid

    def test_serial_and_parallel_counters_identical(self):
        traces, factories, grid = self._grid()
        serial_registry = MetricsRegistry()
        with use_registry(serial_registry):
            sweep(traces, factories, grid)
        parallel_registry = MetricsRegistry()
        with use_registry(parallel_registry):
            sweep(traces, factories, grid, workers=4)
        assert (
            serial_registry.snapshot()["counters"]
            == parallel_registry.snapshot()["counters"]
        )

    def test_sweep_counters_and_gauges(self):
        traces, factories, grid = self._grid()
        registry = MetricsRegistry()
        with use_registry(registry):
            results = sweep(traces, factories, grid, workers=2)
        counters = registry.snapshot()["counters"]
        assert counters["sweep.runs"] == 1
        assert counters["sweep.points_total"] == len(results) == 8
        assert counters["sweep.points_completed"] == 8
        assert counters["sim.runs"] == 8
        gauges = registry.snapshot()["gauges"]
        assert gauges["sweep.workers"] == 2
        assert 0.0 < gauges["sweep.worker_utilisation"] <= 1.0
        histograms = registry.snapshot()["histograms"]
        assert histograms["sweep.point_seconds"]["count"] == 8
        assert histograms["sweep.queue_wait_seconds"]["count"] == 8
