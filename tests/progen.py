"""Random ``minic`` program generator for differential testing.

Generates syntactically and semantically valid programs that terminate:
loops are counter-bounded with the increment *first* (so ``continue``
cannot skip it), array stores are range-reduced, conditions are
call-free, and recursion is avoided.  Every generated program is run
through the reference interpreter, the baseline compiler and the
hyperblock compiler; all three must agree.
"""

import random

NAMES = ["a", "b", "c", "d", "e", "x", "y", "z", "w", "v"]
ARRAYS = [("arr0", 16), ("arr1", 32)]


class ProgramGenerator:
    """Seeded generator; same seed -> same program."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.counter = 0
        self.funcs = []  # (name, arity) defined so far, callable later
        #: loop counters: readable but never assignment targets, so every
        #: generated loop provably terminates
        self.readonly = set()

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- expressions -----------------------------------------------------------

    def expr(self, variables, depth: int, allow_calls: bool = True) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            return self.leaf(variables)
        kind = rng.random()
        if kind < 0.45:
            op = rng.choice(
                ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"]
            )
            left = self.expr(variables, depth - 1, allow_calls)
            right = self.expr(variables, depth - 1, allow_calls)
            if op in ("<<", ">>"):
                right = f"({right} % 8 + 8) % 8"
            return f"({left} {op} {right})"
        if kind < 0.65:
            op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            left = self.expr(variables, depth - 1, allow_calls)
            right = self.expr(variables, depth - 1, allow_calls)
            return f"({left} {op} {right})"
        if kind < 0.78:
            op = rng.choice(["&&", "||"])
            left = self.expr(variables, depth - 1, False)
            right = self.expr(variables, depth - 1, False)
            return f"({left} {op} {right})"
        if kind < 0.86:
            op = rng.choice(["-", "!", "~"])
            operand = self.expr(variables, depth - 1, allow_calls)
            if op == "-":
                return f"(0 - {operand})"
            return f"({op}{operand})"
        if kind < 0.94:
            name, size = rng.choice(ARRAYS)
            index = self.expr(variables, depth - 1, False)
            return f"{name}[{index}]"  # loads may go out of range (-> 0)
        if allow_calls and self.funcs:
            name, arity = rng.choice(self.funcs)
            args = ", ".join(
                self.expr(variables, depth - 1, False) for _ in range(arity)
            )
            return f"{name}({args})"
        return self.leaf(variables)

    def leaf(self, variables) -> str:
        rng = self.rng
        if variables and rng.random() < 0.6:
            return rng.choice(variables)
        return str(rng.randint(-50, 100))

    def condition(self, variables, depth: int = 2) -> str:
        return self.expr(variables, depth, allow_calls=False)

    # -- statements -------------------------------------------------------------

    def block(self, variables, depth: int, in_loop: bool) -> list:
        lines = []
        for _ in range(self.rng.randint(1, 4)):
            lines.extend(self.stmt(variables, depth, in_loop))
        return lines

    def stmt(self, variables, depth: int, in_loop: bool) -> list:
        rng = self.rng
        roll = rng.random()
        writable = [v for v in variables if v not in self.readonly]
        if roll < 0.40 and writable:
            target = rng.choice(writable)
            return [f"{target} = {self.expr(variables, 2)};"]
        if roll < 0.52:
            name, size = rng.choice(ARRAYS)
            index = self.expr(variables, 1, False)
            value = self.expr(variables, 2)
            return [
                f"{name}[(({index}) % {size} + {size}) % {size}] = {value};"
            ]
        if roll < 0.75 and depth > 0:
            cond = self.condition(variables)
            then_body = self.block(variables, depth - 1, in_loop)
            lines = [f"if ({cond}) {{"] + _indent(then_body)
            if rng.random() < 0.5:
                else_body = self.block(variables, depth - 1, in_loop)
                lines += ["} else {"] + _indent(else_body)
            lines.append("}")
            return lines
        if roll < 0.85 and depth > 0:
            counter = self.fresh("i")
            self.readonly.add(counter)
            bound = rng.randint(2, 8)
            variables_inner = variables + [counter]
            body = self.block(variables_inner, depth - 1, True)
            return (
                [f"var {counter} = 0;", f"while ({counter} < {bound}) {{",
                 f"    {counter} = {counter} + 1;"]
                + _indent(body)
                + ["}"]
            )
        if roll < 0.90 and in_loop:
            return [rng.choice(["break;", "continue;"])]
        if roll < 0.95 and variables:
            name = self.fresh("t")
            variables.append(name)
            return [f"var {name} = {self.expr(variables[:-1], 2)};"]
        return [f"{self.expr(variables, 1)};"]

    def helper(self) -> str:
        arity = self.rng.randint(1, 3)
        params = [f"p{k}" for k in range(arity)]
        name = self.fresh("fn")
        variables = list(params)
        body = self.block(variables, 2, False)
        body.append(f"return {self.expr(variables, 2, False)};")
        self.funcs.append((name, arity))
        lines = [f"func {name}({', '.join(params)}) {{"]
        lines += _indent(body)
        lines.append("}")
        return "\n".join(lines)

    def program(self) -> str:
        parts = [f"global {name}[{size}];" for name, size in ARRAYS]
        for _ in range(self.rng.randint(0, 2)):
            parts.append(self.helper())
        variables = []
        main = ["func main() {"]
        decls = []
        for name in NAMES[: self.rng.randint(2, 5)]:
            decls.append(f"    var {name} = {self.rng.randint(-20, 50)};")
            variables.append(name)
        main += decls
        main += _indent(self.block(variables, 3, False))
        main.append(f"    return {self.expr(variables, 2)};")
        main.append("}")
        parts.append("\n".join(main))
        return "\n\n".join(parts)


def _indent(lines):
    return [f"    {line}" for line in lines]


def generate_program(seed: int) -> str:
    """A deterministic random program for ``seed``."""
    return ProgramGenerator(seed).program()
