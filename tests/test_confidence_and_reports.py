"""Tests for the confidence estimator, confidence simulation, report
exporters and hotspot analysis."""

import json

import pytest

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.experiments.report import render, to_csv, to_json, write_result
from repro.isa.opcodes import BranchKind
from repro.predictors import SFPConfig, make_predictor
from repro.predictors.confidence import ConfidenceEstimator
from repro.sim import SimOptions
from repro.sim.confidence import simulate_with_confidence
from repro.sim.hotspots import per_site_stats, top_hotspots
from repro.trace.container import Trace, TraceMeta


def make_trace(branches, instructions=1000):
    return Trace.from_lists(
        b_pc=[b[0] for b in branches],
        b_idx=[b[1] for b in branches],
        b_taken=[b[2] for b in branches],
        b_guard=[b[3] if len(b) > 3 else 0 for b in branches],
        b_guard_def=[b[4] if len(b) > 4 else -1 for b in branches],
        b_kind=[int(BranchKind.COND)] * len(branches),
        b_region=[len(b) > 3 and b[3] != 0 for b in branches],
        b_target=[0] * len(branches),
        d_pc=[], d_idx=[], d_value=[], d_pred=[],
        meta=TraceMeta(instructions=instructions),
    )


class TestConfidenceEstimator:
    def test_counter_builds_and_resets(self):
        estimator = ConfidenceEstimator(entries=16, threshold=3,
                                        ceiling=7)
        assert not estimator.is_confident(5, 0)
        for _ in range(3):
            estimator.update(5, 0, correct=True)
        assert estimator.is_confident(5, 0)
        estimator.update(5, 0, correct=False)
        assert not estimator.is_confident(5, 0)

    def test_ceiling_saturation(self):
        estimator = ConfidenceEstimator(entries=16, threshold=2,
                                        ceiling=3)
        for _ in range(10):
            estimator.update(1, 0, correct=True)
        assert estimator.table[estimator._index(1, 0)] == 3

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ConfidenceEstimator(entries=10)
        with pytest.raises(ValueError):
            ConfidenceEstimator(threshold=0)
        with pytest.raises(ValueError):
            ConfidenceEstimator(threshold=20, ceiling=15)


class TestConfidenceSimulation:
    def test_squashed_branches_are_perfect(self):
        # One squashable branch (old false guard), one ordinary.
        trace = make_trace(
            [(1, 100, False, 3, 10), (2, 200, True, 0, -1)]
        )
        result = simulate_with_confidence(
            trace,
            make_predictor("gshare", entries=64),
            ConfidenceEstimator(entries=64),
            SimOptions(distance=4, sfp=SFPConfig()),
        )
        assert result.perfect == 1
        assert result.high + result.low == 1
        assert result.perfect_coverage == pytest.approx(0.5)
        assert 0.0 <= result.trusted_accuracy <= 1.0

    def test_repeated_correct_predictions_become_confident(self):
        branches = [(7, 10 * (k + 1), True) for k in range(40)]
        trace = make_trace(branches)
        result = simulate_with_confidence(
            trace,
            make_predictor("bimodal", entries=64),
            ConfidenceEstimator(entries=64, threshold=4),
            SimOptions(),
        )
        assert result.high > 0
        assert result.high_accuracy > result.low_accuracy - 1e-9


class TestReports:
    def sample(self):
        return ExperimentResult(
            spec=ExperimentSpec(id="EX", title="t", paper_artifact="p",
                                description="d"),
            columns=["a", "b"],
            rows=[{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}],
            notes="n",
        )

    def test_csv(self):
        text = to_csv(self.sample())
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,0.5"

    def test_json_roundtrip(self):
        payload = json.loads(to_json(self.sample()))
        assert payload["id"] == "EX"
        assert payload["rows"][1]["a"] == 2

    def test_render_dispatch(self):
        result = self.sample()
        assert "EX" in render(result, "table")
        assert render(result, "csv").startswith("a,b")
        with pytest.raises(ValueError):
            render(result, "xml")

    def test_write_result(self, tmp_path):
        path = write_result(self.sample(), tmp_path, "json")
        assert path.name == "ex.json"
        assert json.loads(path.read_text())["title"] == "t"


class TestHotspots:
    def test_sites_aggregate_and_sort(self):
        branches = (
            [(5, 10 * k + 10, k % 2 == 0) for k in range(20)]  # flaky
            + [(9, 1000 + 10 * k, True) for k in range(20)]  # easy
        )
        trace = make_trace(branches, instructions=2000)
        sites = per_site_stats(
            trace, make_predictor("bimodal", entries=64), SimOptions()
        )
        assert sites[0].pc == 5  # the alternating branch mispredicts most
        by_pc = {s.pc: s for s in sites}
        assert by_pc[5].executions == 20
        assert by_pc[9].taken_rate == 1.0
        assert by_pc[9].mispredictions < by_pc[5].mispredictions

    def test_top_limit(self):
        branches = [(pc, 10 * pc, True) for pc in range(1, 30)]
        trace = make_trace(branches, instructions=500)
        top = top_hotspots(
            trace, make_predictor("bimodal", entries=64), SimOptions(),
            limit=5,
        )
        assert len(top) == 5

    def test_squash_counted_per_site(self):
        trace = make_trace([(3, 100, False, 2, 10)])
        sites = per_site_stats(
            trace,
            make_predictor("gshare", entries=64),
            SimOptions(distance=4, sfp=SFPConfig()),
        )
        assert sites[0].squashed == 1
        assert sites[0].mispredictions == 0
