"""Determinism and failure-mode tests for the parallel sweep engine.

The contract under test: ``sweep(..., workers=K)`` for any K returns
results bit-identical to — and ordered identically with — the serial
path, and a dead or raising worker surfaces as a clear
:class:`~repro.sim.sweep.SweepError` instead of a hang or a silent hole
in the results.
"""

import os
import random

import numpy as np
import pytest

from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.predictors.base import BranchPredictor
from repro.sim import (
    ParallelSweepRunner,
    SimOptions,
    SweepError,
    resolve_workers,
    sweep,
)
from repro.sim.sweep import WORKERS_ENV
from repro.workloads import get_workload


def _traces(names=("crc", "qsort")):
    return {name: get_workload(name).trace(scale="tiny") for name in names}


def _signature(result):
    """Every externally observable stat of one SimResult."""
    flags = None
    if result.flags is not None:
        flags = (
            result.flags.correct.tobytes(),
            result.flags.squashed.tobytes(),
            result.flags.misfetch.tobytes(),
        )
    return (
        result.workload,
        result.predictor,
        result.options,
        result.instructions,
        result.branches,
        result.mispredictions,
        result.squashed,
        result.misfetches,
        tuple(
            (int(cls), s.branches, s.mispredictions, s.squashed)
            for cls, s in sorted(result.per_class.items())
        ),
        flags,
    )


#: Pool of cheap predictor factories the randomized grid draws from.
FACTORY_POOL = {
    "gshare256": lambda: make_predictor("gshare", entries=256),
    "bimodal256": lambda: make_predictor("bimodal", entries=256),
    "local256": lambda: make_predictor("local", entries=256,
                                       local_entries=64),
    "tournament": lambda: make_predictor("tournament", entries=256),
    "perceptron": lambda: make_predictor("perceptron", entries=64),
}

#: Pool of option points the randomized grid draws from.
OPTIONS_POOL = [
    SimOptions(),
    SimOptions(distance=8),
    SimOptions(sfp=SFPConfig()),
    SimOptions(pgu=PGUConfig()),
    SimOptions(sfp=SFPConfig(), pgu=PGUConfig(), delayed_update=True),
    SimOptions(record_flags=True),
]


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_parallel_bit_identical_to_serial(self, seed):
        rng = random.Random(seed)
        traces = _traces()
        labels = rng.sample(sorted(FACTORY_POOL),
                            k=rng.randint(1, len(FACTORY_POOL)))
        factories = {label: FACTORY_POOL[label] for label in labels}
        grid = rng.sample(OPTIONS_POOL, k=rng.randint(1, 3))
        workers = rng.choice([2, 3, 4])

        serial = sweep(traces, factories, grid)
        parallel = sweep(traces, factories, grid, workers=workers)

        assert len(serial) == len(traces) * len(factories) * len(grid)
        assert [_signature(r) for r in serial] == [
            _signature(r) for r in parallel
        ]

    def test_ordering_is_trace_predictor_options_nested(self):
        traces = _traces()
        factories = {
            "gshare256": FACTORY_POOL["gshare256"],
            "bimodal256": FACTORY_POOL["bimodal256"],
        }
        grid = [SimOptions(), SimOptions(distance=8)]
        results = sweep(traces, factories, grid, workers=2)
        expected = [
            (trace_name, label, options)
            for trace_name in traces
            for label in factories
            for options in grid
        ]
        assert [
            (r.workload, r.predictor, r.options) for r in results
        ] == expected

    def test_record_flags_survive_transport(self):
        traces = _traces(("crc",))
        factories = {"gshare256": FACTORY_POOL["gshare256"]}
        grid = [SimOptions(record_flags=True)]
        (serial,) = sweep(traces, factories, grid)
        (parallel,) = sweep(traces, factories, grid + [], workers=2)
        # workers=2 with one point falls back to serial; force the pool
        # with two points instead.
        two = sweep(traces, factories,
                    [SimOptions(record_flags=True), SimOptions()],
                    workers=2)
        assert parallel.flags is not None
        assert np.array_equal(serial.flags.correct, two[0].flags.correct)
        assert np.array_equal(serial.flags.squashed, two[0].flags.squashed)


class _RaisingPredictor(BranchPredictor):
    """Raises on the first prediction — exercises the error path."""

    name = "raising"

    def predict(self, pc, history):
        raise ValueError("deliberate test failure")

    def update(self, pc, history, taken):
        pass


class _CrashingPredictor(BranchPredictor):
    """Kills the worker process outright — exercises pool breakage."""

    name = "crashing"

    def predict(self, pc, history):
        os._exit(13)

    def update(self, pc, history, taken):
        pass


class TestFailureModes:
    def test_worker_exception_is_a_clear_error(self):
        traces = _traces(("crc",))
        factories = {
            "ok": FACTORY_POOL["gshare256"],
            "boom": _RaisingPredictor,
        }
        with pytest.raises(SweepError, match="boom"):
            sweep(traces, factories, [SimOptions()], workers=2)
        # The serial path reports the same class of error.
        with pytest.raises(SweepError, match="deliberate test failure"):
            sweep(traces, factories, [SimOptions()])

    def test_worker_crash_raises_instead_of_hanging(self):
        traces = _traces(("crc",))
        factories = {
            "ok": FACTORY_POOL["gshare256"],
            "crash": _CrashingPredictor,
        }
        with pytest.raises(SweepError):
            sweep(traces, factories, [SimOptions()], workers=2)


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_invalid_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(-2)
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestProgress:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_event_per_point(self, workers):
        traces = _traces(("crc",))
        factories = {
            "gshare256": FACTORY_POOL["gshare256"],
            "bimodal256": FACTORY_POOL["bimodal256"],
        }
        grid = [SimOptions(), SimOptions(distance=8)]
        events = []
        runner = ParallelSweepRunner(
            workers=workers, progress=events.append
        )
        results = runner.run(traces, factories, grid)
        assert len(events) == len(results) == 4
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert {e.point.index for e in events} == {0, 1, 2, 3}
        assert all(e.point.total == 4 for e in events)
        assert all(e.seconds >= 0.0 for e in events)
