"""Hypothesis-driven fuzzing: fresh random program seeds every run
(unlike the fixed seed range in test_differential), plus monotonicity
properties of the trace masks on synthetic traces."""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    RULES,
    StaticContract,
    analyze_executable,
    check_trace,
    lint_executable,
)
from repro.compiler import compile_source, compile_with_profile
from repro.compiler import config as config_mod
from repro.engine import run
from repro.lang.reference import evaluate
from repro.trace.container import Trace, TraceMeta
from repro.trace.recorder import TraceRecorder
from tests.progen import generate_program


@given(st.integers(min_value=10_000, max_value=10_000_000))
@settings(max_examples=6, deadline=None)
def test_fresh_random_programs_agree(seed):
    source = generate_program(seed)
    expected = evaluate(source, max_steps=20_000_000)
    baseline = run(
        compile_source(source, config_mod.BASELINE).executable,
        max_instructions=20_000_000,
    ).return_value
    hyper = run(
        compile_with_profile(
            source, config_mod.HYPERBLOCK, max_instructions=20_000_000
        ).executable,
        max_instructions=20_000_000,
    ).return_value
    assert baseline == expected, f"baseline diverged for seed {seed}"
    assert hyper == expected, f"hyperblock diverged for seed {seed}"


@given(st.integers(min_value=10_000, max_value=10_000_000))
@settings(max_examples=6, deadline=None)
def test_fresh_random_programs_satisfy_static_contract(seed):
    """Fuzzed programs flow through lint, predflow and the contract
    checker without crashes — and their dynamic traces obey every
    statically proven fact."""
    source = generate_program(seed)
    executable = compile_source(source, config_mod.HYPERBLOCK).executable
    name = f"fuzz-{seed}"

    report = lint_executable(executable, name=name)
    assert not report.has_errors, report.render()
    assert set(report.rule_ids()) <= set(RULES)

    predflow = analyze_executable(executable, name=name)
    summary = predflow.summary()
    assert sum(summary["verdicts"].values()) == summary["branches"]
    assert summary["must_not_taken"] + summary["must_taken"] <= (
        summary["branches"]
    )

    recorder = TraceRecorder()
    result = run(
        executable, recorder=recorder, max_instructions=20_000_000
    )
    trace = recorder.finish(
        TraceMeta(instructions=result.instructions)
    )
    contract = StaticContract(predflow)
    violations = check_trace(trace, contract)
    assert violations == [], "\n".join(
        str(v) for v in violations[:10]
    ) + f" (seed {seed})"


branch_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # pc
        st.booleans(),  # taken
        st.integers(min_value=0, max_value=8),  # guard
        st.integers(min_value=-1, max_value=40),  # def offset back
    ),
    min_size=1,
    max_size=60,
)


def _synthetic_trace(records):
    b_idx = []
    b_guard_def = []
    time = 10
    for _, __, ___, back in records:
        time += 5
        b_idx.append(time)
        b_guard_def.append(-1 if back < 0 else max(0, time - back))
    return Trace.from_lists(
        b_pc=[r[0] for r in records],
        b_idx=b_idx,
        b_taken=[r[1] for r in records],
        b_guard=[r[2] for r in records],
        b_guard_def=b_guard_def,
        b_kind=[1] * len(records),
        b_region=[r[2] != 0 for r in records],
        b_target=[0] * len(records),
        d_pc=[], d_idx=[], d_value=[], d_pred=[],
        meta=TraceMeta(instructions=time + 10),
    )


class TestMaskProperties:
    @given(branch_records, st.integers(min_value=0, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_squashable_shrinks_with_distance(self, records, distance):
        trace = _synthetic_trace(records)
        nearer = trace.guard_known_false(distance)
        farther = trace.guard_known_false(distance + 4)
        # Everything squashable at the larger distance is squashable at
        # the smaller one.
        assert bool(((~nearer) & farther).sum()) is False

    @given(branch_records, st.integers(min_value=0, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_squashable_implies_known_and_not_taken(self, records,
                                                    distance):
        trace = _synthetic_trace(records)
        squashable = trace.guard_known_false(distance)
        known = trace.guard_known(distance)
        assert not (squashable & ~known).any()
        assert not (squashable & trace.b_taken).any()
        assert not (squashable & (trace.b_guard == 0)).any()
