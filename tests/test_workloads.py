"""Workload suite tests: registry, scales, determinism, tracing."""

import pytest

from repro.compiler.config import BASELINE, HYPERBLOCK
from repro.trace import TraceCache
from repro.workloads import (
    all_workloads,
    get_workload,
    workload_names,
)
from repro.workloads.expected import EXPECTED


class TestRegistry:
    def test_suite_size(self):
        assert len(workload_names()) >= 10

    def test_lookup(self):
        workload = get_workload("qsort")
        assert workload.name == "qsort"
        with pytest.raises(KeyError):
            get_workload("spec2000")

    def test_all_have_three_scales(self):
        for workload in all_workloads():
            assert set(workload.scales) == {"tiny", "small", "ref"}

    def test_all_have_expected_values(self):
        for workload in all_workloads():
            assert workload.name in EXPECTED
            assert "tiny" in workload.expected

    def test_source_substitution(self):
        source = get_workload("qsort").source("tiny")
        assert "$" not in source  # all parameters substituted
        assert "func main()" in source

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_workload("qsort").source("huge")


class TestExecution:
    @pytest.mark.parametrize("name", workload_names())
    def test_baseline_matches_golden(self, name):
        workload = get_workload(name)
        result = workload.run("tiny", BASELINE)
        assert result.return_value == EXPECTED[name]["tiny"]
        assert result.instructions > 1000

    @pytest.mark.parametrize("name", workload_names())
    def test_hyperblock_matches_golden(self, name):
        workload = get_workload(name)
        result = workload.run("tiny", HYPERBLOCK)
        assert result.return_value == EXPECTED[name]["tiny"]

    def test_golden_mismatch_raises(self):
        workload = get_workload("crc")
        original = workload.expected["tiny"]
        workload.expected["tiny"] = original + 1
        try:
            with pytest.raises(AssertionError):
                workload.run("tiny", BASELINE)
        finally:
            workload.expected["tiny"] = original


class TestTracing:
    def test_trace_has_branch_population(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = get_workload("grep").trace(
            scale="tiny", hyperblocks=True, cache=cache
        )
        assert trace.num_branches > 100
        assert trace.num_pdefs > 100
        assert trace.b_region.any(), "expected region-based branches"
        assert trace.meta.workload == "grep"
        assert trace.meta.instructions > 0

    def test_trace_caching_roundtrip(self, tmp_path):
        cache = TraceCache(tmp_path)
        workload = get_workload("crc")
        first = workload.trace(scale="tiny", cache=cache)
        second = workload.trace(scale="tiny", cache=cache)
        assert first.num_branches == second.num_branches
        assert (first.b_taken == second.b_taken).all()

    def test_baseline_and_hyper_traces_differ(self, tmp_path):
        cache = TraceCache(tmp_path)
        workload = get_workload("crc")
        base = workload.trace(scale="tiny", hyperblocks=False, cache=cache)
        hyper = workload.trace(scale="tiny", hyperblocks=True, cache=cache)
        assert base.num_branches > hyper.num_branches
        assert not base.b_region.any()
        assert base.meta.return_value == hyper.meta.return_value

    def test_traces_are_deterministic(self, tmp_path):
        workload = get_workload("expr")
        a = workload.trace(scale="tiny", use_cache=False)
        b = workload.trace(scale="tiny", use_cache=False)
        assert (a.b_pc == b.b_pc).all()
        assert (a.b_taken == b.b_taken).all()
        assert (a.d_idx == b.d_idx).all()


class TestSyntheticGenerator:
    def test_knob_validation(self):
        from repro.workloads.synthetic import make_synthetic

        with pytest.raises(ValueError):
            make_synthetic(bias=101)
        with pytest.raises(ValueError):
            make_synthetic(noise=51)
        with pytest.raises(ValueError):
            make_synthetic(spacing=10)

    def test_equivalence_across_compiles(self):
        from repro.compiler.config import BASELINE, HYPERBLOCK
        from repro.workloads.synthetic import make_synthetic

        workload = make_synthetic(bias=30, noise=10, spacing=5)
        base = workload.run("tiny", BASELINE)
        hyper = workload.run("tiny", HYPERBLOCK)
        assert base.return_value == hyper.return_value

    def test_spacing_controls_guard_distance(self):
        from repro.workloads.synthetic import make_synthetic

        near = make_synthetic(spacing=0).trace("tiny", use_cache=False)
        far = make_synthetic(spacing=9).trace("tiny", use_cache=False)
        import numpy as np

        def median_region_distance(trace):
            mask = trace.b_region & (trace.b_guard_def >= 0)
            return np.median(
                (trace.b_idx - trace.b_guard_def)[mask]
            )

        assert median_region_distance(far) > median_region_distance(near)

    def test_noise_controls_correlation(self):
        from repro.predictors import PGUConfig, make_predictor
        from repro.sim import SimOptions, simulate
        from repro.workloads.synthetic import make_synthetic

        def pgu_benefit(noise):
            trace = make_synthetic(noise=noise).trace(
                "tiny", use_cache=False
            )
            base = simulate(
                trace, make_predictor("gshare", entries=1024), SimOptions()
            )
            pgu = simulate(
                trace,
                make_predictor("gshare", entries=1024),
                SimOptions(pgu=PGUConfig()),
            )
            return base.misprediction_rate - pgu.misprediction_rate

        assert pgu_benefit(0) > pgu_benefit(50) + 0.02
