"""CLI smoke tests (everything runs at tiny scale)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCLI:
    def test_version(self, capsys):
        # argparse's version action prints and exits 0.
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.strip() != "repro"

    def test_version_matches_package(self, capsys):
        from repro import repro_version

        with pytest.raises(SystemExit):
            main(["--version"])
        assert capsys.readouterr().out.strip() == \
            f"repro {repro_version()}"

    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "qsort" in out
        assert "gshare" in out
        assert "E6" in out

    def test_simulate(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "crc", "--scale", "tiny",
            "--predictor", "gshare", "--entries", "256",
            "--sfp", "--pgu",
        )
        assert code == 0
        assert "mispredicts" in out
        assert "squashed" in out

    def test_simulate_baseline(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "crc", "--scale", "tiny", "--baseline"
        )
        assert code == 0

    def test_run_experiment(self, capsys):
        code, out = run_cli(
            capsys, "run-experiment", "E3", "--scale", "tiny",
            "--workloads", "crc,grep",
        )
        assert code == 0
        assert "[E3]" in out

    def test_characterise(self, capsys):
        code, out = run_cli(
            capsys, "characterise", "grep", "--scale", "tiny"
        )
        assert code == 0
        assert "region_fraction" in out

    def test_disasm(self, capsys):
        code, out = run_cli(
            capsys, "disasm", "crc", "--function", "main",
            "--scale", "tiny",
        )
        assert code == 0
        assert "cmp" in out

    def test_disasm_unknown_function(self, capsys):
        code = main(["disasm", "crc", "--function", "ghost"])
        assert code == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestAnalyzeCommand:
    def test_analyze(self, capsys):
        code, out = run_cli(capsys, "analyze", "grep", "--regions")
        assert code == 0
        assert "regions" in out
        assert "mean_guard_distance" in out

    def test_analyze_baseline(self, capsys):
        code, out = run_cli(capsys, "analyze", "crc", "--baseline")
        assert code == 0
        assert "regions                0" in out

    def test_analyze_predflow_summary(self, capsys):
        code, out = run_cli(capsys, "analyze", "crc")
        assert code == 0
        assert "predflow @ distance 4" in out
        assert "sfp_coverage_bound" in out

    def test_analyze_branches_table(self, capsys):
        code, out = run_cli(capsys, "analyze", "crc", "--branches")
        assert code == 0
        assert "verdict" in out
        assert "always" in out or "never" in out

    def test_analyze_json(self, capsys):
        import json

        code, out = run_cli(
            capsys, "analyze", "crc", "--json", "--distance", "6"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == 1
        assert payload["workload"] == "crc"
        assert payload["distance"] == 6
        assert payload["compile_config"] == "hyperblock"
        assert "summary" in payload and "regions" in payload
        branches = payload["functions"][0]["branches"]
        assert all("sfp_verdict" in b for b in branches)

    def test_analyze_h2p_join(self, capsys):
        import json

        code, out = run_cli(
            capsys, "analyze", "crc", "--h2p", "--top", "3", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert len(payload["h2p"]) <= 3
        row = payload["h2p"][0]
        assert row["mispredictions"] >= 0
        assert row["static"] is None or "sfp_verdict" in row["static"]


class TestLintCommand:
    def test_lint_text(self, capsys):
        code, out = run_cli(capsys, "lint", "crc", "--scale", "tiny")
        assert code == 0
        assert "crc:" in out
        assert "0 error(s)" in out

    def test_lint_json(self, capsys):
        import json

        code, out = run_cli(capsys, "lint", "crc", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["totals"]["error"] == 0
        names = [entry["program"] for entry in payload["programs"]]
        assert names == ["crc"]

    def test_lint_min_severity_filters_text(self, capsys):
        code, out = run_cli(
            capsys, "lint", "crc", "--min-severity", "error"
        )
        assert code == 0
        assert "RPA005" not in out

    def test_lint_baseline(self, capsys):
        code, out = run_cli(capsys, "lint", "crc", "--baseline")
        assert code == 0

    def test_lint_unknown_workload(self, capsys):
        code = main(["lint", "bogus"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown workload" in err

    def test_lint_metrics_jsonl(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "lint.jsonl"
        code, _ = run_cli(
            capsys, "lint", "crc", "--metrics", str(metrics)
        )
        assert code == 0
        events = [
            json.loads(line)
            for line in metrics.read_text().splitlines()
            if line
        ]
        spans = [e for e in events if e.get("event") == "span"]
        assert any(e["name"] == "lint" for e in spans)
        assert any(e["name"] == "lint-run" for e in spans)
        snapshots = [e for e in events if e.get("event") == "metrics"]
        counters = snapshots[-1]["counters"]
        assert counters["analysis.programs"] == 1
        assert counters["analysis.functions"] >= 1
        assert counters["analysis.instructions"] > 10


class TestHotspotsAndExport:
    def test_hotspots(self, capsys):
        code, out = run_cli(
            capsys, "hotspots", "crc", "--scale", "tiny", "--limit", "3"
        )
        assert code == 0
        assert "misp" in out

    def test_csv_format(self, capsys):
        code, out = run_cli(
            capsys, "run-experiment", "E3", "--scale", "tiny",
            "--workloads", "crc", "--format", "csv",
        )
        assert code == 0
        assert out.splitlines()[0].startswith("distance,")

    def test_output_dir(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "run-experiment", "E3", "--scale", "tiny",
            "--workloads", "crc", "--format", "json",
            "--output", str(tmp_path),
        )
        assert code == 0
        assert (tmp_path / "e3.json").exists()


class TestProfileCommand:
    def test_profile_table(self, capsys):
        code, out = run_cli(
            capsys, "profile", "crc", "--scale", "tiny",
            "--entries", "256", "--sfp", "--pgu", "--top", "3",
        )
        assert code == 0
        assert "mispredicting branches" in out
        assert "H2P" in out
        assert "sfp" in out
        assert "pgu" in out

    def test_profile_json_reconciles(self, capsys):
        import json

        code, out = run_cli(
            capsys, "profile", "crc", "--scale", "tiny",
            "--entries", "256", "--sfp", "--pgu", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        simulated = payload["simulated"]
        totals = payload["attribution"]["totals"]
        assert totals["events"] == simulated["branches"]
        assert totals["mispredictions"] == simulated["mispredictions"]
        assert totals["filtered"] == simulated["squashed"]
        assert payload["attribution"]["sites"]

    def test_profile_markdown(self, capsys):
        code, out = run_cli(
            capsys, "profile", "qsort", "--scale", "tiny",
            "--entries", "256", "--markdown",
        )
        assert code == 0
        assert out.startswith("# qsort (tiny)")
        assert "## Top" in out

    def test_profile_baseline(self, capsys):
        code, out = run_cli(
            capsys, "profile", "crc", "--scale", "tiny",
            "--baseline", "--entries", "256",
        )
        assert code == 0
        assert "baseline" in out

    def test_profile_events_roundtrip(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        code, out = run_cli(
            capsys, "profile", "crc", "--scale", "tiny",
            "--entries", "256", "--sfp", "--pgu",
            "--rate", "8", "--seed", "2", "--events", str(events),
            "--markdown",
        )
        assert code == 0
        code, report = run_cli(
            capsys, "telemetry-report", str(events), "--profile"
        )
        assert code == 0
        # The replayed report carries the same numbers as the live one
        # (headings differ: the live render knows the predictor).
        assert out.split("\n", 2)[2] == report.split("\n", 2)[2]

    def test_telemetry_report_profile_rejects_metrics_file(
            self, capsys, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"event": "metrics"}\n')
        code = main(["telemetry-report", str(path), "--profile"])
        err = capsys.readouterr().err
        assert code == 1
        assert "profile-header" in err


def _load_schema_tool():
    import importlib.util
    from pathlib import Path

    path = (
        Path(__file__).resolve().parent.parent
        / "tools"
        / "check_lint_schema.py"
    )
    spec = importlib.util.spec_from_file_location(
        "check_lint_schema", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLintSchemaTool:
    def test_accepts_real_artifacts(self, capsys, tmp_path):
        tool = _load_schema_tool()
        _, lint_out = run_cli(capsys, "lint", "crc", "--json")
        _, analyze_out = run_cli(capsys, "analyze", "crc", "--json")
        lint_path = tmp_path / "lint.json"
        lint_path.write_text(lint_out)
        analyze_path = tmp_path / "analyze.json"
        analyze_path.write_text(analyze_out)
        assert (
            tool.main(
                ["--lint", str(lint_path), "--analyze", str(analyze_path)]
            )
            == 0
        )

    def test_rejects_schema_drift(self, capsys, tmp_path):
        import json

        tool = _load_schema_tool()
        _, analyze_out = run_cli(capsys, "analyze", "crc", "--json")
        payload = json.loads(analyze_out)
        del payload["summary"]["verdicts"]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        assert tool.main(["--analyze", str(bad)]) == 1

        _, lint_out = run_cli(capsys, "lint", "crc", "--json")
        payload = json.loads(lint_out)
        payload["totals"]["error"] += 1
        bad_lint = tmp_path / "bad_lint.json"
        bad_lint.write_text(json.dumps(payload))
        assert tool.main(["--lint", str(bad_lint)]) == 1
