"""Public-API sanity: every package imports cleanly and exports what its
``__all__`` promises."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.isa",
    "repro.lang",
    "repro.compiler",
    "repro.engine",
    "repro.trace",
    "repro.predictors",
    "repro.pipeline",
    "repro.sim",
    "repro.telemetry",
    "repro.workloads",
    "repro.experiments",
    "repro.cli",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_imports_cleanly(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_experiment_helpers():
    from repro.experiments.common import arithmetic_mean, geometric_mean

    assert arithmetic_mean([1.0, 3.0]) == 2.0
    assert arithmetic_mean([]) == 0.0
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    # zeros are floored, not fatal
    assert geometric_mean([0.0, 1.0]) > 0.0


def test_version_is_a_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
