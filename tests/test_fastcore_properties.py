"""Property tests for the flat predictor kernels.

Drives random ``(pc, outcome)`` streams through an object predictor and
its kernel side by side via the scalar ABI — every prediction must
match at every step — and checks that kernel state survives a pickle
round trip mid-stream (warm tables keep predicting identically).
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors import (
    BimodalPredictor,
    GAgPredictor,
    GSelectPredictor,
    GSharePredictor,
    LocalPredictor,
)
from repro.sim.fastcore import kernel_from_predictor

pytestmark = pytest.mark.fastcore

FACTORIES = {
    "bimodal": lambda: BimodalPredictor(entries=64),
    "gshare": lambda: GSharePredictor(entries=64, history_bits=6),
    "gselect": lambda: GSelectPredictor(entries=64, history_bits=3),
    "gag": lambda: GAgPredictor(entries=64),
    "local": lambda: LocalPredictor(
        entries=64, local_entries=8, history_bits=6
    ),
}

HISTORY_MASK = (1 << 32) - 1

#: A random branch stream: (pc, taken) pairs.
streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255), st.booleans()
    ),
    min_size=1,
    max_size=200,
)


def run_pair(predictor, kernel, stream):
    """Step both sides through the stream; history evolves as in the
    driver (outcome shifted in at predict time, LSB most recent)."""
    history = 0
    for pc, taken in stream:
        expected = predictor.predict(pc, history)
        got, _ = kernel.predict(pc, history)
        assert bool(got) == bool(expected), (pc, taken, history)
        predictor.update(pc, history, taken)
        kernel.train(pc, history, taken)
        history = ((history << 1) | int(taken)) & HISTORY_MASK


@pytest.mark.parametrize("label", sorted(FACTORIES))
@settings(max_examples=25, deadline=None)
@given(stream=streams)
def test_kernel_matches_object_predictor(label, stream):
    factory = FACTORIES[label]
    run_pair(factory(), kernel_from_predictor(factory()), stream)


@pytest.mark.parametrize("label", sorted(FACTORIES))
@settings(max_examples=25, deadline=None)
@given(stream=streams, split=st.integers(min_value=0, max_value=200))
def test_pickle_roundtrip_mid_stream(label, stream, split):
    """Pickling a warm kernel must not perturb later predictions."""
    factory = FACTORIES[label]
    predictor = factory()
    kernel = kernel_from_predictor(factory())
    split = min(split, len(stream))
    run_pair(predictor, kernel, stream[:split])
    kernel = pickle.loads(pickle.dumps(kernel))
    run_pair(predictor, kernel, stream[split:])


@pytest.mark.parametrize("label", sorted(FACTORIES))
def test_state_roundtrip(label):
    """state()/load_state() is an exact snapshot of a warm kernel."""
    factory = FACTORIES[label]
    warm = kernel_from_predictor(factory())
    history = 0
    for pc in range(300):
        taken = (pc * 7) % 3 == 0
        warm.train(pc & 255, history, taken)
        history = ((history << 1) | int(taken)) & HISTORY_MASK
    fresh = kernel_from_predictor(factory())
    fresh.load_state(warm.state())
    assert fresh.state() == warm.state()
    for pc in range(64):
        assert fresh.predict(pc, history) == warm.predict(pc, history)


def test_load_state_rejects_wrong_size():
    kernel = kernel_from_predictor(FACTORIES["gshare"]())
    state = kernel.state()
    bad = dict(state)
    bad["table"] = bad["table"][:-1]
    with pytest.raises(ValueError):
        kernel.load_state(bad)
