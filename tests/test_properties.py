"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro.isa.opcodes import Relation
from repro.isa.registers import wrap
from repro.pipeline import AvailabilityModel, CostModel, GlobalHistory
from repro.predictors import SaturatingCounters, make_predictor
from repro.lang.reference import evaluate

words = st.integers(min_value=-(2**63), max_value=2**63 - 1)
any_ints = st.integers(min_value=-(2**70), max_value=2**70)


class TestWrap:
    @given(any_ints)
    def test_wrap_is_idempotent(self, value):
        assert wrap(wrap(value)) == wrap(value)

    @given(any_ints)
    def test_wrap_range(self, value):
        wrapped = wrap(value)
        assert -(2**63) <= wrapped < 2**63

    @given(any_ints, any_ints)
    def test_wrap_is_additive_homomorphism(self, a, b):
        assert wrap(wrap(a) + wrap(b)) == wrap(a + b)

    @given(any_ints, any_ints)
    def test_wrap_is_multiplicative_homomorphism(self, a, b):
        assert wrap(wrap(a) * wrap(b)) == wrap(a * b)


class TestRelations:
    @given(words, words)
    def test_exactly_one_of_relation_and_negation(self, a, b):
        for rel in Relation:
            assert rel.evaluate(a, b) != rel.negated().evaluate(a, b)

    @given(words, words)
    def test_trichotomy(self, a, b):
        holds = [
            rel
            for rel in (Relation.LT, Relation.EQ, Relation.GT)
            if rel.evaluate(a, b)
        ]
        assert len(holds) == 1


class TestSaturatingCounters:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(st.booleans(), max_size=64),
    )
    def test_counter_stays_in_range(self, index, outcomes):
        counters = SaturatingCounters(64)
        for taken in outcomes:
            counters.update(index, taken)
            assert 0 <= counters.table[index & counters.mask] <= 3

    @given(st.integers(min_value=0, max_value=63))
    def test_three_agreeing_updates_determine_prediction(self, index):
        counters = SaturatingCounters(64)
        for _ in range(3):
            counters.update(index, True)
        assert counters.predict(index)
        for _ in range(4):
            counters.update(index, False)
        assert not counters.predict(index)


class TestGlobalHistoryProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(st.booleans(), min_size=1, max_size=200),
    )
    def test_history_equals_last_k_bits(self, length, bits):
        history = GlobalHistory(length)
        for bit in bits:
            history.shift(bit)
        expected = 0
        for bit in bits[-length:]:
            expected = (expected << 1) | int(bit)
        assert history.value == expected


class TestAvailabilityProperties:
    @given(
        st.integers(min_value=0, max_value=64),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_monotone_in_distance(self, distance, produced, fetched):
        tighter = AvailabilityModel(distance)
        looser = AvailabilityModel(distance + 1)
        if looser.value_visible(produced, fetched):
            assert tighter.value_visible(produced, fetched)


class TestCostModelProperties:
    @given(
        st.integers(min_value=1, max_value=10**7),
        st.integers(min_value=0, max_value=10**5),
        st.integers(min_value=0, max_value=10**5),
    )
    def test_more_mispredictions_never_faster(self, instrs, m1, m2):
        model = CostModel()
        lo, hi = sorted((m1, m2))
        assert model.cycles(instrs, lo) <= model.cycles(instrs, hi)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_ipc_bounded_by_width(self, instrs):
        model = CostModel(fetch_width=6)
        assert 0 < model.ipc(instrs, 0) <= 6.0


class TestPredictorContracts:
    @given(
        st.sampled_from(["bimodal", "gshare", "gselect", "gag", "local",
                         "perceptron"]),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.integers(min_value=0, max_value=2**20),
                st.booleans(),
            ),
            max_size=100,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_predict_is_pure_and_update_total(self, name, events):
        predictor = make_predictor(name, entries=64)
        for pc, history, taken in events:
            first = predictor.predict(pc, history)
            second = predictor.predict(pc, history)
            assert first == second  # predict has no side effects
            predictor.update(pc, history, taken)
        assert predictor.storage_bits >= 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.booleans(),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_bimodal_converges_to_majority_per_pc(self, events):
        predictor = make_predictor("bimodal", entries=256)
        # Train three times over the same stream: per-PC constant outcomes
        # must be predicted correctly afterwards.
        constant = {}
        for pc, taken in events:
            if pc in constant and constant[pc] != taken:
                constant[pc] = None
            elif pc not in constant:
                constant[pc] = taken
        for _ in range(3):
            for pc, taken in events:
                predictor.update(pc, 0, taken)
        for pc, taken in constant.items():
            if taken is not None:
                assert predictor.predict(pc, 0) == taken


class TestExpressionSemantics:
    """Differential property: reference evaluator vs Python semantics."""

    @given(words, words)
    @settings(max_examples=50, deadline=None)
    def test_division_matches_c_semantics(self, a, b):
        source = f"func main() {{ return ({a}) / ({b}); }}"
        expected = 0
        if b != 0:
            q = abs(a) // abs(b)
            expected = wrap(-q if (a < 0) != (b < 0) else q)
        assert evaluate(source) == expected

    @given(words, words)
    @settings(max_examples=50, deadline=None)
    def test_div_mod_identity(self, a, b):
        source = f"""
        func main() {{
            var a = {a};
            var b = {b};
            return (a / b) * b + (a % b) - a;
        }}
        """
        if b != 0:
            # (a/b)*b may wrap, but the full identity holds modulo 2^64.
            assert evaluate(source) == 0

    @given(words, st.integers(min_value=0, max_value=63))
    @settings(max_examples=50, deadline=None)
    def test_shift_roundtrip_arithmetic(self, a, s):
        source = f"func main() {{ return (({a}) >> {s}); }}"
        assert evaluate(source) == wrap(a >> s)
