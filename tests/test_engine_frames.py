"""Deeper engine tests: register frames, predicate tracking across
calls, argument conventions, spill-stack behaviour."""

import pytest

from repro.engine import EngineError, run
from repro.isa import CmpType, ProgramBuilder, Relation
from repro.isa.registers import ARG_BASE, R_SP
from repro.trace import TraceRecorder


def build_and_run(build, recorder=None):
    pb = ProgramBuilder()
    build(pb)
    return run(pb.link(), recorder=recorder, max_instructions=1_000_000)


class TestRegisterFrames:
    def test_predicates_are_per_frame(self):
        # Callee sets p1; caller's p1 must remain false after return.
        def build(pb):
            main = pb.function("main")
            main.call(1, "setter", nargs=0)
            main.movi(2, 0)
            main.addi(2, 2, 10, qp=1)  # caller p1 still false
            main.ret(ra=2)
            setter = pb.function("setter")
            setter.movi(1, 1)
            setter.cmp(Relation.EQ, 1, -1, ra=1, imm=1)  # p1 = True
            setter.ret(imm=0)

        assert build_and_run(build).return_value == 0

    def test_arg_registers_copied_not_shared(self):
        # Callee overwrites its incoming arg register; caller's copy
        # stays intact.
        def build(pb):
            main = pb.function("main")
            main.movi(ARG_BASE, 5)
            main.call(1, "clobber", nargs=1)
            main.mov(2, ARG_BASE)
            main.ret(ra=2)
            clobber = pb.function("clobber", nparams=1)
            clobber.movi(ARG_BASE, 999)
            clobber.ret(imm=0)

        assert build_and_run(build).return_value == 5

    def test_deep_recursion_hits_stack_limit(self):
        def build(pb):
            main = pb.function("main")
            main.call(1, "down", nargs=0)
            main.ret(ra=1)
            down = pb.function("down")
            down.call(1, "down", nargs=0)
            down.ret(ra=1)

        with pytest.raises(EngineError):
            build_and_run(build)

    def test_sp_inherited_and_adjusted_by_frame_slots(self):
        # A callee with frame slots gets SP lowered by that amount.
        def build(pb):
            main = pb.function("main")
            main.mov(1, R_SP)
            main.call(2, "probe", nargs=0)
            main.sub(3, 1, 2)  # caller SP - callee SP = slots
            main.ret(ra=3)
            probe = pb.function("probe")
            probe.function.frame_slots = 7
            probe.mov(1, R_SP)
            probe.ret(ra=1)

        assert build_and_run(build).return_value == 7

    def test_nullified_call_is_not_entered(self):
        def build(pb):
            main = pb.function("main")
            main.movi(1, 42)
            main.call(1, "boom", nargs=0, qp=5)  # p5 false
            main.ret(ra=1)
            boom = pb.function("boom")
            boom.ret(imm=999)

        assert build_and_run(build).return_value == 42

    def test_nullified_ret_falls_through(self):
        def build(pb):
            main = pb.function("main")
            main.call(1, "maybe", nargs=0)
            main.ret(ra=1)
            maybe = pb.function("maybe")
            maybe.ret(imm=111, qp=9)  # p9 false: not taken
            maybe.ret(imm=222)

        assert build_and_run(build).return_value == 222


class TestGuardDefTracking:
    def test_pdef_index_is_per_frame(self):
        # Callee writes p1 at its own time; caller's p1 def-index is
        # whatever the caller wrote, not the callee.
        recorder = TraceRecorder()

        def build(pb):
            main = pb.function("main")
            main.movi(1, 1)
            main.cmp(Relation.EQ, 1, -1, ra=1, imm=1)  # main defines p1
            main.call(2, "noise", nargs=0)
            main.br("skip", qp=1)  # guarded by main's p1
            main.label("skip")
            main.halt()
            noise = pb.function("noise")
            noise.movi(1, 0)
            noise.cmp(Relation.EQ, 1, -1, ra=1, imm=0)
            noise.ret(imm=0)

        build_and_run(build, recorder=recorder)
        trace = recorder.finish()
        # The traced branch is main's; its guard def must be main's cmp
        # (dyn idx 1), not the callee's later cmp.
        assert trace.num_branches == 1
        assert trace.b_guard_def[0] == 1

    def test_unc_compare_updates_def_index_even_when_nullified(self):
        recorder = TraceRecorder()

        def build(pb):
            f = pb.function("main")
            f.movi(1, 1)
            f.cmp(Relation.EQ, 2, -1, ra=1, imm=99)  # p2 = False @1
            f.nop()
            f.nop()
            # unc under false p2 still clears p3 (an architectural write)
            f.cmp(Relation.EQ, 3, -1, ra=1, imm=1, ctype=CmpType.UNC,
                  qp=2)
            f.br("end", qp=3)
            f.label("end")
            f.halt()

        build_and_run(build, recorder=recorder)
        trace = recorder.finish()
        assert trace.num_branches == 1
        assert trace.b_guard_def[0] == 4  # the unc compare's dyn index


class TestReturnValueRouting:
    def test_return_value_to_r0_is_dropped(self):
        def build(pb):
            main = pb.function("main")
            main.call(0, "seven", nargs=0)  # rd = r0: discarded
            main.mov(1, 0)
            main.ret(ra=1)
            seven = pb.function("seven")
            seven.ret(imm=7)

        assert build_and_run(build).return_value == 0

    def test_nested_call_results_compose(self):
        def build(pb):
            main = pb.function("main")
            main.movi(ARG_BASE, 3)
            main.call(1, "double", nargs=1)
            main.mov(ARG_BASE, 1)
            main.call(2, "double", nargs=1)
            main.ret(ra=2)
            double = pb.function("double", nparams=1)
            double.add(1, ARG_BASE, ARG_BASE)
            double.ret(ra=1)

        assert build_and_run(build).return_value == 12
