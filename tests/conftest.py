"""Suite-wide test configuration.

The test suite's expectations are written against the *default* core
resolution (``simulate`` runs the object reference loop unless a test
opts in).  An ambient ``REPRO_SIM_CORE`` would silently reroute every
simulation through the fast cores — results are bit-identical by
contract, but telemetry snapshots grow ``sim.core.*``/``fastcore.*``
entries and the suite would no longer exercise the reference path it
documents.  Pin the knob for the whole session; tests that want a
specific core pass ``core=`` or use :func:`repro.sim.use_core`.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _pin_default_sim_core():
    saved = os.environ.pop("REPRO_SIM_CORE", None)
    yield
    if saved is not None:
        os.environ["REPRO_SIM_CORE"] = saved
