"""Unit tests for the ISA package: instructions, programs, linking."""

import pytest

from repro.isa import (
    BranchKind,
    CmpType,
    Instruction,
    LinkError,
    Opcode,
    Program,
    ProgramBuilder,
    Relation,
    disassemble,
    format_instruction,
)
from repro.isa.registers import wrap


class TestRelation:
    def test_evaluate_all(self):
        assert Relation.EQ.evaluate(3, 3)
        assert not Relation.EQ.evaluate(3, 4)
        assert Relation.NE.evaluate(3, 4)
        assert Relation.LT.evaluate(-1, 0)
        assert Relation.LE.evaluate(5, 5)
        assert Relation.GT.evaluate(7, 2)
        assert Relation.GE.evaluate(2, 2)

    def test_negated_is_involution(self):
        for rel in Relation:
            assert rel.negated().negated() is rel

    def test_negated_is_complement(self):
        pairs = [(0, 0), (1, 2), (-5, 3), (7, 7), (2, -2)]
        for rel in Relation:
            for a, b in pairs:
                assert rel.evaluate(a, b) != rel.negated().evaluate(a, b)


class TestWrap:
    def test_wrap_identity_in_range(self):
        assert wrap(42) == 42
        assert wrap(-42) == -42

    def test_wrap_overflow(self):
        assert wrap(2**63) == -(2**63)
        assert wrap(2**64) == 0
        assert wrap(-(2**63) - 1) == 2**63 - 1


class TestInstruction:
    def test_branch_event_classification(self):
        uncond = Instruction(op=Opcode.BR, target="x")
        assert not uncond.is_branch_event()
        cond = Instruction(
            op=Opcode.BR, qp=3, target="x", kind=BranchKind.COND
        )
        assert cond.is_branch_event()
        pred_call = Instruction(op=Opcode.CALL, qp=2, target="f")
        assert pred_call.is_branch_event()
        plain_call = Instruction(op=Opcode.CALL, target="f")
        assert not plain_call.is_branch_event()

    def test_copy_is_independent(self):
        instr = Instruction(op=Opcode.ADD, rd=1, ra=2, rb=3)
        dup = instr.copy()
        dup.rd = 9
        assert instr.rd == 1

    def test_reads_and_writes(self):
        add = Instruction(op=Opcode.ADD, rd=1, ra=2, rb=3)
        assert add.reads_regs() == [2, 3]
        assert add.writes_reg() == 1
        store = Instruction(op=Opcode.STORE, ra=4, rb=5)
        assert store.reads_regs() == [4, 5]
        assert store.writes_reg() == -1

    def test_writes_predicates(self):
        cmp = Instruction(op=Opcode.CMP, pd1=1, pd2=2)
        assert cmp.writes_predicates()
        add = Instruction(op=Opcode.ADD, rd=1, ra=1, rb=1)
        assert not add.writes_predicates()


#: op -> (instruction, expected reads, expected write, writes predicates).
#: The static verifier's dataflow rules are built on these accessors, so
#: every opcode's register effects are pinned down here.
_EFFECTS = {
    Opcode.ADD: (Instruction(op=Opcode.ADD, rd=1, ra=2, rb=3), [2, 3], 1),
    Opcode.SUB: (Instruction(op=Opcode.SUB, rd=4, ra=5, imm=1), [5], 4),
    Opcode.MUL: (Instruction(op=Opcode.MUL, rd=1, ra=1, rb=1), [1, 1], 1),
    Opcode.DIV: (Instruction(op=Opcode.DIV, rd=2, ra=3, imm=2), [3], 2),
    Opcode.MOD: (Instruction(op=Opcode.MOD, rd=2, ra=3, rb=4), [3, 4], 2),
    Opcode.AND: (Instruction(op=Opcode.AND, rd=6, ra=7, rb=8), [7, 8], 6),
    Opcode.OR: (Instruction(op=Opcode.OR, rd=6, ra=7, imm=15), [7], 6),
    Opcode.XOR: (Instruction(op=Opcode.XOR, rd=6, ra=7, rb=8), [7, 8], 6),
    Opcode.SHL: (Instruction(op=Opcode.SHL, rd=9, ra=9, imm=2), [9], 9),
    Opcode.SHR: (Instruction(op=Opcode.SHR, rd=9, ra=9, imm=2), [9], 9),
    Opcode.SRA: (Instruction(op=Opcode.SRA, rd=9, ra=9, rb=3), [9, 3], 9),
    Opcode.MOV: (Instruction(op=Opcode.MOV, rd=4, ra=2), [2], 4),
    Opcode.LOAD: (Instruction(op=Opcode.LOAD, rd=4, ra=5, imm=8), [5], 4),
    Opcode.STORE: (Instruction(op=Opcode.STORE, ra=4, rb=5), [4, 5], -1),
    Opcode.CMP: (
        Instruction(op=Opcode.CMP, pd1=1, pd2=2, ra=3, rb=4),
        [3, 4],
        -1,
    ),
    Opcode.BR: (
        Instruction(op=Opcode.BR, qp=1, target="x", kind=BranchKind.COND),
        [],
        -1,
    ),
    Opcode.CALL: (
        Instruction(op=Opcode.CALL, rd=7, target="f", nargs=1), [], 7
    ),
    Opcode.RET: (
        Instruction(op=Opcode.RET, ra=3, kind=BranchKind.RET), [3], -1
    ),
    Opcode.HALT: (Instruction(op=Opcode.HALT), [], -1),
    Opcode.NOP: (Instruction(op=Opcode.NOP), [], -1),
}


class TestInstructionEffectsCatalogue:
    def test_catalogue_covers_every_opcode(self):
        assert set(_EFFECTS) == set(Opcode)

    @pytest.mark.parametrize("op", list(_EFFECTS), ids=lambda o: o.name)
    def test_reads_and_write(self, op):
        instr, reads, write = _EFFECTS[op]
        assert instr.reads_regs() == reads
        assert instr.writes_reg() == write

    @pytest.mark.parametrize("op", list(_EFFECTS), ids=lambda o: o.name)
    def test_writes_predicates(self, op):
        instr, _, _ = _EFFECTS[op]
        assert instr.writes_predicates() == (
            op is Opcode.CMP and (instr.pd1 >= 0 or instr.pd2 >= 0)
        )

    def test_immediate_sources_are_not_register_reads(self):
        mov = Instruction(op=Opcode.MOV, rd=1, imm=5)
        assert mov.reads_regs() == []
        ret = Instruction(op=Opcode.RET, imm=0, kind=BranchKind.RET)
        assert ret.reads_regs() == []
        load = Instruction(op=Opcode.LOAD, rd=1, imm=64)
        assert load.reads_regs() == []

    def test_compare_without_targets_writes_no_predicates(self):
        cmp = Instruction(op=Opcode.CMP, ra=1, rb=2)
        assert not cmp.writes_predicates()


class TestLinking:
    def test_link_resolves_labels(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 0)
        f.label("top")
        f.addi(1, 1, 1)
        f.jmp("end")
        f.label("end")
        f.halt()
        exe = pb.link()
        jump = exe.code[2]
        assert jump.target == 3

    def test_link_missing_label_raises(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.jmp("nowhere")
        with pytest.raises(LinkError):
            pb.link()

    def test_link_missing_function_raises(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.call(1, "ghost")
        f.halt()
        with pytest.raises(LinkError):
            pb.link()

    def test_link_requires_entry(self):
        program = Program()
        with pytest.raises(LinkError):
            program.link()

    def test_duplicate_label_raises(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.label("a")
        f.nop()
        with pytest.raises(LinkError):
            f.label("a")
            f.label("a")

    def test_globals_are_packed_in_order(self):
        pb = ProgramBuilder()
        pb.array("a", 10)
        pb.array("b", 5)
        f = pb.function("main")
        f.halt()
        exe = pb.link()
        assert exe.global_base("a") == 0
        assert exe.global_base("b") == 10
        assert exe.memory_words >= 15

    def test_call_targets_resolve_to_entries(self):
        pb = ProgramBuilder()
        main = pb.function("main")
        main.call(1, "helper")
        main.halt()
        helper = pb.function("helper")
        helper.ret(imm=7)
        exe = pb.link()
        assert exe.code[0].target == exe.function_entries["helper"]

    def test_entry_function_comes_first(self):
        pb = ProgramBuilder()
        helper = pb.function("zzz")
        helper.ret(imm=1)
        main = pb.function("main")
        main.halt()
        exe = pb.link()
        assert exe.entry == 0
        assert exe.function_at(0) == "main"


class TestPrinter:
    def test_format_cmp(self):
        instr = Instruction(
            op=Opcode.CMP,
            qp=3,
            ra=4,
            rb=7,
            pd1=5,
            pd2=6,
            crel=Relation.LT,
            ctype=CmpType.UNC,
        )
        text = format_instruction(instr)
        assert "(p3)" in text
        assert "cmp.lt.unc p5, p6 = r4, r7" in text

    def test_format_region_annotations(self):
        instr = Instruction(
            op=Opcode.BR,
            qp=2,
            target=10,
            kind=BranchKind.COND,
            region=1,
            region_based=True,
        )
        text = format_instruction(instr)
        assert "region 1" in text
        assert "region-based" in text

    def test_disassemble_executable(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 5)
        f.halt()
        text = disassemble(pb.link())
        assert "main:" in text
        assert "mov r1 = 5" in text

    def test_disassemble_function_shows_labels(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.label("loop")
        f.jmp("loop")
        text = disassemble(f.function)
        assert "loop:" in text
