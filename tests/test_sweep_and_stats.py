"""Tests for the sweep helper, result-table formatting and workload base."""

import pytest

from repro.compiler.config import BASELINE, HYPERBLOCK
from repro.predictors import make_predictor
from repro.sim import SimOptions, format_result_table, sweep
from repro.workloads import get_workload
from repro.workloads.base import Workload


class TestSweep:
    def test_grid_shape_and_freshness(self):
        trace = get_workload("crc").trace(scale="tiny")
        traces = {"crc": trace}
        factories = {
            "gshare256": lambda: make_predictor("gshare", entries=256),
            "bimodal256": lambda: make_predictor("bimodal", entries=256),
        }
        grid = [SimOptions(), SimOptions(distance=8)]
        results = sweep(traces, factories, grid)
        assert len(results) == 4
        labels = {(r.workload, r.predictor) for r in results}
        assert labels == {("crc", "gshare256"), ("crc", "bimodal256")}
        # Same predictor label with the same options must give identical
        # numbers (fresh instance per point -> no state leakage).
        again = sweep(traces, factories, grid)
        assert [r.mispredictions for r in again] == [
            r.mispredictions for r in results
        ]


class TestFormatTable:
    def test_alignment_and_floats(self):
        rows = [
            {"name": "a", "value": 0.123456},
            {"name": "longer", "value": 2},
        ]
        text = format_result_table(rows, ["name", "value"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.1235" in text
        assert "longer" in text
        # all data lines have equal width
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_missing_cells_blank(self):
        text = format_result_table([{"a": 1}], ["a", "b"])
        assert "b" in text

    def test_empty_rows_render_header_and_rule(self):
        text = format_result_table([], ["alpha", "b"], title="T")
        lines = text.splitlines()
        assert lines == ["T", "alpha  b", "-----  -"]

    def test_numeric_headers_right_aligned(self):
        rows = [
            {"name": "a", "rate": 0.25, "count": 10},
            {"name": "blob", "rate": 1.5, "count": 12345678},
        ]
        text = format_result_table(rows, ["name", "rate", "count"])
        header, rule, first, second = text.splitlines()
        # Numeric columns right-align header and cells together; the
        # string column is left-aligned throughout.
        assert header == "name    rate     count"
        assert rule == "----  ------  --------"
        assert first == "a     0.2500        10"
        assert second == "blob  1.5000  12345678"

    def test_mixed_column_stays_left_aligned(self):
        rows = [{"workload": "crc", "x": 1.0}, {"workload": "MEAN", "x": 2.0}]
        text = format_result_table(rows, ["workload", "x"])
        lines = text.splitlines()
        assert lines[0].startswith("workload")
        assert lines[2].startswith("crc")
        assert lines[3].startswith("MEAN")


class TestWorkloadBase:
    def test_cache_key_varies_with_config_and_scale(self):
        workload = get_workload("crc")
        key_base = workload._cache_key("tiny", BASELINE)
        key_hyper = workload._cache_key("tiny", HYPERBLOCK)
        key_small = workload._cache_key("small", BASELINE)
        assert len({key_base, key_hyper, key_small}) == 3

    def test_template_substitution_failure(self):
        broken = Workload(
            name="broken",
            description="",
            template="func main() { return $missing; }",
            scales={"tiny": {"present": 1}},
        )
        with pytest.raises(KeyError):
            broken.source("tiny")

    def test_run_defaults_to_baseline(self):
        workload = get_workload("crc")
        assert (
            workload.run("tiny").return_value
            == workload.run("tiny", BASELINE).return_value
        )
