"""Round-trip tests for the disassembler (``repro.isa.printer``).

``reparse`` inverts ``format_instruction`` for every opcode; the
catalogue below exercises each operand shape, and a compiled workload
checks render-stability on real code (``format(reparse(text)) == text``).
"""

import re

import pytest

from repro.compiler.config import HYPERBLOCK
from repro.isa import BranchKind, CmpType, Instruction, Opcode, Relation
from repro.isa.printer import _GUARD_WIDTH, disassemble, format_instruction
from repro.isa.registers import P_TRUE
from repro.workloads import get_workload

_RELS = {
    "eq": Relation.EQ,
    "ne": Relation.NE,
    "lt": Relation.LT,
    "le": Relation.LE,
    "gt": Relation.GT,
    "ge": Relation.GE,
}
_CTYPES = {
    "": CmpType.NORMAL,
    "unc": CmpType.UNC,
    "and": CmpType.AND,
    "or": CmpType.OR,
}
_KINDS = {
    "br": BranchKind.UNCOND,
    "br.cond": BranchKind.COND,
    "br.loop": BranchKind.LOOP,
    "br.exit": BranchKind.EXIT,
}
_ALUS = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "mul": Opcode.MUL,
    "div": Opcode.DIV,
    "mod": Opcode.MOD,
    "and": Opcode.AND,
    "or": Opcode.OR,
    "xor": Opcode.XOR,
    "shl": Opcode.SHL,
    "shr": Opcode.SHR,
    "sra": Opcode.SRA,
}


def _target(text: str):
    return int(text) if re.fullmatch(r"-?\d+", text) else text


def reparse(text: str) -> Instruction:
    """Parse one line of disassembly back into an :class:`Instruction`."""
    match = re.match(r"\(p(\d+)\)\s+", text)
    if match:
        qp = int(match.group(1))
        body = text[match.end():]
    else:
        assert text.startswith(" " * _GUARD_WIDTH), text
        qp = P_TRUE
        body = text.lstrip()

    region, region_based = -1, False
    if ";" in body:
        body, _, notes = body.partition(";")
        body = body.rstrip()
        for note in notes.split(","):
            note = note.strip()
            if note == "region-based":
                region_based = True
            elif note.startswith("region "):
                region = int(note.split()[1])

    instr = _parse_body(body, qp)
    instr.region = region
    instr.region_based = region_based
    return instr


def _parse_body(body: str, qp: int) -> Instruction:
    mnemonic, _, rest = body.partition(" ")
    if mnemonic == "halt":
        return Instruction(op=Opcode.HALT, qp=qp)
    if mnemonic == "nop":
        return Instruction(op=Opcode.NOP, qp=qp)
    if mnemonic == "ret":
        if rest.startswith("r"):
            return Instruction(
                op=Opcode.RET, qp=qp, ra=int(rest[1:]), kind=BranchKind.RET
            )
        return Instruction(
            op=Opcode.RET, qp=qp, imm=int(rest), kind=BranchKind.RET
        )
    if mnemonic == "call":
        m = re.fullmatch(r"r(\d+) = (\w+)\((\d+) args\)", rest)
        return Instruction(
            op=Opcode.CALL,
            qp=qp,
            rd=int(m.group(1)),
            target=_target(m.group(2)),
            nargs=int(m.group(3)),
            kind=BranchKind.CALL,
        )
    if mnemonic in _KINDS:
        return Instruction(
            op=Opcode.BR, qp=qp, target=_target(rest), kind=_KINDS[mnemonic]
        )
    if mnemonic.startswith("cmp."):
        parts = mnemonic.split(".")
        m = re.fullmatch(
            r"p(\d+)(?:, p(\d+))? = r(\d+), (?:r(\d+)|(-?\d+))", rest
        )
        return Instruction(
            op=Opcode.CMP,
            qp=qp,
            pd1=int(m.group(1)),
            pd2=int(m.group(2)) if m.group(2) else -1,
            ra=int(m.group(3)),
            rb=int(m.group(4)) if m.group(4) is not None else -1,
            imm=int(m.group(5)) if m.group(5) is not None else 0,
            crel=_RELS[parts[1]],
            ctype=_CTYPES[parts[2] if len(parts) > 2 else ""],
        )
    if mnemonic == "mov":
        m = re.fullmatch(r"r(\d+) = (?:r(\d+)|(-?\d+))", rest)
        return Instruction(
            op=Opcode.MOV,
            qp=qp,
            rd=int(m.group(1)),
            ra=int(m.group(2)) if m.group(2) is not None else -1,
            imm=int(m.group(3)) if m.group(3) is not None else 0,
        )
    if mnemonic == "ld":
        m = re.fullmatch(r"r(\d+) = \[(?:r(\d+)|0) \+ (-?\d+)\]", rest)
        return Instruction(
            op=Opcode.LOAD,
            qp=qp,
            rd=int(m.group(1)),
            ra=int(m.group(2)) if m.group(2) is not None else -1,
            imm=int(m.group(3)),
        )
    if mnemonic == "st":
        m = re.fullmatch(r"\[(?:r(\d+)|0) \+ (-?\d+)\] = r(\d+)", rest)
        return Instruction(
            op=Opcode.STORE,
            qp=qp,
            ra=int(m.group(1)) if m.group(1) is not None else -1,
            imm=int(m.group(2)),
            rb=int(m.group(3)),
        )
    alu = _ALUS[mnemonic]
    m = re.fullmatch(r"r(\d+) = r(\d+), (?:r(\d+)|(-?\d+))", rest)
    return Instruction(
        op=alu,
        qp=qp,
        rd=int(m.group(1)),
        ra=int(m.group(2)),
        rb=int(m.group(3)) if m.group(3) is not None else -1,
        imm=int(m.group(4)) if m.group(4) is not None else 0,
    )


CASES = [
    Instruction(op=Opcode.ADD, rd=3, ra=1, rb=2),
    Instruction(op=Opcode.ADD, qp=5, rd=3, ra=1, imm=-7),
    Instruction(op=Opcode.SUB, rd=4, ra=4, rb=2),
    Instruction(op=Opcode.MUL, rd=4, ra=4, imm=3),
    Instruction(op=Opcode.DIV, rd=9, ra=8, rb=7),
    Instruction(op=Opcode.MOD, qp=63, rd=9, ra=8, imm=10),
    Instruction(op=Opcode.AND, rd=1, ra=2, rb=3),
    Instruction(op=Opcode.OR, rd=1, ra=2, imm=255),
    Instruction(op=Opcode.XOR, rd=1, ra=1, rb=1),
    Instruction(op=Opcode.SHL, rd=2, ra=2, imm=4),
    Instruction(op=Opcode.SHR, rd=2, ra=2, imm=1),
    Instruction(op=Opcode.SRA, qp=12, rd=2, ra=2, imm=31),
    Instruction(op=Opcode.MOV, rd=4, ra=2),
    Instruction(op=Opcode.MOV, qp=3, rd=4, imm=-9),
    Instruction(op=Opcode.LOAD, rd=2, ra=5, imm=12),
    Instruction(op=Opcode.LOAD, rd=2, imm=100),
    Instruction(op=Opcode.STORE, ra=5, rb=3, imm=-4),
    Instruction(op=Opcode.STORE, qp=6, rb=3, imm=64),
    Instruction(op=Opcode.CMP, pd1=1, pd2=2, ra=4, rb=7, crel=Relation.LT),
    Instruction(op=Opcode.CMP, pd1=3, ra=4, imm=0, crel=Relation.EQ),
    Instruction(
        op=Opcode.CMP,
        qp=3,
        pd1=5,
        pd2=6,
        ra=4,
        rb=7,
        crel=Relation.GE,
        ctype=CmpType.UNC,
    ),
    Instruction(
        op=Opcode.CMP, qp=1, pd1=5, ra=4, imm=-1,
        crel=Relation.NE, ctype=CmpType.AND,
    ),
    Instruction(
        op=Opcode.CMP, qp=2, pd1=5, ra=4, imm=9,
        crel=Relation.LE, ctype=CmpType.OR,
    ),
    Instruction(
        op=Opcode.CMP, pd1=7, pd2=8, ra=1, rb=2,
        crel=Relation.GT, region=2,
    ),
    Instruction(op=Opcode.BR, target="loop", kind=BranchKind.UNCOND),
    Instruction(op=Opcode.BR, qp=2, target="exit", kind=BranchKind.COND),
    Instruction(op=Opcode.BR, qp=1, target=17, kind=BranchKind.LOOP),
    Instruction(
        op=Opcode.BR,
        qp=9,
        target="side",
        kind=BranchKind.EXIT,
        region=3,
        region_based=True,
    ),
    Instruction(
        op=Opcode.CALL, rd=1, target="helper", nargs=2, kind=BranchKind.CALL
    ),
    Instruction(op=Opcode.RET, ra=3, kind=BranchKind.RET),
    Instruction(op=Opcode.RET, imm=0, kind=BranchKind.RET),
    Instruction(op=Opcode.HALT),
    Instruction(op=Opcode.NOP, qp=7),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "instr", CASES, ids=[f"{i:02d}-{c.op.name}" for i, c in enumerate(CASES)]
    )
    def test_catalogue_roundtrip(self, instr):
        text = format_instruction(instr)
        assert reparse(text) == instr, text

    def test_catalogue_covers_every_opcode(self):
        assert {case.op for case in CASES} == set(Opcode)

    def test_workload_disassembly_is_render_stable(self):
        exe = get_workload("crc").compile("tiny", HYPERBLOCK).executable
        lines = disassemble(exe).splitlines()
        checked = 0
        for line in lines:
            if not re.match(r"^  +\d+  ", line):
                continue  # function-entry label line
            text = line[9:]
            assert format_instruction(reparse(text)) == text
            checked += 1
        assert checked == len(exe.code)


class TestGuardColumn:
    def test_p0_guard_is_omitted(self):
        text = format_instruction(Instruction(op=Opcode.NOP))
        assert "(p0)" not in text
        assert text == " " * _GUARD_WIDTH + "nop"

    def test_p0_never_appears_in_workload_disassembly(self):
        exe = get_workload("grep").compile("tiny", HYPERBLOCK).executable
        assert "(p0)" not in disassemble(exe)

    def test_bodies_align_regardless_of_guard(self):
        for instr in CASES:
            text = format_instruction(instr)
            body = text[_GUARD_WIDTH:]
            assert not body.startswith(" "), repr(text)
            guard = text[:_GUARD_WIDTH]
            expected = "" if instr.qp == P_TRUE else f"(p{instr.qp})"
            assert guard.rstrip() == expected
