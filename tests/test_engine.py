"""Unit tests for the interpreter: semantics of every opcode, predication,
calls, tracing hooks, and limits."""

import pytest

from repro.engine import EngineError, EngineLimitError, run
from repro.isa import CmpType, ProgramBuilder, Relation
from repro.isa.registers import ARG_BASE
from repro.trace import TraceRecorder


def build_and_run(build, recorder=None, max_instructions=1_000_000):
    pb = ProgramBuilder()
    build(pb)
    exe = pb.link()
    result = run(exe, recorder=recorder, max_instructions=max_instructions)
    return exe, result


class TestAlu:
    @pytest.mark.parametrize(
        "method,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("mul", -4, 3, -12),
            ("div", 7, 2, 3),
            ("div", -7, 2, -3),  # C-style truncation toward zero
            ("mod", 7, 2, 1),
            ("mod", -7, 2, -1),  # remainder keeps dividend sign
            ("and_", 0b1100, 0b1010, 0b1000),
            ("or_", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
        ],
    )
    def test_binary_ops(self, method, a, b, expected):
        def build(pb):
            f = pb.function("main")
            f.movi(1, a)
            f.movi(2, b)
            getattr(f, method)(3, 1, 2)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == expected

    def test_shifts(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, -8)
            f.shli(2, 1, 1)  # -16
            f.srai(3, 1, 1)  # -4
            f.shri(4, 1, 60)  # logical: high bits of two's complement
            f.add(5, 2, 3)
            f.add(5, 5, 4)
            f.ret(ra=5)

        _, result = build_and_run(build)
        assert result.return_value == -16 + -4 + ((-8 % 2**64) >> 60)

    def test_wrapping_overflow(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 2**62)
            f.shli(2, 1, 2)  # 2**64 wraps to 0
            f.ret(ra=2)

        _, result = build_and_run(build)
        assert result.return_value == 0

    def test_division_by_zero_yields_zero(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 1)
            f.movi(2, 0)
            f.div(3, 1, 2)
            f.modi(4, 1, 0)
            f.add(5, 3, 4)
            f.ret(ra=5)

        _, result = build_and_run(build)
        assert result.return_value == 0

    def test_r0_is_hardwired_zero(self):
        def build(pb):
            f = pb.function("main")
            f.movi(0, 99)
            f.mov(1, 0)
            f.ret(ra=1)

        _, result = build_and_run(build)
        assert result.return_value == 0


class TestPredication:
    def test_nullified_alu_does_not_write(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 5)
            # p1 never set, so this add is nullified.
            f.addi(1, 1, 100, qp=1)
            f.ret(ra=1)

        _, result = build_and_run(build)
        assert result.return_value == 5

    def test_cmp_normal_writes_pair(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 3)
            f.cmp(Relation.LT, 1, 2, ra=1, imm=10)  # p1=T, p2=F
            f.movi(3, 0)
            f.addi(3, 3, 1, qp=1)
            f.addi(3, 3, 10, qp=2)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == 1

    def test_cmp_normal_under_false_qp_leaves_stale(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 0)
            f.cmp(Relation.EQ, 1, -1, ra=1, imm=0)  # p1 = True
            # Nested compare under false p2 (never set): should not write.
            f.cmp(Relation.EQ, 1, -1, ra=1, imm=99, qp=2)
            f.movi(3, 0)
            f.addi(3, 3, 1, qp=1)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == 1

    def test_cmp_unc_clears_under_false_qp(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 0)
            f.cmp(Relation.EQ, 1, -1, ra=1, imm=0)  # p1 = True
            # p3 never set; unconditional compare under p3 clears p1.
            f.cmp(Relation.EQ, 1, 2, ra=1, imm=0, ctype=CmpType.UNC, qp=3)
            f.movi(3, 100)
            f.addi(3, 3, 1, qp=1)
            f.addi(3, 3, 10, qp=2)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == 100

    def test_cmp_and_or_accumulate(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 5)
            # start p1 true via normal compare
            f.cmp(Relation.EQ, 1, -1, ra=1, imm=5)
            # AND-type: 5 < 3 is false -> clears p1
            f.cmp(Relation.LT, 1, -1, ra=1, imm=3, ctype=CmpType.AND)
            # OR-type: 5 > 4 is true -> sets p2
            f.cmp(Relation.GT, 2, -1, ra=1, imm=4, ctype=CmpType.OR)
            f.movi(3, 0)
            f.addi(3, 3, 1, qp=1)
            f.addi(3, 3, 10, qp=2)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == 10

    def test_and_or_do_not_touch_when_inactive(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 5)
            f.cmp(Relation.EQ, 1, -1, ra=1, imm=5)  # p1 = True
            # AND-type with true result: leaves p1 set.
            f.cmp(Relation.EQ, 1, -1, ra=1, imm=5, ctype=CmpType.AND)
            # OR-type with false result: leaves p1 alone too.
            f.cmp(Relation.EQ, 1, -1, ra=1, imm=6, ctype=CmpType.OR)
            f.movi(3, 0)
            f.addi(3, 3, 1, qp=1)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == 1


class TestControl:
    def test_loop_counts(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 0)  # i = 0
            f.movi(2, 0)  # sum = 0
            f.label("loop")
            f.add(2, 2, 1)
            f.addi(1, 1, 1)
            f.cmp(Relation.LT, 1, 2, ra=1, imm=10)
            f.br("loop", qp=1)
            f.ret(ra=2)

        _, result = build_and_run(build)
        assert result.return_value == sum(range(10))

    def test_call_and_return_value(self):
        def build(pb):
            main = pb.function("main")
            main.movi(ARG_BASE, 20)
            main.movi(ARG_BASE + 1, 22)
            main.call(1, "adder", nargs=2)
            main.ret(ra=1)
            adder = pb.function("adder", nparams=2)
            adder.add(1, ARG_BASE, ARG_BASE + 1)
            adder.ret(ra=1)

        _, result = build_and_run(build)
        assert result.return_value == 42

    def test_callee_frame_is_fresh(self):
        def build(pb):
            main = pb.function("main")
            main.movi(5, 123)
            main.call(1, "clobber", nargs=0)
            main.ret(ra=5)
            clobber = pb.function("clobber")
            clobber.movi(5, 999)
            clobber.ret(imm=0)

        _, result = build_and_run(build)
        assert result.return_value == 123

    def test_recursion(self):
        def build(pb):
            main = pb.function("main")
            main.movi(ARG_BASE, 10)
            main.call(1, "fib", nargs=1)
            main.ret(ra=1)
            fib = pb.function("fib", nparams=1)
            fib.mov(2, ARG_BASE)  # n
            fib.cmp(Relation.LT, 1, -1, ra=2, imm=2)
            fib.br("base", qp=1)
            fib.subi(ARG_BASE, 2, 1)
            fib.call(3, "fib", nargs=1)
            fib.subi(ARG_BASE, 2, 2)
            fib.call(4, "fib", nargs=1)
            fib.add(5, 3, 4)
            fib.ret(ra=5)
            fib.label("base")
            fib.ret(ra=2)

        _, result = build_and_run(build)
        assert result.return_value == 55

    def test_nullified_branch_not_taken(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, 1)
            f.br("skip", qp=5)  # p5 false: fall through
            f.movi(1, 2)
            f.label("skip")
            f.ret(ra=1)

        _, result = build_and_run(build)
        assert result.return_value == 2

    def test_instruction_limit(self):
        def build(pb):
            f = pb.function("main")
            f.label("spin")
            f.jmp("spin")

        with pytest.raises(EngineLimitError):
            build_and_run(build, max_instructions=100)

    def test_falling_off_program_raises(self):
        def build(pb):
            f = pb.function("main")
            f.nop()

        with pytest.raises(EngineError):
            build_and_run(build)


class TestMemory:
    def test_load_store_roundtrip(self):
        def build(pb):
            pb.array("data", 8)
            f = pb.function("main")
            f.movi(1, 2)  # index
            f.movi(2, 77)
            f.store(1, 2, imm=0)
            f.load(3, 1, imm=0)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == 77

    def test_bad_load_yields_zero(self):
        # Non-faulting speculative-load semantics (IA-64 ld.s): predicated
        # code may form wild addresses down nullified paths.
        def build(pb):
            f = pb.function("main")
            f.movi(1, -5)
            f.movi(2, 99)
            f.load(2, 1)
            f.ret(ra=2)

        _, result = build_and_run(build)
        assert result.return_value == 0

    def test_bad_store_raises(self):
        def build(pb):
            f = pb.function("main")
            f.movi(1, -5)
            f.movi(2, 1)
            f.store(1, 2)
            f.halt()

        with pytest.raises(EngineError):
            build_and_run(build)

    def test_predicated_store_is_nullified(self):
        def build(pb):
            pb.array("data", 4)
            f = pb.function("main")
            f.movi(1, 0)
            f.movi(2, 55)
            f.store(1, 2, qp=7)  # p7 false
            f.load(3, 1)
            f.ret(ra=3)

        _, result = build_and_run(build)
        assert result.return_value == 0


class TestTracing:
    def test_branch_events_recorded(self):
        recorder = TraceRecorder()

        def build(pb):
            f = pb.function("main")
            f.movi(1, 0)
            f.label("loop")
            f.addi(1, 1, 1)
            f.cmp(Relation.LT, 1, 2, ra=1, imm=3)
            f.br("loop", qp=1)
            f.halt()

        build_and_run(build, recorder=recorder)
        trace = recorder.finish()
        assert trace.num_branches == 3
        assert list(trace.b_taken) == [True, True, False]
        # Guard was defined one instruction before each branch.
        assert all(trace.b_idx - trace.b_guard_def == 1)

    def test_pdef_events_recorded(self):
        recorder = TraceRecorder()

        def build(pb):
            f = pb.function("main")
            f.movi(1, 1)
            f.cmp(Relation.EQ, 1, 2, ra=1, imm=1)
            f.cmp(Relation.EQ, 3, 4, ra=1, imm=0)
            f.halt()

        build_and_run(build, recorder=recorder)
        trace = recorder.finish()
        assert trace.num_pdefs == 2
        assert list(trace.d_value) == [True, False]

    def test_unconditional_jump_not_traced(self):
        recorder = TraceRecorder()

        def build(pb):
            f = pb.function("main")
            f.jmp("end")
            f.label("end")
            f.halt()

        build_and_run(build, recorder=recorder)
        assert recorder.finish().num_branches == 0
