"""Serve-daemon tracing: span trees, prom exposition, operations.

The acceptance assertions from the issue live here:

* one ``POST /v1/simulate`` against a traced daemon with a real pool
  worker yields a single trace of at least four parent-linked spans
  crossing the worker process boundary (request -> queue/execute on the
  server pid; serve-job and below on the worker pid);
* ``GET /metrics?format=prom`` returns a parsable Prometheus text
  exposition with p50/p95/p99 quantile series for every histogram;
* responses stay byte-identical with tracing on — trace ids never leak
  into bodies, and ``traceparent`` is a control field, not part of the
  request key;
* ``/v1/healthz`` carries the build/fleet fields and live queue lanes;
* a request slower than ``--slow-request`` dumps its span tree.
"""

import re
from contextlib import contextmanager

from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.telemetry import new_trace_id
from repro.telemetry.tracing import TraceContext, derive_span_id

TINY = {"workload": "crc", "scale": "tiny"}


@contextmanager
def serve(store, **overrides):
    overrides.setdefault("workers", 0)
    overrides.setdefault("tracing", True)
    config = ServeConfig(port=0, store=str(store), **overrides)
    with ServerThread(config) as handle:
        with ServeClient(port=handle.port, timeout=120.0) as client:
            yield handle, client


def spans_by_name(spans):
    return {record["name"]: record for record in spans}


class TestSpanTree:
    def test_request_produces_linked_tree_across_processes(
        self, tmp_path
    ):
        # A real spawned pool worker: the trace must cross pids.
        with serve(tmp_path / "runs", workers=1) as (_, client):
            status, reply = client.simulate(**TINY)
            assert status == 200 and reply["cached"] is False

            status, listing = client.traces()
            assert status == 200
            assert len(listing["traces"]) == 1
            trace_id = listing["traces"][0]["trace_id"]

            status, body = client.trace(trace_id)
            assert status == 200
            spans = body["spans"]
            named = spans_by_name(spans)

            # The tentpole acceptance bar: >= 4 spans in one trace,
            # parent-linked, crossing the worker boundary.
            assert len(spans) >= 4
            assert {s["trace_id"] for s in spans} == {trace_id}
            linked = [s for s in spans if s["parent_id"]]
            assert len(linked) >= 4
            assert len({s["pid"] for s in spans}) == 2

            root = named["serve.request"]
            assert root["parent_id"] == ""
            by_id = {s["span_id"]: s for s in spans}
            for name in ("serve.queue", "serve.execute"):
                assert named[name]["parent_id"] == root["span_id"]
                assert named[name]["pid"] == root["pid"]
            job = named["serve-job"]
            assert job["parent_id"] == named["serve.execute"]["span_id"]
            assert job["pid"] != root["pid"]
            driver = named["sim.driver"]
            parent = by_id[driver["parent_id"]]
            assert parent["pid"] == driver["pid"]  # worker-side link

    def test_client_traceparent_becomes_the_parent(self, tmp_path):
        trace_id = new_trace_id()
        span_id = derive_span_id(trace_id, "", "client-root", 0)
        header = TraceContext(
            trace_id=trace_id, span_id=span_id
        ).to_traceparent()
        with serve(tmp_path / "runs") as (_, client):
            status, reply = client.simulate(
                **TINY, traceparent=header
            )
            assert status == 200
            status, body = client.trace(trace_id)
            assert status == 200
            root = spans_by_name(body["spans"])["serve.request"]
            assert root["trace_id"] == trace_id
            assert root["parent_id"] == span_id

    def test_bad_traceparent_is_structured_400(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, reply = client.simulate(
                **TINY, traceparent="not-a-traceparent"
            )
            assert status == 400
            assert reply["error"]["code"] == "bad_traceparent"

    def test_traceparent_is_not_part_of_the_request_key(
        self, tmp_path
    ):
        with serve(tmp_path / "runs") as (_, client):
            status, first = client.simulate(**TINY)
            assert status == 200 and first["cached"] is False
            trace_id = new_trace_id()
            header = TraceContext(
                trace_id=trace_id,
                span_id=derive_span_id(trace_id, "", "r", 0),
            ).to_traceparent()
            status, second = client.simulate(
                **TINY, traceparent=header
            )
            assert status == 200
            assert second["cached"] is True  # same key despite header

            # Byte identity modulo the cached flag: no trace ids leak
            # into response bodies.
            a, b = dict(first), dict(second)
            a.pop("cached"), b.pop("cached")
            assert a == b

    def test_trace_store_is_bounded_and_misses_404(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.trace("f" * 32)
            assert status == 404
            assert body["error"]["code"] == "unknown_trace"

    def test_tracing_off_keeps_routes_quiet(self, tmp_path):
        with serve(tmp_path / "runs", tracing=False) as (_, client):
            status, reply = client.simulate(**TINY)
            assert status == 200
            status, listing = client.traces()
            assert status == 200
            assert listing["traces"] == []
            status, health = client.healthz()
            assert health["tracing"] is False

    def test_trace_log_file_carries_every_span(self, tmp_path):
        from repro.telemetry import read_spans

        log = tmp_path / "trace.jsonl"
        with serve(
            tmp_path / "runs", trace_log=str(log)
        ) as (_, client):
            status, _reply = client.simulate(**TINY)
            assert status == 200
            status, listing = client.traces()
            kept = listing["traces"][0]["spans"]
        records = read_spans(log)
        assert len(records) == kept
        assert {r["event"] for r in records} == {"trace-span"}


class TestSlowRequestLog:
    def test_slow_request_dumps_its_tree(self, tmp_path, capfd):
        with serve(
            tmp_path / "runs", slow_request_seconds=0.0
        ) as (_, client):
            status, _reply = client.simulate(**TINY)
            assert status == 200
            _, snapshot = client.metrics()
            assert snapshot["counters"]["serve.slow_requests"] == 1
        err = capfd.readouterr().err
        assert "SLOW simulate request" in err
        assert "serve.request" in err
        assert "critical path:" in err


class TestPromExposition:
    def test_prom_text_parses_with_quantile_series(self, tmp_path):
        with serve(tmp_path / "runs") as (handle, client):
            status, _reply = client.simulate(**TINY)
            assert status == 200

            import http.client as hc

            conn = hc.HTTPConnection("127.0.0.1", handle.port)
            conn.request("GET", "/v1/metrics?format=prom")
            response = conn.getresponse()
            text = response.read().decode()
            content_type = response.getheader("Content-Type")
            conn.close()

        assert response.status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert text.endswith("\n")
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
            r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"
        )
        histograms, quantiles = set(), {}
        for line in text.splitlines():
            if line.startswith("# TYPE") and line.endswith("histogram"):
                histograms.add(line.split()[2])
                continue
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), f"unparsable: {line!r}"
            if "_quantile{" in line:
                name = line.split("_quantile{", 1)[0]
                match = re.search(r'quantile="([^"]+)"', line)
                quantiles.setdefault(name, set()).add(match.group(1))
        assert "serve_request_seconds" in histograms
        for name in histograms:
            assert quantiles[name] == {"0.5", "0.95", "0.99"}
        # Counters carry the _total convention.
        assert re.search(r"^serve_requests_simulate_total \d+$",
                         text, re.M)

    def test_unknown_format_is_structured_400(self, tmp_path):
        with serve(tmp_path / "runs") as (_, client):
            status, body = client.request(
                "GET", "/v1/metrics?format=xml"
            )
            assert status == 400
            assert body["error"]["code"] == "unknown_format"


class TestHealthz:
    def test_build_and_fleet_fields(self, tmp_path):
        import os
        import platform

        with serve(tmp_path / "runs") as (_, client):
            client.simulate(**TINY)
            status, health = client.healthz()
        assert status == 200
        assert health["status"] == "ok"
        assert health["pid"] != os.getpid() or True  # present and int
        assert isinstance(health["pid"], int)
        assert health["python"] == platform.python_version()
        assert health["host"]
        assert health["version"]
        assert health["tracing"] is True
        assert health["busy_workers"] == 0
        assert health["queue_lanes"] == {}
        assert health["uptime_seconds"] >= 0.0
