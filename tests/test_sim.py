"""Unit tests for the simulation driver: SFP squashing, PGU history
injection, per-class statistics, and option handling."""

import pytest

from repro.isa.opcodes import BranchKind
from repro.predictors import (
    PGUConfig,
    SFPConfig,
    make_predictor,
)
from repro.predictors.base import BranchPredictor
from repro.sim import SimOptions, simulate
from repro.trace.container import BranchClass, Trace, TraceMeta


def make_trace(branches, pdefs=(), instructions=1000, workload="synthetic"):
    """Build a trace from tuples.

    branches: (pc, dyn_idx, taken, guard, guard_def_idx, kind, region)
    pdefs: (pc, dyn_idx, value, pred)
    """
    return Trace.from_lists(
        b_pc=[b[0] for b in branches],
        b_idx=[b[1] for b in branches],
        b_taken=[b[2] for b in branches],
        b_guard=[b[3] for b in branches],
        b_guard_def=[b[4] for b in branches],
        b_kind=[int(b[5]) for b in branches],
        b_region=[b[6] for b in branches],
        b_target=[0 for _ in branches],
        d_pc=[d[0] for d in pdefs],
        d_idx=[d[1] for d in pdefs],
        d_value=[d[2] for d in pdefs],
        d_pred=[d[3] for d in pdefs],
        meta=TraceMeta(workload=workload, instructions=instructions),
    )


class CountingPredictor(BranchPredictor):
    """Records every call; predicts a fixed direction."""

    name = "counting"

    def __init__(self, direction=False):
        self.direction = direction
        self.predicts = []
        self.updates = []

    def predict(self, pc, history):
        self.predicts.append((pc, history))
        return self.direction

    def update(self, pc, history, taken):
        self.updates.append((pc, history, taken))


class TestBasicAccounting:
    def test_counts_and_rate(self):
        trace = make_trace(
            [
                (1, 10, True, 1, 0, BranchKind.COND, False),
                (1, 20, False, 1, 11, BranchKind.COND, False),
                (2, 30, True, 2, 21, BranchKind.LOOP, False),
            ]
        )
        predictor = CountingPredictor(direction=False)
        result = simulate(trace, predictor, SimOptions())
        assert result.branches == 3
        assert result.mispredictions == 2  # the two taken branches
        assert result.misprediction_rate == pytest.approx(2 / 3)
        assert result.mpki == pytest.approx(2000 / 1000)
        assert len(predictor.updates) == 3

    def test_per_class_split(self):
        trace = make_trace(
            [
                (1, 10, True, 1, 0, BranchKind.COND, False),
                (2, 20, True, 2, 11, BranchKind.EXIT, True),
                (3, 30, True, 3, 21, BranchKind.LOOP, False),
            ]
        )
        result = simulate(trace, CountingPredictor(False), SimOptions())
        assert result.class_stats(BranchClass.NORMAL).branches == 1
        assert result.class_stats(BranchClass.REGION).branches == 1
        assert result.class_stats(BranchClass.LOOP).branches == 1
        assert result.class_stats(BranchClass.REGION).mispredictions == 1


class TestSFP:
    def trace_with_squashable(self):
        # Branch 1: guard defined long ago, not taken -> squashable.
        # Branch 2: guard defined 1 instr ago -> not squashable at D=4.
        # Branch 3: taken (guard true) -> never squashable.
        return make_trace(
            [
                (1, 100, False, 3, 10, BranchKind.EXIT, True),
                (2, 110, False, 4, 109, BranchKind.EXIT, True),
                (3, 120, True, 5, 30, BranchKind.EXIT, True),
            ]
        )

    def test_squash_only_when_known_false(self):
        trace = self.trace_with_squashable()
        predictor = CountingPredictor(direction=True)  # always wrong on NT
        result = simulate(
            trace, predictor, SimOptions(distance=4, sfp=SFPConfig())
        )
        assert result.squashed == 1
        # Squashed branch bypasses the predictor entirely.
        assert len(predictor.predicts) == 2
        # Branch 2 mispredicted (predicted T, was NT); branch 3 correct.
        assert result.mispredictions == 1

    def test_squash_is_never_wrong(self):
        trace = self.trace_with_squashable()
        result = simulate(
            trace,
            make_predictor("gshare", entries=64),
            SimOptions(distance=4, sfp=SFPConfig()),
        )
        # A squashed branch can never be a misprediction: outcome is NT.
        assert result.squashed == 1
        assert result.class_stats(BranchClass.REGION).squashed == 1

    def test_p0_guard_never_squashes(self):
        trace = make_trace(
            [(1, 100, False, 0, -1, BranchKind.COND, False)]
        )
        result = simulate(
            trace,
            make_predictor("gshare", entries=64),
            SimOptions(sfp=SFPConfig()),
        )
        assert result.squashed == 0

    def test_update_pht_policy(self):
        trace = self.trace_with_squashable()
        predictor = CountingPredictor(direction=True)
        simulate(
            trace, predictor,
            SimOptions(distance=4, sfp=SFPConfig(update_pht=True)),
        )
        assert len(predictor.updates) == 3  # squashed one trains too

    def test_update_history_policy(self):
        # With update_history=False the squashed branch leaves no history
        # bit; probe via the history value the next predict sees.
        trace = make_trace(
            [
                (1, 100, False, 3, 10, BranchKind.EXIT, True),
                (2, 200, True, 0, -1, BranchKind.COND, False),
            ]
        )
        shift = CountingPredictor()
        simulate(
            trace, shift,
            SimOptions(distance=4, sfp=SFPConfig(update_history=True)),
        )
        skip = CountingPredictor()
        simulate(
            trace, skip,
            SimOptions(distance=4, sfp=SFPConfig(update_history=False)),
        )
        assert shift.predicts[0][1] == 0  # branch 2 saw the shifted 0...
        assert shift.predicts == [(2, 0)]
        assert skip.predicts == [(2, 0)]


class TestPGU:
    def test_pdefs_enter_history_in_order(self):
        trace = make_trace(
            [(9, 100, True, 0, -1, BranchKind.COND, False)],
            pdefs=[(1, 10, True, 3), (2, 20, False, 4), (3, 30, True, 5)],
        )
        predictor = CountingPredictor()
        simulate(
            trace, predictor,
            SimOptions(distance=4, pgu=PGUConfig()),
        )
        # History is (oldest..newest) 1,0,1 -> 0b101.
        assert predictor.predicts == [(9, 0b101)]

    def test_delay_hides_late_defines(self):
        trace = make_trace(
            [(9, 100, True, 0, -1, BranchKind.COND, False)],
            pdefs=[(1, 10, True, 3), (2, 98, True, 4)],
        )
        predictor = CountingPredictor()
        simulate(
            trace, predictor,
            SimOptions(distance=4, pgu=PGUConfig()),
        )
        # The define at 98 is only 2 instructions old: not visible.
        assert predictor.predicts == [(9, 0b1)]

    def test_delay_zero_sees_everything(self):
        trace = make_trace(
            [(9, 100, True, 0, -1, BranchKind.COND, False)],
            pdefs=[(1, 10, True, 3), (2, 99, True, 4)],
        )
        predictor = CountingPredictor()
        simulate(
            trace, predictor,
            SimOptions(distance=4, pgu=PGUConfig(delay=0)),
        )
        assert predictor.predicts == [(9, 0b11)]

    def test_guards_only_filter(self):
        trace = make_trace(
            [(9, 100, True, 4, 20, BranchKind.EXIT, True)],
            pdefs=[(1, 10, True, 3), (2, 20, True, 4)],
        )
        predictor = CountingPredictor()
        simulate(
            trace, predictor,
            SimOptions(
                distance=4, pgu=PGUConfig(which="guards_only")
            ),
        )
        # Only p4 ever guards a branch; p3's define is filtered out.
        assert predictor.predicts == [(9, 0b1)]

    def test_branch_outcomes_still_shift(self):
        trace = make_trace(
            [
                (1, 10, True, 0, -1, BranchKind.COND, False),
                (2, 20, False, 0, -1, BranchKind.COND, False),
                (3, 30, True, 0, -1, BranchKind.COND, False),
            ]
        )
        predictor = CountingPredictor()
        simulate(trace, predictor, SimOptions(pgu=PGUConfig()))
        assert predictor.predicts == [(1, 0b0), (2, 0b1), (3, 0b10)]


class TestExtensions:
    def test_squash_known_true_covers_taken_branches(self):
        trace = make_trace(
            [
                (1, 100, True, 3, 10, BranchKind.EXIT, True),   # known T
                (2, 110, False, 4, 20, BranchKind.EXIT, True),  # known F
            ]
        )
        predictor = CountingPredictor(direction=False)
        result = simulate(
            trace, predictor,
            SimOptions(distance=4,
                       sfp=SFPConfig(squash_known_true=True)),
        )
        assert result.squashed == 2
        assert result.mispredictions == 0
        assert predictor.predicts == []

    def test_known_true_not_squashed_by_default(self):
        trace = make_trace(
            [(1, 100, True, 3, 10, BranchKind.EXIT, True)]
        )
        result = simulate(
            trace, CountingPredictor(direction=True),
            SimOptions(distance=4, sfp=SFPConfig()),
        )
        assert result.squashed == 0

    def test_delayed_update_defers_training(self):
        # Two visits to the same pc 2 instructions apart: with delayed
        # updates (distance 10) the second predict sees untrained tables.
        trace = make_trace(
            [
                (7, 100, True, 0, -1, BranchKind.COND, False),
                (7, 102, True, 0, -1, BranchKind.COND, False),
                (7, 200, True, 0, -1, BranchKind.COND, False),
            ]
        )
        immediate = simulate(
            trace, make_predictor("bimodal", entries=16),
            SimOptions(distance=10),
        )
        delayed = simulate(
            trace, make_predictor("bimodal", entries=16),
            SimOptions(distance=10, delayed_update=True),
        )
        # Immediate: branch 2 benefits from branch 1's update.
        # Delayed: branch 2 does not (update lands at idx 110).
        assert immediate.mispredictions <= delayed.mispredictions


class TestHistoryLength:
    def test_history_wraps_at_configured_bits(self):
        branches = [
            (1, 10 * (k + 1), True, 0, -1, BranchKind.COND, False)
            for k in range(6)
        ]
        trace = make_trace(branches)
        predictor = CountingPredictor()
        simulate(trace, predictor, SimOptions(history_bits=3))
        final_history = predictor.predicts[-1][1]
        assert final_history <= 0b111


class TestPerfectAndStatic:
    def test_perfect_never_mispredicts(self):
        trace = make_trace(
            [
                (1, 10, True, 0, -1, BranchKind.COND, False),
                (2, 20, False, 0, -1, BranchKind.COND, False),
            ]
        )
        result = simulate(trace, make_predictor("perfect"), SimOptions())
        assert result.mispredictions == 0

    def test_static_btfn_uses_targets(self):
        trace = Trace.from_lists(
            b_pc=[100, 100],
            b_idx=[10, 20],
            b_taken=[True, False],
            b_guard=[0, 0],
            b_guard_def=[-1, -1],
            b_kind=[int(BranchKind.LOOP), int(BranchKind.COND)],
            b_region=[False, False],
            b_target=[50, 200],  # backward (taken) and forward (NT)
            d_pc=[], d_idx=[], d_value=[], d_pred=[],
            meta=TraceMeta(instructions=100),
        )
        result = simulate(
            trace, make_predictor("static", policy="btfn"), SimOptions()
        )
        assert result.mispredictions == 0
