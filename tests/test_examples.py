"""The examples must keep running: each is executed as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "compare_predictors.py", "compiler_explorer.py",
     "custom_workload.py", "confidence_gating.py"],
)
def test_example_runs(script):
    # compare_predictors takes a workload argument; use a tiny-ish one.
    argv = [sys.executable, str(EXAMPLES / script)]
    if script == "compare_predictors.py":
        argv.append("crc")
    elif script == "confidence_gating.py":
        argv.append("crc")
    completed = subprocess.run(
        argv, capture_output=True, text=True, timeout=600
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()
