"""Unit tests for every predictor and the counter primitive."""

import pytest

from repro.predictors import (
    BimodalPredictor,
    GSelectPredictor,
    GSharePredictor,
    LocalPredictor,
    PGUConfig,
    PerceptronPredictor,
    PerfectPredictor,
    SFPConfig,
    SaturatingCounters,
    StaticPredictor,
    TournamentPredictor,
    available_predictors,
    make_predictor,
)


class TestSaturatingCounters:
    def test_init_weakly_not_taken(self):
        counters = SaturatingCounters(16)
        assert not counters.predict(0)

    def test_training_and_saturation(self):
        counters = SaturatingCounters(16)
        counters.update(3, True)
        assert counters.predict(3)  # 1 -> 2: weakly taken
        for _ in range(10):
            counters.update(3, True)
        counters.update(3, False)
        assert counters.predict(3)  # saturated at 3, one miss keeps taken
        counters.update(3, False)
        assert not counters.predict(3)

    def test_index_masking(self):
        counters = SaturatingCounters(8)
        counters.update(8, True)  # aliases to index 0
        counters.update(8, True)
        assert counters.predict(0)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            SaturatingCounters(10)
        with pytest.raises(ValueError):
            SaturatingCounters(0)
        with pytest.raises(ValueError):
            SaturatingCounters(8, init=5)

    def test_storage_bits(self):
        assert SaturatingCounters(1024).storage_bits == 2048


class TestStatic:
    def test_policies(self):
        taken = StaticPredictor("taken")
        assert taken.predict(10, 0)
        not_taken = StaticPredictor("not_taken")
        assert not not_taken.predict(10, 0)
        btfn = StaticPredictor("btfn")
        btfn.set_target(5)
        assert btfn.predict(10, 0)  # backward: predict taken
        btfn.set_target(20)
        assert not btfn.predict(10, 0)  # forward: not taken

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            StaticPredictor("coin-flip")


class TestBimodal:
    def test_learns_per_pc_bias(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(7, 0, True)
            predictor.update(9, 0, False)
        assert predictor.predict(7, 0)
        assert not predictor.predict(9, 0)

    def test_ignores_history(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(7, 0, True)
        assert predictor.predict(7, 12345) == predictor.predict(7, 0)

    def test_reset(self):
        predictor = BimodalPredictor(entries=64)
        for _ in range(4):
            predictor.update(7, 0, True)
        predictor.reset()
        assert not predictor.predict(7, 0)


class TestGShare:
    def test_learns_history_correlation(self):
        predictor = GSharePredictor(entries=256)
        # Outcome = parity of history bit 0; bimodal cannot learn this,
        # gshare can (different history -> different counter).
        for _ in range(50):
            predictor.update(5, 0b0, True)
            predictor.update(5, 0b1, False)
        assert predictor.predict(5, 0b0)
        assert not predictor.predict(5, 0b1)

    def test_history_mask(self):
        predictor = GSharePredictor(entries=16, history_bits=2)
        assert predictor._index(0, 0b1111) == predictor._index(0, 0b0011)

    def test_storage_accounting(self):
        assert GSharePredictor(entries=4096).storage_bits == 8192


class TestGSelect:
    def test_concatenated_index(self):
        predictor = GSelectPredictor(entries=256, history_bits=4)
        index = predictor._index(pc=0b1111, history=0b1010)
        assert index == (0b1111 << 4) | 0b1010

    def test_rejects_oversized_history(self):
        with pytest.raises(ValueError):
            GSelectPredictor(entries=16, history_bits=10)


class TestLocal:
    def test_learns_short_period_pattern(self):
        # Period-2 pattern T,N,T,N per branch: local history nails it.
        predictor = LocalPredictor(entries=1024, local_entries=64,
                                   history_bits=8)
        outcome = True
        for _ in range(100):
            predictor.update(33, 0, outcome)
            outcome = not outcome
        # After training, prediction should continue the alternation.
        hits = 0
        for _ in range(10):
            predicted = predictor.predict(33, 0)
            if predicted == outcome:
                hits += 1
            predictor.update(33, 0, outcome)
            outcome = not outcome
        assert hits >= 9

    def test_rejects_bad_local_entries(self):
        with pytest.raises(ValueError):
            LocalPredictor(local_entries=100)


class TestTournament:
    def test_chooser_picks_better_component(self):
        predictor = TournamentPredictor(entries=256)
        # Alternating global pattern: gshare (component b) learns it,
        # and the chooser should migrate toward b for this pc.
        history = 0
        outcome = True
        for _ in range(200):
            predictor.update(11, history, outcome)
            history = ((history << 1) | outcome) & 0xFFFFFFFF
            outcome = not outcome
        hits = 0
        for _ in range(20):
            predicted = predictor.predict(11, history)
            hits += predicted == outcome
            predictor.update(11, history, outcome)
            history = ((history << 1) | outcome) & 0xFFFFFFFF
            outcome = not outcome
        assert hits >= 18

    def test_storage_sums_components(self):
        predictor = TournamentPredictor(entries=64)
        assert predictor.storage_bits > 2 * 64


class TestPerceptron:
    def test_learns_single_bit_correlation(self):
        predictor = PerceptronPredictor(entries=64, history_bits=8)
        for _ in range(64):
            predictor.update(3, 0b1, True)
            predictor.update(3, 0b0, False)
        assert predictor.predict(3, 0b1)
        assert not predictor.predict(3, 0b0)

    def test_weights_saturate(self):
        predictor = PerceptronPredictor(entries=4, history_bits=4,
                                        weight_bits=4)
        for _ in range(100):
            predictor.update(0, 0b1111, True)
        limit = predictor.weight_limit
        assert all(abs(w) <= limit for w in predictor.weights[0])

    def test_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(entries=3)


class TestPerfect:
    def test_always_right(self):
        predictor = PerfectPredictor()
        for outcome in (True, False, True, True):
            predictor.set_outcome(outcome)
            assert predictor.predict(0, 0) == outcome


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_predictors():
            predictor = make_predictor(name)
            assert predictor.name

    def test_kwargs_forwarded(self):
        predictor = make_predictor("gshare", entries=128)
        assert predictor.entries == 128

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_predictor("oracle-9000")


class TestMechanismConfigs:
    def test_sfp_describe(self):
        assert "filter-pht" in SFPConfig().describe()
        assert "train-pht" in SFPConfig(update_pht=True).describe()

    def test_pgu_validation(self):
        with pytest.raises(ValueError):
            PGUConfig(which="everything")
        assert "guards_only" in PGUConfig(which="guards_only").describe()
        assert "delay=D" in PGUConfig().describe()
        assert "delay=0" in PGUConfig(delay=0).describe()


class TestTage:
    def make(self):
        from repro.predictors.tage import TagePredictor
        return TagePredictor(base_entries=256, table_entries=64,
                             num_tables=3, min_history=2, max_history=16)

    def test_geometric_history_lengths(self):
        predictor = self.make()
        lengths = predictor.history_lengths
        assert lengths == sorted(lengths)
        assert lengths[0] < lengths[-1]

    def test_base_predictor_without_allocations(self):
        predictor = self.make()
        for _ in range(4):
            predictor.update(5, 0, True)
        assert predictor.predict(5, 0)

    def test_allocates_on_history_correlation(self):
        predictor = self.make()
        # Outcome = bit 0 of history; the base predictor cannot learn
        # this, tagged components can.
        for _ in range(300):
            predictor.update(9, 0b0, False)
            predictor.update(9, 0b1, True)
        assert predictor.predict(9, 0b1)
        assert not predictor.predict(9, 0b0)

    def test_long_history_pattern(self):
        predictor = self.make()
        # Outcome depends on a bit 8 back: needs the longer tables.
        for _ in range(400):
            predictor.update(3, 0b100000000, True)
            predictor.update(3, 0b000000000, False)
        assert predictor.predict(3, 0b100000000)
        assert not predictor.predict(3, 0b000000000)

    def test_reset_restores_fresh_state(self):
        predictor = self.make()
        for _ in range(50):
            predictor.update(7, 0b1, True)
        predictor.reset()
        assert predictor.storage_bits > 0

    def test_fold_utility(self):
        from repro.predictors.tage import _fold
        assert _fold(0, 8) == 0
        assert _fold(0b1111, 2) in range(4)
        assert _fold(123456789, 8) == _fold(123456789, 8)
