"""Experiment harness tests: every experiment runs and its headline
claims hold at tiny scale on a fast subset."""

import pytest

from repro.experiments import EXPERIMENTS, experiment_ids, get_experiment

#: cheap but technique-sensitive subset
SUBSET = ["compress", "grep", "nbody"]
SCALE = "tiny"


def run_fast(exp_id, **kw):
    module = get_experiment(exp_id)
    kwargs = {"scale": SCALE, "workloads": SUBSET}
    code = module.run.__code__
    if "fast" in code.co_varnames[: code.co_argcount]:
        kwargs["fast"] = True
    kwargs.update(kw)
    return module.run(**kwargs)


class TestRegistry:
    def test_all_registered(self):
        assert len(experiment_ids()) == 15
        assert experiment_ids()[0] == "E1"
        assert experiment_ids()[-1] == "E15"

    def test_lookup_case_insensitive(self):
        assert get_experiment("e6").SPEC.id == "E6"
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_specs_complete(self):
        for module in EXPERIMENTS.values():
            spec = module.SPEC
            assert spec.title and spec.paper_artifact and spec.description


class TestEveryExperimentRuns:
    @pytest.mark.parametrize("exp_id", experiment_ids())
    def test_runs_and_formats(self, exp_id):
        result = run_fast(exp_id)
        assert result.rows, f"{exp_id} produced no rows"
        text = result.format()
        assert exp_id in text
        for column in result.columns:
            assert column in text


class TestHeadlineClaims:
    """The paper's qualitative claims, checked on every test run."""

    def test_e1_if_conversion_removes_branches(self):
        result = run_fast("E1")
        for row in result.rows:
            assert row["branch_reduction"] > 0.0
            assert row["instr_overhead"] >= 1.0
            assert row["region_frac"] > 0.0

    def test_e2_bigger_tables_do_not_hurt_much(self):
        result = run_fast("E2")
        mean = result.rows[-1]
        sizes = [c for c in result.columns if c.startswith("gshare_")]
        small, large = mean[sizes[0]], mean[sizes[-1]]
        assert large <= small + 0.01

    def test_e3_coverage_decays_with_distance(self):
        result = run_fast("E3")
        coverage = result.column("squashable")
        assert coverage == sorted(coverage, reverse=True)
        assert coverage[0] > coverage[-1]

    def test_e4_sfp_never_hurts_and_helps_somewhere(self):
        result = run_fast("E4")
        rows = result.rows[:-1]
        for row in rows:
            assert row["sfp_filter"] <= row["base"] + 0.002
        assert any(r["sfp_filter"] < r["base"] - 0.005 for r in rows)

    def test_e5_pgu_helps_on_mean(self):
        result = run_fast("E5")
        mean = result.rows[-1]
        assert mean["pgu_1024"] < mean["base_1024"]

    def test_e6_combined_beats_base_on_mean(self):
        result = run_fast("E6")
        mean = result.rows[-1]
        assert mean["both"] < mean["base"]
        assert mean["improvement"] > 0.05

    def test_e7_region_branches_improve(self):
        result = run_fast("E7")
        improved = sum(
            1 for r in result.rows if r["region_both"] <= r["region_base"]
        )
        assert improved >= len(result.rows) - 1

    def test_e8_benefit_decays_with_distance(self):
        result = run_fast("E8")
        both = result.column("both")
        # Benefit (base - both) shrinks as D grows.
        base = result.column("base")
        benefits = [b - t for b, t in zip(base, both)]
        assert benefits[0] >= benefits[-1]
        coverage = result.column("squash_coverage")
        assert coverage == sorted(coverage, reverse=True)

    def test_e9_techniques_speed_up_geomean(self):
        result = run_fast("E9")
        geomean = result.rows[-1]
        assert geomean["workload"] == "GEOMEAN"
        assert geomean["techniques_speedup"] > geomean["hyper_speedup"] - 0.02

    def test_e10_idealized_pgu_dominates(self):
        result = run_fast("E10")
        by_config = {row["config"]: row["misprediction"]
                     for row in result.rows}
        assert by_config["pgu/delay=0"] <= by_config["pgu/delay=D"]
        assert by_config["pgu/delay=D"] <= by_config["pgu/delay=2D"] + 0.002
        assert by_config["sfp/filter+shift"] <= by_config["none"] + 0.002

    def test_e12_misfetch_rates_bounded_and_speedup_positive(self):
        result = run_fast("E12")
        for row in result.rows:
            for key in ("base_misfetch", "hyper_misfetch",
                        "hyper_both_misfetch"):
                assert 0.0 <= row[key] <= 1.0
            assert row["techniques_speedup"] > 0
        # A bigger BTB never misfetches more on the baseline compile.
        base = result.column("base_misfetch")
        assert base == sorted(base, reverse=True)

    def test_e13_frontend_shows_fetch_win(self):
        result = run_fast("E13")
        geomean = result.rows[-1]
        assert geomean["workload"] == "GEOMEAN"
        # If-conversion improves fetch-limited IPC; techniques add more.
        assert geomean["hyper_ipc"] > geomean["base_ipc"]
        assert geomean["both_speedup"] >= geomean["hyper_speedup"] - 0.02

    def test_e14_confidence_classes(self):
        result = run_fast("E14")
        by_config = {row["config"]: row for row in result.rows}
        # SFP adds perfect-confidence coverage at no accuracy cost.
        assert by_config["plain"]["perfect_cov"] == 0.0
        assert by_config["sfp"]["perfect_cov"] > 0.0
        assert (by_config["sfp"]["trusted_cov"]
                >= by_config["plain"]["trusted_cov"] - 0.01)
        for row in result.rows:
            assert row["high_acc"] >= row["low_acc"]
            assert row["trusted_acc"] >= 0.9

    def test_e15_controlled_knobs(self):
        result = run_fast("E15")
        noise_rows = [r for r in result.rows
                      if r["knob"].startswith("noise=")]
        benefits = [r["benefit"] for r in noise_rows]
        # PGU benefit decays as correlation weakens.
        assert benefits[0] > benefits[-1]
        assert benefits == sorted(benefits, reverse=True)
        spacing_rows = [r for r in result.rows
                        if r["knob"].startswith("spacing=")]
        # SFP coverage grows once the guard clears the pipeline distance.
        coverages = [r["squash_coverage"] for r in spacing_rows]
        assert coverages[-1] > coverages[0]

    def test_e11_history_consumers_gain_more(self):
        result = run_fast("E11")
        rows = {row["predictor"]: row for row in result.rows}
        assert rows["gshare"]["improvement"] >= rows["bimodal"][
            "improvement"
        ] - 0.05
        for row in result.rows:
            assert row["with_techniques"] <= row["base"] + 0.005
