"""Prediction-rate regression goldens.

Everything in this reproduction is deterministic, so exact counts can be
pinned: (gshare-1024 mispredictions plain, mispredictions with both
techniques, squashes, branches) per workload at tiny scale.  Any change
to the compiler, scheduler, workloads or simulation semantics that
shifts these numbers must be deliberate — regenerate with::

    python - <<'PY'
    from repro.workloads import all_workloads
    from repro.sim import simulate, SimOptions
    from repro.predictors import make_predictor, SFPConfig, PGUConfig
    for w in all_workloads():
        t = w.trace("tiny", hyperblocks=True)
        b = simulate(t, make_predictor("gshare", entries=1024),
                     SimOptions())
        x = simulate(t, make_predictor("gshare", entries=1024),
                     SimOptions(sfp=SFPConfig(), pgu=PGUConfig()))
        print(f'    "{w.name}": ({b.mispredictions}, '
              f'{x.mispredictions}, {x.squashed}, {t.num_branches}),')
    PY

(and update CODEGEN_REVISION if the compiler's output changed).
"""

import pytest

from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import get_workload, workload_names

#: (plain mispredictions, both-technique mispredictions, squashes,
#:  dynamic branches) — gshare-1024, D=4, tiny scale, hyperblock compile.
GOLDEN = {
    "qsort": (1018, 743, 192, 4171),
    "compress": (917, 249, 0, 8332),
    "grep": (407, 50, 4253, 10395),
    "life": (59, 19, 864, 2031),
    "dijkstra": (201, 172, 36, 7407),
    "expr": (374, 269, 980, 11557),
    "crc": (302, 336, 2400, 5702),
    "huffman": (3, 3, 1500, 6488),
    "hashlookup": (956, 628, 3541, 11587),
    "lexer": (2633, 1747, 278, 21413),
    "nbody": (95, 63, 540, 1455),
    "mtf": (2634, 2491, 600, 49479),
    "parser": (991, 620, 380, 6442),
    "maze": (12, 12, 0, 1034),
    "bitmix": (43, 43, 260, 619),
}


def test_goldens_cover_whole_suite():
    assert set(GOLDEN) == set(workload_names())


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_rates_match_golden(name):
    trace = get_workload(name).trace("tiny", hyperblocks=True)
    plain = simulate(
        trace, make_predictor("gshare", entries=1024), SimOptions()
    )
    both = simulate(
        trace,
        make_predictor("gshare", entries=1024),
        SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
    )
    expected = GOLDEN[name]
    actual = (
        plain.mispredictions,
        both.mispredictions,
        both.squashed,
        trace.num_branches,
    )
    assert actual == expected, (
        f"{name}: measured {actual}, golden {expected} — if this change "
        "is intentional, regenerate the table (see module docstring)"
    )
