"""Protocol layer: canonicalization, validation, the memoization key.

The contract under test: a request key is a pure function of the
*logical* request — field order, explicitly-spelled defaults, duplicated
or re-ordered sweep axes all collapse to the same key — and the stub it
hashes is shaped exactly like the payload a ``--record``-ed CLI run
writes, minus metrics, so daemon and serial runs share run ids.
"""

import pytest

from repro.runstore.record import RunRecord, request_key
from repro.serve.protocol import (
    MAX_SWEEP_POINTS,
    ProtocolError,
    RequestControls,
    canonicalize,
    job_response,
    parse_controls,
)


def canon(op="simulate", **body):
    return canonicalize(op, body)


class TestSimulateCanonicalization:
    def test_defaults_and_explicit_defaults_share_a_key(self):
        implicit = canon(workload="crc")
        explicit = canon(
            workload="crc", predictor="gshare", entries=4096,
            scale="small", distance=4, sfp=False, pgu=False,
            baseline=False,
        )
        assert implicit.request_key == explicit.request_key
        assert implicit.stub == explicit.stub

    def test_controls_never_change_the_key(self):
        plain = canon(workload="crc")
        steered = canon(workload="crc", priority=0, client="alice",
                        wait=False, timeout=5)
        assert plain.request_key == steered.request_key

    def test_distinct_requests_get_distinct_keys(self):
        base = canon(workload="crc")
        assert canon(workload="qsort").request_key != base.request_key
        assert canon(workload="crc", entries=8192).request_key \
            != base.request_key
        assert canon(workload="crc", sfp=True).request_key \
            != base.request_key
        assert canon(workload="crc", scale="tiny").request_key \
            != base.request_key

    def test_stub_matches_record_payload_minus_metrics(self):
        """The stub must be byte-compatible with RunRecord.payload()."""
        spec = canon(workload="crc", scale="tiny")
        record = RunRecord(
            kind=spec.kind, label=spec.label,
            scale=spec.stub["scale"],
            compile_config=spec.stub["compile_config"],
            matrix=spec.stub["matrix"],
            metrics={"crc.mpki": 1.0},
        )
        payload = record.payload()
        payload.pop("metrics")
        assert payload == spec.stub
        assert record.request_key() == spec.request_key

    def test_matrix_mirrors_the_cli_shape(self):
        spec = canon(workload="crc", sfp=True, pgu=True, distance=8)
        matrix = spec.stub["matrix"]
        assert matrix["workload"] == "crc"
        assert "gshare" in matrix["predictor"]
        assert set(matrix) == {"workload", "predictor", "frontend"}

    def test_baseline_switches_compile_config(self):
        assert canon(workload="crc").stub["compile_config"] \
            == "hyperblock"
        assert canon(workload="crc", baseline=True) \
            .stub["compile_config"] == "baseline"


class TestProfileCanonicalization:
    def test_profile_key_differs_from_simulate(self):
        sim = canon("simulate", workload="crc")
        prof = canon("profile", workload="crc")
        assert sim.request_key != prof.request_key
        assert prof.kind == "profile"
        assert "profile" in prof.stub["matrix"]

    def test_rate_and_seed_are_part_of_the_key(self):
        a = canon("profile", workload="crc", rate=1, seed=0)
        b = canon("profile", workload="crc", rate=2, seed=0)
        c = canon("profile", workload="crc", rate=1, seed=7)
        assert len({a.request_key, b.request_key, c.request_key}) == 3


class TestSweepCanonicalization:
    def test_axis_order_and_duplicates_collapse(self):
        a = canon("sweep", workloads=["qsort", "crc"],
                  predictors=["gshare", "bimodal"])
        b = canon("sweep", workloads=["crc", "qsort", "crc"],
                  predictors=["bimodal", "gshare", "bimodal"])
        assert a.request_key == b.request_key
        assert a.spec == b.spec

    def test_string_and_dict_predictors_are_equivalent(self):
        a = canon("sweep", workloads=["crc"], predictors=["gshare"])
        b = canon("sweep", workloads=["crc"],
                  predictors=[{"name": "gshare", "entries": 4096}])
        assert a.request_key == b.request_key

    def test_grid_cap(self):
        workloads = ["crc", "qsort", "grep", "life"]
        predictors = [
            {"name": "gshare", "entries": 1 << n} for n in range(4, 9)
        ]
        options = [{"distance": d} for d in range(4)]
        assert len(workloads) * len(predictors) * len(options) \
            > MAX_SWEEP_POINTS
        with pytest.raises(ProtocolError) as err:
            canon("sweep", workloads=workloads, predictors=predictors,
                  options=options)
        assert err.value.status == 413
        assert err.value.code == "grid_too_large"

    def test_missing_workloads_rejected(self):
        with pytest.raises(ProtocolError) as err:
            canon("sweep", predictors=["gshare"])
        assert err.value.code == "bad_type"


class TestValidation:
    def test_unknown_workload_is_404(self):
        with pytest.raises(ProtocolError) as err:
            canon(workload="no-such-workload")
        assert err.value.status == 404
        assert err.value.code == "unknown_workload"

    def test_unknown_predictor_is_404(self):
        with pytest.raises(ProtocolError) as err:
            canon(workload="crc", predictor="oracle")
        assert err.value.status == 404
        assert err.value.code == "unknown_predictor"

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError) as err:
            canon(workload="crc", wrokload="crc")
        assert err.value.code == "unknown_field"
        assert "wrokload" in str(err.value)

    def test_bad_types_rejected(self):
        for body in (
            {"workload": 7},
            {"workload": "crc", "entries": "many"},
            {"workload": "crc", "entries": True},
            {"workload": "crc", "sfp": "yes"},
        ):
            with pytest.raises(ProtocolError):
                canonicalize("simulate", body)

    def test_out_of_range_rejected(self):
        with pytest.raises(ProtocolError) as err:
            canon(workload="crc", entries=0)
        assert err.value.code == "out_of_range"

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError):
            canonicalize("simulate", ["crc"])

    def test_unknown_operation_is_404(self):
        with pytest.raises(ProtocolError) as err:
            canonicalize("train", {"workload": "crc"})
        assert err.value.status == 404
        assert err.value.code == "unknown_operation"


class TestControls:
    def test_defaults(self):
        assert parse_controls({}) == RequestControls()

    def test_parsing(self):
        controls = parse_controls(
            {"priority": 1, "client": "ci", "wait": False,
             "timeout": 2.5}
        )
        assert controls == RequestControls(
            priority=1, client="ci", wait=False, timeout=2.5
        )

    def test_priority_range_enforced(self):
        with pytest.raises(ProtocolError):
            parse_controls({"priority": 10})
        with pytest.raises(ProtocolError):
            parse_controls({"priority": -1})

    def test_client_length_capped(self):
        with pytest.raises(ProtocolError):
            parse_controls({"client": "x" * 65})


class TestJobResponse:
    def test_cached_is_the_only_difference(self):
        spec = canon(workload="crc", scale="tiny")
        metrics = {"crc.mpki": 1.25}
        fresh = job_response(spec.stub, metrics, "abc123", cached=False,
                             sim_core="object")
        hit = job_response(spec.stub, metrics, "abc123", cached=True,
                           sim_core="object")
        assert fresh.pop("cached") is False
        assert hit.pop("cached") is True
        assert fresh == hit

    def test_request_key_rides_in_the_body(self):
        spec = canon(workload="crc")
        body = job_response(spec.stub, {}, "abc", cached=False)
        assert body["request_key"] == spec.request_key
        assert body["request_key"] == request_key(spec.stub)
