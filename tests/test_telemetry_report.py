"""Tests for the telemetry report renderer and its CLI surface.

End-to-end contract (the acceptance path): ``repro run e02 --workers N
--metrics out.jsonl`` writes valid JSONL whose final ``metrics``
snapshot carries the merged counters, those counters are identical
between a serial and a multi-worker run, and ``repro telemetry-report``
renders the file into tables.
"""

import json

import pytest

from repro.cli import main
from repro.telemetry import read_events, summarize_events


class TestSummarize:
    def test_empty_stream(self):
        assert summarize_events([]) == "(no telemetry events)"

    def test_counters_gauges_spans_tables(self):
        events = [
            {"event": "span", "name": "sweep", "path": "sweep",
             "depth": 0, "seconds": 0.5},
            {"event": "span", "name": "sweep", "path": "sweep",
             "depth": 0, "seconds": 1.5},
            {"event": "metrics",
             "counters": {"sim.branches": 42, "span.sweep.calls": 2},
             "gauges": {"sweep.workers": 4},
             "histograms": {
                 "sweep.point_seconds": {
                     "buckets": [1.0], "counts": [2, 0],
                     "total": 0.5, "count": 2,
                 }
             }},
        ]
        text = summarize_events(events)
        assert "counters" in text
        assert "sim.branches" in text
        assert "42" in text
        # span.* counters are folded into the spans table, not listed.
        assert "span.sweep.calls" not in text
        assert "sweep.workers" in text
        assert "sweep.point_seconds" in text
        spans_section = text.split("spans")[-1]
        assert "2" in spans_section  # calls
        assert "2.0000" in spans_section  # total_s
        assert "1.5000" in spans_section  # max_s

    def test_last_metrics_snapshot_wins(self):
        events = [
            {"event": "metrics", "counters": {"c": 1}},
            {"event": "metrics", "counters": {"c": 99}},
        ]
        assert "99" in summarize_events(events)


@pytest.fixture()
def run_cli(capsys):
    def invoke(*argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    return invoke


class TestMetricsCli:
    def test_run_alias_and_padded_id(self, run_cli):
        code, out = run_cli(
            "run", "e03", "--scale", "tiny", "--workloads", "crc"
        )
        assert code == 0
        assert "[E3]" in out

    def test_metrics_flag_emits_valid_jsonl(self, run_cli, tmp_path):
        path = tmp_path / "m.jsonl"
        code, _ = run_cli(
            "run", "e02", "--scale", "tiny", "--workloads", "crc,qsort",
            "--fast", "--metrics", str(path),
        )
        assert code == 0
        events = read_events(path)  # raises if any line is invalid
        assert events[-1]["event"] == "metrics"
        counters = events[-1]["counters"]
        assert counters["sim.branches"] > 0
        assert counters["sweep.points_completed"] == 4
        assert any(e["event"] == "span" for e in events)

    def test_serial_and_parallel_metrics_counters_identical(
            self, run_cli, tmp_path):
        serial = tmp_path / "serial.jsonl"
        parallel = tmp_path / "parallel.jsonl"
        args = ("--scale", "tiny", "--workloads", "crc,qsort", "--fast")
        # Warm the trace cache so both runs see identical hit/miss
        # traffic, then compare the full merged counter dicts.
        code, _ = run_cli("run", "e02", *args)
        assert code == 0
        code, _ = run_cli("run", "e02", *args, "--metrics", str(serial))
        assert code == 0
        code, _ = run_cli(
            "run", "e02", *args, "--workers", "4",
            "--metrics", str(parallel),
        )
        assert code == 0
        serial_counters = read_events(serial)[-1]["counters"]
        parallel_counters = read_events(parallel)[-1]["counters"]
        assert serial_counters == parallel_counters
        assert serial_counters["trace_cache.hits"] > 0
        # Warmed cache: no build counter was ever created.
        assert serial_counters.get("trace_cache.builds", 0) == 0

    def test_telemetry_report_renders_tables(self, run_cli, tmp_path):
        path = tmp_path / "m.jsonl"
        code, _ = run_cli(
            "simulate", "crc", "--scale", "tiny", "--sfp",
            "--metrics", str(path),
        )
        assert code == 0
        code, out = run_cli("telemetry-report", str(path))
        assert code == 0
        assert "counters" in out
        assert "sim.branches" in out

    def test_metrics_header_carries_version(self, run_cli, tmp_path):
        from repro import repro_version

        path = tmp_path / "m.jsonl"
        code, _ = run_cli(
            "simulate", "crc", "--scale", "tiny", "--metrics", str(path),
        )
        assert code == 0
        header = read_events(path)[0]
        assert header["event"] == "header"
        assert header["version"] == repro_version()
        assert header["command"] == "simulate"

    def test_telemetry_report_missing_file(self, run_cli, tmp_path):
        code = main(["telemetry-report", str(tmp_path / "ghost.jsonl")])
        assert code == 1

    def test_telemetry_report_all_lines_bad(self, run_cli, capsys,
                                            tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n{truncat\n")
        code = main(["telemetry-report", str(path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "no valid telemetry events" in err

    def test_telemetry_report_skips_corrupted_lines(self, run_cli,
                                                    capsys, tmp_path):
        # A producer died mid-write: valid events, one truncated line,
        # one garbage line.  The report renders from what parsed and
        # warns about what didn't.
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"event": "metrics", "counters": {"sim.branches": 42}}\n'
            '{"event": "metrics", "coun\n'
            "!!garbage!!\n"
        )
        code = main(["telemetry-report", str(path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "sim.branches" in captured.out
        assert "skipped 2 malformed line(s)" in captured.err

    def test_simulate_metrics_snapshot(self, run_cli, tmp_path):
        path = tmp_path / "sim.jsonl"
        code, _ = run_cli(
            "simulate", "crc", "--scale", "tiny", "--metrics", str(path),
        )
        assert code == 0
        snapshot = read_events(path)[-1]
        assert snapshot["event"] == "metrics"
        assert snapshot["counters"]["sim.runs"] == 1
        # JSONL is plain JSON per line — no trailing commas or blobs.
        for line in path.read_text().splitlines():
            json.loads(line)
