"""Unit tests for the minic front end: lexer, parser, sema, reference."""

import pytest

from repro.lang import LexError, ParseError, SemaError, analyze, parse, tokenize
from repro.lang import ast
from repro.lang.lexer import TokenType
from repro.lang.reference import evaluate


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("func main() { return 1 + 2; }")
        kinds = [t.type for t in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert kinds[-1] is TokenType.EOF
        values = [t.value for t in tokens[:-1]]
        assert values == ["func", "main", "(", ")", "{", "return", "1",
                          "+", "2", ";", "}"]

    def test_comments_skipped(self):
        tokens = tokenize("1 // a comment\n2")
        assert [t.value for t in tokens[:-1]] == ["1", "2"]

    def test_line_numbers(self):
        tokens = tokenize("1\n2\n3")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_multichar_operators(self):
        tokens = tokenize("<= >= == != && || << >>")
        assert [t.value for t in tokens[:-1]] == [
            "<=", ">=", "==", "!=", "&&", "||", "<<", ">>"
        ]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_bad_numeric_literal(self):
        with pytest.raises(LexError):
            tokenize("123abc")

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("whilex while")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[1].type is TokenType.KEYWORD


class TestParser:
    def test_precedence(self):
        module = parse("func main() { return 1 + 2 * 3; }")
        ret = module.functions[0].body[0]
        assert isinstance(ret.value, ast.Binary)
        assert ret.value.op == "+"
        assert ret.value.right.op == "*"

    def test_shift_binds_looser_than_add(self):
        module = parse("func main() { return 1 << 2 + 3; }")
        expr = module.functions[0].body[0].value
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_logical_structure(self):
        module = parse("func main() { return 1 && 2 || 3; }")
        expr = module.functions[0].body[0].value
        assert isinstance(expr, ast.Logical) and expr.op == "||"
        assert expr.left.op == "&&"

    def test_else_if_chain(self):
        module = parse(
            "func main() { var x = 1;"
            " if (x) { } else if (x > 1) { } else { x = 2; } return x; }"
        )
        if_stmt = module.functions[0].body[1]
        assert isinstance(if_stmt, ast.If)
        assert isinstance(if_stmt.else_body[0], ast.If)

    def test_for_loop(self):
        module = parse(
            "func main() { var i; var s = 0;"
            " for (i = 0; i < 3; i = i + 1) { s = s + i; } return s; }"
        )
        for_stmt = module.functions[0].body[2]
        assert isinstance(for_stmt, ast.For)
        assert for_stmt.init is not None and for_stmt.step is not None

    def test_var_in_for_clause_rejected(self):
        with pytest.raises(ParseError):
            parse("func main() { for (var i = 0; i < 3; i = i + 1) {} }")

    def test_array_assign_vs_read(self):
        module = parse(
            "global a[4]; func main() { a[1] = 2; return a[1]; }"
        )
        assert isinstance(module.functions[0].body[0], ast.ArrayAssign)

    def test_multiple_var_decls(self):
        module = parse("func main() { var a = 1, b = 2, c; return a + b; }")
        decls = [s for s in module.functions[0].body
                 if isinstance(s, ast.VarDecl)]
        assert [d.name for d in decls] == ["a", "b", "c"]

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("func main() { return 0;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("func main() { return 0 }")

    def test_node_ids_are_stable(self):
        source = "func main() { if (1 < 2) { return 3; } return 4; }"
        ids1 = [s.node_id for s in parse(source).functions[0].body]
        ids2 = [s.node_id for s in parse(source).functions[0].body]
        assert ids1 == ids2

    def test_walk_helpers(self):
        module = parse(
            "func f() { return 0; }"
            "func main() { if (f() == 0 + 1) { return 1; } return 2; }"
        )
        cond = module.functions[1].body[0].cond
        assert ast.contains_call(cond)
        stmts = list(ast.walk_stmts(module.functions[1].body))
        assert any(isinstance(s, ast.Return) for s in stmts)


class TestSema:
    def check(self, source):
        return analyze(parse(source))

    def test_valid_program(self):
        info = self.check(
            "global g[4];"
            "func helper(a, b) { return a + b; }"
            "func main() { var x = helper(1, 2); g[0] = x; return g[0]; }"
        )
        assert info.functions == {"helper": 2, "main": 0}
        assert info.globals == {"g": 4}

    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("func main() { return x; }", "undeclared"),
            ("func main() { x = 1; }", "undeclared"),
            ("func main() { var x; var x; return 0; }", "duplicate"),
            ("func f(a, a) { return 0; } func main() { return 0; }",
             "duplicate"),
            ("func main() { return f(); }", "unknown function"),
            ("func f(a) { return a; } func main() { return f(); }",
             "argument"),
            ("func main() { return g[0]; }", "not a global array"),
            ("global g[4]; func main() { return g; }", "needs an index"),
            ("global g[4]; func main() { g = 1; }", "needs an index"),
            ("func main() { break; }", "outside a loop"),
            ("func main() { continue; }", "outside a loop"),
            ("func f() { return 0; }"
             "func main() { if (1 && f()) { } return 0; }",
             "&&"),
            ("global g[0]; func main() { return 0; }", "positive size"),
            ("global g[4]; global g[4]; func main() { return 0; }",
             "duplicate"),
            ("func f() { return 0; } func f() { return 1; }"
             "func main() { return 0; }", "duplicate"),
            ("func notmain() { return 0; }", "no 'main'"),
            ("func main(a) { return a; }", "no parameters"),
            ("global main[4]; func main() { return 0; }", "collides"),
        ],
    )
    def test_rejections(self, source, fragment):
        with pytest.raises(SemaError) as err:
            self.check(source)
        assert fragment in str(err.value)

    def test_declaration_must_precede_use(self):
        with pytest.raises(SemaError):
            self.check("func main() { x = 1; var x; return x; }")


class TestReference:
    def test_arithmetic(self):
        assert evaluate("func main() { return 7 / 2 + 7 % 2 * 10; }") == 13

    def test_negative_division(self):
        assert evaluate("func main() { return (0-7) / 2; }") == -3
        assert evaluate("func main() { return (0-7) % 2; }") == -1

    def test_division_by_zero_is_zero(self):
        assert evaluate("func main() { var z = 0; return 5 / z + 5 % z; }") == 0

    def test_logical_and_comparisons(self):
        assert evaluate("func main() { return (1 < 2) && (3 != 4); }") == 1
        assert evaluate("func main() { return (1 > 2) || 0; }") == 0
        assert evaluate("func main() { return !5 + !0; }") == 1

    def test_loops_and_break_continue(self):
        source = """
        func main() {
            var i = 0; var s = 0;
            while (i < 10) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                if (i > 7) { break; }
                s = s + i;
            }
            return s;
        }
        """
        assert evaluate(source) == 1 + 3 + 5 + 7

    def test_oob_load_is_zero_store_faults(self):
        assert evaluate(
            "global g[2]; func main() { return g[5] + 1; }"
        ) == 1
        from repro.lang.reference import ReferenceError_
        with pytest.raises(ReferenceError_):
            evaluate("global g[2]; func main() { g[5] = 1; return 0; }")

    def test_recursion(self):
        source = """
        func fact(n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        func main() { return fact(10); }
        """
        assert evaluate(source) == 3628800

    def test_wrapping(self):
        source = "func main() { return 1 << 63; }"
        assert evaluate(source) == -(2**63)
