"""Unit tests for the availability, history and cost models."""

import pytest

from repro.pipeline import (
    AvailabilityModel,
    BTBConfig,
    BranchTargetBuffer,
    CostModel,
    GlobalHistory,
)


class TestAvailability:
    def test_visibility_threshold(self):
        model = AvailabilityModel(distance=8)
        assert model.value_visible(produced_at=10, fetch_at=18)
        assert not model.value_visible(produced_at=10, fetch_at=17)
        assert not model.value_visible(produced_at=-1, fetch_at=100)

    def test_zero_distance_is_perfect_knowledge(self):
        model = AvailabilityModel(distance=0)
        assert model.value_visible(produced_at=10, fetch_at=10)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            AvailabilityModel(distance=-1)

    def test_coverage_keys(self):
        from tests.test_trace import sample_trace

        coverage = AvailabilityModel(4).coverage(sample_trace())
        assert set(coverage) == {
            "distance",
            "guard_known",
            "guard_known_false",
            "region_guard_known",
            "region_guard_known_false",
        }
        assert 0.0 <= coverage["guard_known_false"] <= 1.0


class TestGlobalHistory:
    def test_shift_and_mask(self):
        history = GlobalHistory(4)
        for bit in (True, False, True, True):
            history.shift(bit)
        assert history.value == 0b1011
        history.shift(True)
        assert history.value == 0b0111  # oldest bit fell off

    def test_snapshot_restore(self):
        history = GlobalHistory(8)
        history.shift(True)
        saved = history.snapshot()
        history.shift(False)
        history.restore(saved)
        assert history.value == saved

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)
        with pytest.raises(ValueError):
            GlobalHistory(65)


class TestCostModel:
    def test_cycles_formula(self):
        model = CostModel(fetch_width=4, misprediction_penalty=10)
        assert model.cycles(100, 0) == 25
        assert model.cycles(100, 3) == 55
        assert model.cycles(101, 0) == 26  # ceil division

    def test_ipc_and_speedup(self):
        model = CostModel(fetch_width=4, misprediction_penalty=10)
        assert model.ipc(100, 0) == pytest.approx(4.0)
        # Fewer mispredictions on the same instruction count: speedup > 1.
        assert (
            model.speedup(100, 10, 100, 0) == pytest.approx(125 / 25)
        )

    def test_if_conversion_tradeoff(self):
        # More instructions but fewer mispredictions can still win.
        model = CostModel(fetch_width=6, misprediction_penalty=10)
        base = model.cycles(600, 30)  # 100 + 300 = 400
        hyper = model.cycles(900, 5)  # 150 + 50 = 200
        assert base / hyper == pytest.approx(2.0)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(BTBConfig(sets=4, ways=2))
        assert btb.lookup(100) is None
        btb.insert(100, 555)
        assert btb.lookup(100) == 555
        assert btb.hits == 1 and btb.misses == 1

    def test_update_existing_entry(self):
        btb = BranchTargetBuffer(BTBConfig(sets=4, ways=2))
        btb.insert(100, 1)
        btb.insert(100, 2)
        assert btb.lookup(100) == 2

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(BTBConfig(sets=1, ways=2))
        btb.insert(0, 10)
        btb.insert(1, 11)
        btb.lookup(0)        # 0 becomes MRU
        btb.insert(2, 12)    # evicts 1
        assert btb.lookup(0) == 10
        assert btb.lookup(1) is None
        assert btb.lookup(2) == 12

    def test_set_conflicts_only_within_set(self):
        btb = BranchTargetBuffer(BTBConfig(sets=2, ways=1))
        btb.insert(0, 10)   # set 0
        btb.insert(1, 11)   # set 1
        assert btb.lookup(0) == 10
        assert btb.lookup(1) == 11

    def test_rejects_bad_geometry(self):
        import pytest
        with pytest.raises(ValueError):
            BTBConfig(sets=3, ways=2)
        with pytest.raises(ValueError):
            BTBConfig(sets=4, ways=0)

    def test_misfetch_penalty_in_cost_model(self):
        model = CostModel(fetch_width=4, misprediction_penalty=10,
                          misfetch_penalty=2)
        assert model.cycles(100, 1, 3) == 25 + 10 + 6


class TestFetchSim:
    def _trace_and_flags(self, branches, instructions, correct=None):
        from repro.isa.opcodes import BranchKind
        from repro.sim.driver import BranchFlags
        from repro.trace.container import Trace, TraceMeta
        import numpy as np

        trace = Trace.from_lists(
            b_pc=[b[0] for b in branches],
            b_idx=[b[1] for b in branches],
            b_taken=[b[2] for b in branches],
            b_guard=[0] * len(branches),
            b_guard_def=[-1] * len(branches),
            b_kind=[int(BranchKind.COND)] * len(branches),
            b_region=[False] * len(branches),
            b_target=[0] * len(branches),
            d_pc=[], d_idx=[], d_value=[], d_pred=[],
            meta=TraceMeta(instructions=instructions),
        )
        n = len(branches)
        correct = [True] * n if correct is None else correct
        flags = BranchFlags(
            correct=np.asarray(correct, dtype=bool),
            squashed=np.zeros(n, dtype=bool),
            misfetch=np.zeros(n, dtype=bool),
        )
        return trace, flags

    def test_straight_line_counts_fetch_cycles_only(self):
        from repro.pipeline.fetchsim import FetchModel, simulate_frontend

        trace, flags = self._trace_and_flags([], instructions=60)
        result = simulate_frontend(trace, flags, FetchModel(width=6))
        assert result.cycles == 10
        assert result.ipc == 6.0

    def test_taken_branch_fragments_fetch(self):
        from repro.pipeline.fetchsim import FetchModel, simulate_frontend

        # 1 taken branch at idx 2 splits 12 instructions into 3 + 9:
        # ceil(3/6) + ceil(9/6) = 1 + 2, plus one redirect bubble.
        trace, flags = self._trace_and_flags(
            [(1, 2, True)], instructions=12
        )
        result = simulate_frontend(trace, flags, FetchModel(width=6))
        assert result.fetch_cycles == 3
        assert result.bubble_cycles == 1

    def test_not_taken_correct_does_not_fragment(self):
        from repro.pipeline.fetchsim import FetchModel, simulate_frontend

        trace, flags = self._trace_and_flags(
            [(1, 2, False)], instructions=12
        )
        result = simulate_frontend(trace, flags, FetchModel(width=6))
        assert result.fetch_cycles == 2
        assert result.bubble_cycles == 0

    def test_mispredict_charges_penalty(self):
        from repro.pipeline.fetchsim import FetchModel, simulate_frontend

        trace, flags = self._trace_and_flags(
            [(1, 2, False)], instructions=12, correct=[False]
        )
        result = simulate_frontend(trace, flags, FetchModel(width=6))
        assert result.mispredict_cycles == 10

    def test_flags_length_mismatch_rejected(self):
        import pytest
        from repro.pipeline.fetchsim import FetchModel, simulate_frontend

        trace, _ = self._trace_and_flags([(1, 2, True)], instructions=12)
        _, empty_flags = self._trace_and_flags([], instructions=12)
        with pytest.raises(ValueError):
            simulate_frontend(trace, empty_flags, FetchModel())

    def test_bad_width_rejected(self):
        import pytest
        from repro.pipeline.fetchsim import FetchModel

        with pytest.raises(ValueError):
            FetchModel(width=0)
