"""Unit tests for the compiler: lowering structure, if-conversion modes,
scheduling, register allocation, CFG/dominance, and the pipeline."""

import pytest

from repro.compiler import (
    CompileConfig,
    CompileError,
    ProfileCollector,
    compile_source,
    compile_with_profile,
)
from repro.compiler import config as config_mod
from repro.compiler.cfg import CFG
from repro.compiler.dominance import dominators, immediate_dominators
from repro.compiler.lower import VREG_BASE, PredAllocator
from repro.compiler.regalloc import ALLOCATABLE
from repro.engine import run
from repro.isa.opcodes import BranchKind, Opcode


def compiled_main(source, config=config_mod.BASELINE, profiled=False):
    if profiled:
        compiled = compile_with_profile(source, config)
    else:
        compiled = compile_source(source, config)
    return compiled


class TestLoweringStructure:
    def test_baseline_has_no_predicated_regions(self):
        compiled = compiled_main(
            "func main() { var x = 1;"
            " if (x > 0) { x = 2; } else { x = 3; } return x; }"
        )
        assert compiled.num_regions == 0
        assert all(i.region < 0 for i in compiled.executable.code)

    def test_ladder_mode_emits_multiple_branches_for_and(self):
        ladder = compiled_main(
            "func main() { var x = 5;"
            " if (x > 1 && x < 9) { x = 0; } return x; }"
        )
        simple = compiled_main(
            "func main() { var x = 5;"
            " if (x > 1 && x < 9) { x = 0; } return x; }",
            config_mod.PROFILING,
        )
        def cond_branches(compiled):
            return sum(
                1
                for i in compiled.executable.code
                if i.op is Opcode.BR and i.kind is BranchKind.COND
            )
        assert cond_branches(ladder) == 2
        assert cond_branches(simple) == 1

    def test_full_conversion_removes_branches(self):
        compiled = compiled_main(
            "func main() { var x = 5; var y = 0;"
            " if (x > 3) { y = 1; } else { y = 2; } return y; }",
            config_mod.HYPERBLOCK,
            profiled=True,
        )
        kinds = [
            i.kind for i in compiled.executable.code if i.op is Opcode.BR
        ]
        assert BranchKind.COND not in kinds
        assert compiled.num_regions == 1

    def test_loop_in_arm_forces_side_exit(self):
        compiled = compiled_main(
            """
            func main() {
                var x = 9; var s = 0; var j = 0;
                if (x > 3) {
                    j = 0;
                    while (j < x) { s = s + j; j = j + 1; }
                } else {
                    s = 1;
                }
                return s;
            }
            """,
            config_mod.HYPERBLOCK,
            profiled=True,
        )
        exits = [
            i
            for i in compiled.executable.code
            if i.op is Opcode.BR and i.kind is BranchKind.EXIT
        ]
        assert exits, "expected a region-based side exit around the loop"
        assert all(e.region_based for e in exits)

    def test_predicated_call_marked_region_based(self):
        compiled = compiled_main(
            """
            func f(v) { return v + 1; }
            func main() {
                var x = 4; var s = 0;
                if (x % 2 == 0) { s = f(x); }
                return s;
            }
            """,
            config_mod.HYPERBLOCK,
            profiled=True,
        )
        calls = [
            i for i in compiled.executable.code if i.op is Opcode.CALL
        ]
        predicated = [c for c in calls if c.qp != 0]
        assert predicated and all(c.region_based for c in predicated)

    def test_predicated_return_is_branch_event(self):
        compiled = compiled_main(
            """
            func f(v) {
                if (v < 0) { return 0 - v; }
                return v;
            }
            func main() { return f(0 - 5) + f(3); }
            """,
            config_mod.HYPERBLOCK,
            profiled=True,
        )
        rets = [
            i
            for i in compiled.executable.code
            if i.op is Opcode.RET and i.qp != 0
        ]
        assert rets and all(r.is_branch_event() for r in rets)

    def test_unroll_duplicates_body(self):
        source = (
            "func main() { var i = 0; var s = 0;"
            " while (i < 10) { i = i + 1; s = s + i; } return s; }"
        )
        rolled = compiled_main(
            source, CompileConfig(hyperblocks=True, unroll=1),
            profiled=True,
        )
        unrolled = compiled_main(
            source, CompileConfig(hyperblocks=True, unroll=4),
            profiled=True,
        )
        assert len(unrolled.executable.code) > len(rolled.executable.code)
        assert (
            run(unrolled.executable).return_value
            == run(rolled.executable).return_value
        )

    def test_max_args_enforced(self):
        args = ", ".join(str(k) for k in range(7))
        params = ", ".join(f"p{k}" for k in range(7))
        with pytest.raises(CompileError):
            compile_source(
                f"func f({params}) {{ return 0; }}"
                f"func main() {{ return f({args}); }}"
            )

    def test_cold_arm_becomes_side_exit(self):
        # Arm runs 1 time in 100: profile should push it out of the region.
        source = """
        func main() {
            var i = 0; var s = 0;
            while (i < 200) {
                if (i % 100 == 99) { s = s + 1000; s = s * 2; s = s - 3;
                                     s = s + i; }
                else { s = s + 1; }
                i = i + 1;
            }
            return s;
        }
        """
        compiled = compiled_main(
            source, config_mod.HYPERBLOCK, profiled=True
        )
        exits = [
            i
            for i in compiled.executable.code
            if i.op is Opcode.BR and i.kind is BranchKind.EXIT
        ]
        assert exits


class TestPredAllocator:
    def test_alloc_release_cycle(self):
        allocator = PredAllocator()
        a, b = allocator.alloc_pair()
        assert a != b and a > 0 and b > 0
        allocator.release(a, b)
        # FIFO rotation: the released pair goes to the back of the
        # queue, so the next allocation must NOT reuse it immediately
        # (immediate reuse creates WAR hazards that pin the scheduler).
        c = allocator.alloc()
        assert c not in (a, b)

    def test_rotation_eventually_reuses(self):
        allocator = PredAllocator()
        first = allocator.alloc()
        allocator.release(first)
        seen = {allocator.alloc() for _ in range(62)}
        assert first not in seen
        assert allocator.alloc() == first  # came back around

    def test_exhaustion(self):
        allocator = PredAllocator()
        for _ in range(63):
            allocator.alloc()
        with pytest.raises(CompileError):
            allocator.alloc()


class TestRegalloc:
    def test_many_variables_spill_and_still_work(self):
        count = 70  # more than the 52 allocatable registers
        decls = " ".join(f"var v{k} = {k};" for k in range(count))
        total = " + ".join(f"v{k}" for k in range(count))
        source = f"func main() {{ {decls} return {total}; }}"
        compiled = compile_source(source)
        main = compiled.program.functions["main"]
        assert main.frame_slots > 0, "expected spills"
        assert run(compiled.executable).return_value == sum(range(count))

    def test_spilled_loop_variables(self):
        count = 60
        decls = " ".join(f"var v{k} = 0;" for k in range(count))
        bumps = " ".join(f"v{k} = v{k} + 1;" for k in range(count))
        total = " + ".join(f"v{k}" for k in range(count))
        source = (
            f"func main() {{ {decls} var i = 0;"
            f" while (i < 5) {{ {bumps} i = i + 1; }}"
            f" return {total}; }}"
        )
        compiled = compile_source(source)
        assert run(compiled.executable).return_value == count * 5

    def test_no_vregs_remain(self):
        source = (
            "func main() { var a = 1; var b = 2;"
            " while (a < 50) { a = a + b; } return a; }"
        )
        compiled = compile_source(source)
        for instr in compiled.executable.code:
            for field in ("rd", "ra", "rb"):
                assert getattr(instr, field) < VREG_BASE

    def test_allocatable_pool_respected(self):
        compiled = compile_source(
            "func main() { var a = 1; return a + 2; }"
        )
        for instr in compiled.executable.code:
            written = instr.writes_reg()
            if written > 0 and written < VREG_BASE:
                assert written in ALLOCATABLE or written >= 53


class TestScheduling:
    def _function(self, source, config=None):
        config = config or config_mod.HYPERBLOCK
        compiled = compile_with_profile(source, config)
        return compiled

    def test_hoisting_moves_guard_before_branch_gap(self):
        source = """
        func main() {
            var i = 0; var s = 0;
            while (i < 50) {
                var v = i * 7 % 13;
                s = s + v * 3;
                s = s + v / 2;
                s = s ^ i;
                if (v == 5) { break; }
                i = i + 1;
            }
            return s;
        }
        """
        with_sched = self._function(source)
        without = self._function(
            source,
            CompileConfig(
                hyperblocks=True, schedule_compares=False,
                merge_adjacent_regions=False,
            ),
        )
        def exit_gap(compiled):
            code = compiled.executable.code
            gaps = []
            for pos, instr in enumerate(code):
                if instr.op is Opcode.BR and instr.kind is BranchKind.EXIT:
                    # distance back to the compare defining the guard
                    for back in range(pos - 1, -1, -1):
                        prev = code[back]
                        if prev.op is Opcode.CMP and instr.qp in (
                            prev.pd1, prev.pd2
                        ):
                            gaps.append(pos - back)
                            break
            return max(gaps, default=0)
        assert exit_gap(with_sched) > exit_gap(without)
        assert (
            run(with_sched.executable).return_value
            == run(without.executable).return_value
        )

    def test_merge_regions_unifies_adjacent(self):
        source = """
        func main() {
            var x = 7; var s = 0;
            if (x > 1) { s = s + 1; } else { s = s - 1; }
            if (x > 2) { s = s + 2; } else { s = s - 2; }
            if (x > 3) { s = s + 3; } else { s = s - 3; }
            return s;
        }
        """
        merged = self._function(source)
        assert merged.num_regions == 1

    def test_scheduling_preserves_results_on_workload_style_code(self):
        source = """
        global data[32];
        func main() {
            var i = 0; var s = 0;
            while (i < 32) { data[i] = i * 13 % 7; i = i + 1; }
            i = 0;
            while (i < 32) {
                var v = data[i];
                if (v > 3) { s = s + v; } else { s = s - 1; }
                if (v == 6) { s = s * 2; }
                i = i + 1;
            }
            return s;
        }
        """
        scheduled = self._function(source)
        flat = self._function(
            source,
            CompileConfig(
                hyperblocks=True, schedule_compares=False,
                merge_adjacent_regions=False, unroll=1,
            ),
        )
        assert (
            run(scheduled.executable).return_value
            == run(flat.executable).return_value
        )


class TestCFG:
    def _cfg(self, source):
        compiled = compile_source(source)
        return CFG(compiled.program.functions["main"])

    def test_straight_line_blocks(self):
        # One real block plus the unreachable implicit trailing `ret 0`.
        cfg = self._cfg("func main() { var a = 1; return a; }")
        assert cfg.entry().successors == []
        assert cfg.reachable() == [0]

    def test_if_else_diamond(self):
        cfg = self._cfg(
            "func main() { var a = 1;"
            " if (a > 0) { a = 2; } else { a = 3; } return a; }"
        )
        entry = cfg.entry()
        assert len(entry.successors) == 2
        dom = dominators(cfg)
        for block in cfg.reachable():
            assert entry.index in dom[block]

    def test_loop_back_edge(self):
        cfg = self._cfg(
            "func main() { var i = 0;"
            " while (i < 5) { i = i + 1; } return i; }"
        )
        assert cfg.back_edges(), "expected a loop back edge"

    def test_immediate_dominators(self):
        cfg = self._cfg(
            "func main() { var a = 1;"
            " if (a) { a = 2; } else { a = 3; } return a; }"
        )
        idom = immediate_dominators(cfg)
        assert idom[cfg.entry().index] is None
        for block, parent in idom.items():
            if parent is not None:
                assert parent != block


class TestProfileCollector:
    def test_bias_computation(self):
        profile = ProfileCollector()
        for _ in range(8):
            profile.record_branch(5, True)
        for _ in range(2):
            profile.record_branch(5, False)
        assert profile.executions(5) == 10
        assert profile.taken_rate(5) == pytest.approx(0.8)
        assert profile.cond_true_rate(5) == pytest.approx(0.2)

    def test_unknown_src_id(self):
        profile = ProfileCollector()
        assert profile.taken_rate(99) is None
        assert profile.executions(99) == 0

    def test_profile_changes_decisions(self):
        # A 50/50 hammock should fully convert; make it extreme and fat
        # and the cold arm should leave the region.
        source = """
        func main() {
            var i = 0; var s = 0;
            while (i < 100) {
                if (i % 2 == 0) { s = s + 1; s = s ^ 3; s = s * 5;
                                  s = s - 2; s = s + i; }
                else { s = s - 1; s = s ^ 7; s = s * 3; s = s - i;
                       s = s + 2; }
                i = i + 1;
            }
            return s;
        }
        """
        balanced = compile_with_profile(source, config_mod.HYPERBLOCK)
        assert balanced.num_regions >= 1


class TestGlobalLayout:
    def test_layout_assertion_matches_link(self):
        compiled = compile_source(
            "global a[10]; global b[20];"
            "func main() { a[0] = 1; b[0] = 2; return a[0] + b[0]; }"
        )
        assert compiled.executable.global_base("a") == 0
        assert compiled.executable.global_base("b") == 10
        assert run(compiled.executable).return_value == 3
