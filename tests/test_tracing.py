"""Distributed tracing: sketches, span identity, propagation, rendering.

The contracts under test:

* :class:`QuantileSketch` — quantiles within the gamma relative-error
  bound, deterministic and commutative merges, lossless snapshot
  round-trip (the properties that make registry percentiles safe to
  merge across worker processes);
* trace context — traceparent round-trips, and span ids derived purely
  from (trace, parent, name, seq), so the span *set* of a sweep is a
  function of the work, not of the scheduling;
* the sweep engine — 1-worker and 4-worker runs of the same grid under
  the same root context produce identical span identities (the
  cross-process determinism claim), with every worker span parented
  inside the trace;
* pickling — contexts and collectors cross the
  ``ProcessPoolExecutor`` boundary losslessly;
* rendering — ``repro trace show`` output carries the tree, the
  critical path and per-span self time.
"""

import pickle
import random

import pytest

from repro.predictors import make_predictor
from repro.sim import SimOptions, sweep
from repro.telemetry import (
    MetricsRegistry,
    QuantileSketch,
    SpanCollector,
    child_context,
    critical_path,
    from_traceparent,
    new_trace_id,
    read_spans,
    render_trace,
    render_trace_list,
    trace_span,
    tracing_enabled,
    use_collector,
    use_context,
    use_registry,
    use_tracing,
)
from repro.telemetry.tracing import TraceContext, derive_span_id
from repro.telemetry.traceview import build_tree
from repro.workloads import get_workload


# ---------------------------------------------------------------------------
# QuantileSketch


class TestQuantileSketch:
    def test_empty(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0
        }

    def test_relative_error_bound(self):
        rng = random.Random(7)
        values = [rng.uniform(1e-4, 10.0) for _ in range(5000)]
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = ordered[int(q * (len(ordered) - 1))]
            got = sketch.quantile(q)
            # gamma=1.02 guarantees ~1% relative error; 3% margin
            # covers the rank discretisation at the tails.
            assert got == pytest.approx(exact, rel=0.03)

    def test_merge_equals_single_stream(self):
        rng = random.Random(11)
        values = [rng.expovariate(20.0) for _ in range(2000)]
        whole = QuantileSketch()
        parts = [QuantileSketch() for _ in range(4)]
        for index, value in enumerate(values):
            whole.observe(value)
            parts[index % 4].observe(value)
        merged = QuantileSketch()
        for part in parts:
            merged.merge(part)
        # Bins and counts are integers: exact.  The running total is a
        # float sum, so associativity allows 1-ulp drift.
        assert merged.snapshot()["bins"] == whole.snapshot()["bins"]
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total, rel=1e-12)
        assert merged.percentiles() == whole.percentiles()

    def test_merge_commutative(self):
        a, b = QuantileSketch(), QuantileSketch()
        for value in (0.001, 0.5, 2.0, 0.0):
            a.observe(value)
        for value in (0.25, 7.0, 1e-12):
            b.observe(value)
        ab = QuantileSketch()
        ab.merge(a)
        ab.merge(b)
        ba = QuantileSketch()
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot() == ba.snapshot()

    def test_snapshot_roundtrip(self):
        sketch = QuantileSketch()
        for value in (0.0, 1e-12, 0.003, 0.4, 12.5):
            sketch.observe(value)
        clone = QuantileSketch.from_snapshot(sketch.snapshot())
        assert clone.snapshot() == sketch.snapshot()
        assert clone.count == sketch.count
        assert clone.percentiles() == sketch.percentiles()

    def test_registry_histograms_carry_percentiles(self):
        registry = MetricsRegistry()
        for value in (0.01, 0.02, 0.03, 0.5):
            registry.histogram("latency").observe(value)
        data = registry.snapshot()["histograms"]["latency"]
        assert data["p50"] == pytest.approx(0.02, rel=0.03)
        assert data["p99"] == pytest.approx(0.5, rel=0.03)
        restored = MetricsRegistry.from_snapshot(registry.snapshot())
        assert (restored.snapshot()["histograms"]["latency"]
                == data)

    def test_registry_merge_merges_sketches(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.01, 0.02):
            a.histogram("latency").observe(value)
        for value in (0.03, 0.04):
            b.histogram("latency").observe(value)
        a.merge(b)
        data = a.snapshot()["histograms"]["latency"]
        assert data["count"] == 4
        assert data["p99"] == pytest.approx(0.04, rel=0.03)


# ---------------------------------------------------------------------------
# Trace context and span identity


class TestTraceContext:
    def test_traceparent_roundtrip(self):
        ctx = TraceContext(trace_id=new_trace_id(),
                           span_id=derive_span_id("a" * 32, "", "x", 0))
        parsed = from_traceparent(ctx.to_traceparent())
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize("header", [
        "", "junk", "00-short-abcd-01",
        "00-" + "g" * 32 + "-" + "0" * 16 + "-01",
    ])
    def test_traceparent_rejects_garbage(self, header):
        with pytest.raises(ValueError):
            from_traceparent(header)

    def test_span_ids_are_pure_functions(self):
        trace = new_trace_id()
        a = derive_span_id(trace, "", "root", 0)
        assert a == derive_span_id(trace, "", "root", 0)
        assert a != derive_span_id(trace, "", "root", 1)
        assert a != derive_span_id(trace, "", "other", 0)
        assert a != derive_span_id(new_trace_id(), "", "root", 0)
        assert len(a) == 16

    def test_child_context_derivation(self):
        trace = new_trace_id()
        root = TraceContext(trace_id=trace,
                            span_id=derive_span_id(trace, "", "r", 0))
        child = child_context(root, "step", 3)
        assert child.trace_id == trace
        assert child.parent_id == root.span_id
        assert child.span_id == derive_span_id(
            trace, root.span_id, "step", 3
        )

    def test_trace_span_off_by_default(self):
        assert not tracing_enabled()
        collector = SpanCollector()
        with use_collector(collector):
            with trace_span("noop"):
                pass
        assert len(collector) == 0

    def test_trace_span_records_nested_tree(self):
        collector = SpanCollector()
        with use_tracing(True), use_collector(collector):
            with trace_span("outer", kind="test"):
                with trace_span("inner"):
                    pass
        outer, inner = sorted(
            collector.records, key=lambda r: r["start"]
        )
        assert outer["name"] == "outer"
        assert outer["parent_id"] == ""
        assert outer["attrs"] == {"kind": "test"}
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]
        assert outer["seconds"] >= inner["seconds"] >= 0.0


# ---------------------------------------------------------------------------
# SpanCollector


class TestSpanCollector:
    def _records(self, count=3):
        collector = SpanCollector()
        with use_tracing(True), use_collector(collector):
            with trace_span("root"):
                for index in range(count):
                    with trace_span("step"):
                        pass
        return collector

    def test_merge_and_canonical_order(self):
        a, b = self._records(), self._records()
        merged = SpanCollector()
        merged.merge(a)
        merged.merge(b)
        assert len(merged) == len(a) + len(b)
        other = SpanCollector()
        other.merge(b)
        other.merge(a)
        # canonical() sorts by (trace_id, span_id): merge-order free.
        assert merged.canonical() == other.canonical()

    def test_identity_ignores_timings(self):
        a, b = self._records(), self._records()
        assert a.identity() != b.identity()  # distinct trace ids
        # Same structure under the same root -> same identity.
        trace = new_trace_id()
        root = TraceContext(trace_id=trace,
                            span_id=derive_span_id(trace, "", "r", 0))
        identities = []
        for _ in range(2):
            collector = SpanCollector()
            with use_tracing(True), use_collector(collector), \
                    use_context(root):
                with trace_span("work"):
                    pass
            identities.append(collector.identity())
        assert identities[0] == identities[1]

    def test_pickle_roundtrip(self):
        collector = self._records()
        clone = pickle.loads(pickle.dumps(collector))
        assert clone.canonical() == collector.canonical()
        ctx = TraceContext(
            trace_id=new_trace_id(),
            span_id=derive_span_id("0" * 32, "", "r", 0),
            parent_id="1" * 16,
        )
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_write_and_read_jsonl(self, tmp_path):
        collector = self._records()
        path = tmp_path / "spans.jsonl"
        collector.write_jsonl(path)
        # Appends mixed with foreign lines are tolerated on read.
        with open(path, "a") as handle:
            handle.write('{"event": "metrics"}\n')
            handle.write("not json\n")
        records = read_spans(path)
        assert records == collector.canonical()


# ---------------------------------------------------------------------------
# Sweep propagation: scheduling-invariant span sets


class TestSweepTracing:
    def _run(self, workers):
        traces = {
            name: get_workload(name).trace(scale="tiny")
            for name in ("crc", "qsort")
        }
        factories = {
            "gshare": lambda: make_predictor("gshare", entries=256)
        }
        grid = [SimOptions(), SimOptions(distance=8)]
        trace_id = new_trace_id()
        root = TraceContext(
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, "", "run", 0),
        )
        collector = SpanCollector()
        registry = MetricsRegistry()
        with use_registry(registry), use_tracing(True), \
                use_collector(collector), use_context(root):
            results = sweep(traces, factories, grid, workers=workers)
        return results, collector, registry

    def test_worker_count_does_not_change_span_identity(self):
        results_1, spans_1, registry_1 = self._run(workers=1)
        results_4, spans_4, registry_4 = self._run(workers=4)
        assert [r.mispredictions for r in results_1] == \
            [r.mispredictions for r in results_4]
        # Different roots -> different raw ids, but the *shape* —
        # (parent-name, name, seq-derived ids relative to the root) —
        # must match.  Normalise by stripping the per-run trace id.
        def shape(collector):
            by_id = {r["span_id"]: r for r in collector.records}

            def name_path(record):
                path = [record["name"]]
                parent = by_id.get(record["parent_id"])
                while parent is not None:
                    path.append(parent["name"])
                    parent = by_id.get(parent["parent_id"])
                return tuple(reversed(path))

            return sorted(
                (
                    name_path(r),
                    tuple(sorted(
                        (k, v) for k, v in r["attrs"].items()
                        if k != "workers"  # legitimately differs
                    )),
                )
                for r in collector.records
            )

        assert shape(spans_1) == shape(spans_4)
        # 1 sweep + 4 points + 4 driver spans, all in one trace.
        assert len(spans_1) == 9
        assert len(spans_1.traces()) == 1
        hist_1 = registry_1.snapshot()["histograms"]
        hist_4 = registry_4.snapshot()["histograms"]
        # The parallel path adds queue-wait (no queue exists serially);
        # every serial histogram must appear unchanged in name.
        assert set(hist_1) <= set(hist_4)
        assert "sweep.point_seconds" in hist_1

    def test_same_root_same_workers_identical_identity(self):
        trace_id = new_trace_id()
        root = TraceContext(
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, "", "run", 0),
        )
        traces = {"crc": get_workload("crc").trace(scale="tiny")}
        factories = {
            "gshare": lambda: make_predictor("gshare", entries=256)
        }
        identities = []
        for workers in (1, 2):
            collector = SpanCollector()
            with use_registry(MetricsRegistry()), use_tracing(True), \
                    use_collector(collector), use_context(root):
                sweep(traces, factories, [SimOptions()],
                      workers=workers)
            identities.append(collector.identity())
        # Same root context, same grid: bit-identical span identity
        # regardless of how many processes executed the points.
        assert identities[0] == identities[1]

    def test_worker_spans_report_worker_pids(self):
        import os

        _, spans, _ = self._run(workers=2)
        points = [r for r in spans.records if r["name"] == "sweep-point"]
        assert points and all(
            r["pid"] != os.getpid() for r in points
        )


# ---------------------------------------------------------------------------
# Trace rendering


class TestTraceView:
    def _collect(self):
        collector = SpanCollector()
        with use_tracing(True), use_collector(collector):
            with trace_span("root"):
                with trace_span("fast"):
                    pass
                with trace_span("slow"):
                    with trace_span("leaf"):
                        pass
        return collector.canonical()

    def test_build_tree_and_critical_path(self):
        records = self._collect()
        roots, children = build_tree(records)
        assert [r["name"] for r in roots] == ["root"]
        path = critical_path(roots[0], children)
        assert [r["name"] for r in path] == ["root", "slow", "leaf"]

    def test_render_contains_tree_and_critical_path(self):
        records = self._collect()
        text = render_trace(records)
        assert "root" in text and "leaf" in text
        assert "critical path: root -> slow -> leaf" in text
        assert "self" in text  # per-span self time column
        listing = render_trace_list(records)
        assert records[0]["trace_id"] in listing
        assert "spans=4" in listing

    def test_render_unknown_trace_id(self):
        text = render_trace(self._collect(), trace_id="f" * 32)
        assert "no spans" in text

    def test_orphan_parent_becomes_root(self):
        records = self._collect()
        # Drop the real root: children must still render (as roots).
        orphaned = [r for r in records if r["name"] != "root"]
        roots, _children = build_tree(orphaned)
        assert {r["name"] for r in roots} == {"fast", "slow"}
        assert "critical path" in render_trace(orphaned)
