"""Direct unit tests for the scheduler, peephole optimizer and verifier,
operating on hand-built IR."""

import pytest

from repro.compiler.lower import TEMP_BASE, VREG_BASE
from repro.compiler.optimize import optimize_function
from repro.compiler.schedule import (
    _can_cross,
    hoist_slices,
    merge_regions,
)
from repro.compiler.verify import (
    VerificationError,
    verify_executable,
    verify_function,
)
from repro.isa import (
    BranchKind,
    Instruction,
    Opcode,
    ProgramBuilder,
    Relation,
)
from repro.isa.program import Function


def temp(k):
    return TEMP_BASE + k


def var(k):
    return VREG_BASE + k


class TestCanCross:
    def cmp_on(self, ra, qp=0, pd1=5):
        return Instruction(op=Opcode.CMP, qp=qp, ra=ra, pd1=pd1,
                           crel=Relation.EQ, region=1)

    def test_blocks_source_writer(self):
        cmp = self.cmp_on(ra=var(1))
        writer = Instruction(op=Opcode.ADD, rd=var(1), ra=var(2), rb=-1,
                             imm=1)
        assert not _can_cross(cmp, writer)

    def test_blocks_guard_definer(self):
        cmp = self.cmp_on(ra=var(1), qp=7)
        definer = Instruction(op=Opcode.CMP, ra=var(2), pd1=7,
                              crel=Relation.EQ)
        assert not _can_cross(cmp, definer)

    def test_blocks_reader_of_dest_predicate(self):
        cmp = self.cmp_on(ra=var(1), pd1=5)
        guarded = Instruction(op=Opcode.ADD, qp=5, rd=var(3), ra=var(3),
                              rb=-1, imm=1)
        assert not _can_cross(cmp, guarded)

    def test_allows_independent(self):
        cmp = self.cmp_on(ra=var(1))
        other = Instruction(op=Opcode.ADD, rd=var(9), ra=var(8), rb=-1,
                            imm=1)
        assert _can_cross(cmp, other)

    def test_compare_may_cross_branch_but_var_write_may_not(self):
        branch = Instruction(op=Opcode.BR, qp=3, target=0,
                             kind=BranchKind.EXIT)
        cmp = self.cmp_on(ra=var(1))
        assert _can_cross(cmp, branch)
        var_write = Instruction(op=Opcode.ADD, rd=var(2), ra=var(2),
                                rb=-1, imm=1, region=1)
        assert not _can_cross(var_write, branch)
        temp_write = Instruction(op=Opcode.ADD, rd=temp(2), ra=var(2),
                                 rb=-1, imm=1, region=1)
        assert _can_cross(temp_write, branch)

    def test_load_never_crosses_store(self):
        load = Instruction(op=Opcode.LOAD, rd=temp(1), ra=var(1),
                           region=1)
        store = Instruction(op=Opcode.STORE, ra=var(5), rb=var(6))
        assert not _can_cross(load, store)


def build_function(instrs, labels=None):
    function = Function(name="f")
    function.code = instrs
    function.labels = labels or {}
    return function


class TestMergeRegions:
    def test_adjacent_regions_merge(self):
        code = [
            Instruction(op=Opcode.CMP, ra=var(1), pd1=1, region=1),
            Instruction(op=Opcode.ADD, qp=1, rd=var(2), ra=var(2),
                        rb=-1, imm=1, region=1),
            Instruction(op=Opcode.MOV, rd=var(9), imm=3),  # gap
            Instruction(op=Opcode.CMP, ra=var(1), pd1=2, region=2),
            Instruction(op=Opcode.ADD, qp=2, rd=var(3), ra=var(3),
                        rb=-1, imm=1, region=2),
        ]
        function = build_function(code)
        merge_regions(function)
        assert {i.region for i in code} == {1}

    def test_label_blocks_merge(self):
        code = [
            Instruction(op=Opcode.CMP, ra=var(1), pd1=1, region=1),
            Instruction(op=Opcode.CMP, ra=var(1), pd1=2, region=2),
        ]
        function = build_function(code, labels={"L": 1})
        merge_regions(function)
        assert code[0].region == 1
        assert code[1].region == 2

    def test_loop_branch_blocks_merge(self):
        code = [
            Instruction(op=Opcode.CMP, ra=var(1), pd1=1, region=1),
            Instruction(op=Opcode.BR, qp=1, target=0,
                        kind=BranchKind.LOOP),
            Instruction(op=Opcode.CMP, ra=var(1), pd1=2, region=2),
        ]
        function = build_function(code)
        merge_regions(function)
        assert code[2].region == 2


class TestHoistSlices:
    def test_compare_and_feeding_load_hoist(self):
        # [store][load t][cmp t] with independent filler above: the load
        # and compare should rise above the filler but not above the
        # store (no alias analysis).
        code = [
            Instruction(op=Opcode.STORE, ra=var(1), rb=var(2)),
            Instruction(op=Opcode.ADD, rd=var(3), ra=var(3), rb=-1,
                        imm=1),
            Instruction(op=Opcode.ADD, rd=var(4), ra=var(4), rb=-1,
                        imm=2),
            Instruction(op=Opcode.LOAD, rd=temp(1), ra=var(5), region=1),
            Instruction(op=Opcode.CMP, ra=temp(1), pd1=1, region=1),
        ]
        function = build_function(code)
        hoist_slices(function)
        ops = [i.op for i in function.code]
        assert ops[0] is Opcode.STORE
        assert ops[1] is Opcode.LOAD
        assert ops[2] is Opcode.CMP

    def test_hoist_respects_data_dependence(self):
        code = [
            Instruction(op=Opcode.ADD, rd=var(1), ra=var(1), rb=-1,
                        imm=1),
            Instruction(op=Opcode.CMP, ra=var(1), pd1=1, region=1),
        ]
        function = build_function(code)
        hoist_slices(function)
        assert function.code[0].op is Opcode.ADD

    def test_labels_survive_hoisting(self):
        code = [
            Instruction(op=Opcode.MOV, rd=var(9), imm=0),
            Instruction(op=Opcode.ADD, rd=var(3), ra=var(3), rb=-1,
                        imm=1),
            Instruction(op=Opcode.CMP, ra=var(9), pd1=1, region=1),
        ]
        function = build_function(code, labels={"top": 1})
        hoist_slices(function)
        # The compare may not cross the label at position 1.
        assert function.code[2].op is Opcode.CMP
        assert function.labels["top"] == 1


class TestOptimizer:
    def test_copy_coalescing(self):
        code = [
            Instruction(op=Opcode.ADD, rd=temp(1), ra=var(1), rb=var(2)),
            Instruction(op=Opcode.MOV, rd=var(3), ra=temp(1)),
            Instruction(op=Opcode.RET, ra=var(3)),
        ]
        function = build_function(code)
        optimize_function(function)
        assert len(function.code) == 2
        assert function.code[0].rd == var(3)

    def test_no_coalescing_across_predicates(self):
        code = [
            Instruction(op=Opcode.ADD, rd=temp(1), ra=var(1), rb=var(2)),
            Instruction(op=Opcode.MOV, qp=4, rd=var(3), ra=temp(1)),
            Instruction(op=Opcode.RET, ra=var(3)),
        ]
        function = build_function(code)
        optimize_function(function)
        assert len(function.code) == 3

    def test_no_coalescing_with_second_reader(self):
        code = [
            Instruction(op=Opcode.ADD, rd=temp(1), ra=var(1), rb=var(2)),
            Instruction(op=Opcode.MOV, rd=var(3), ra=temp(1)),
            Instruction(op=Opcode.MOV, rd=var(4), ra=temp(1)),
            Instruction(op=Opcode.RET, ra=var(3)),
        ]
        function = build_function(code)
        optimize_function(function)
        assert len(function.code) == 4

    def test_immediate_folding(self):
        code = [
            Instruction(op=Opcode.MOV, rd=temp(1), imm=42, ra=-1),
            Instruction(op=Opcode.ADD, rd=var(2), ra=var(1), rb=temp(1)),
            Instruction(op=Opcode.RET, ra=var(2)),
        ]
        function = build_function(code)
        optimize_function(function)
        assert len(function.code) == 2
        add = function.code[0]
        assert add.rb == -1 and add.imm == 42

    def test_dead_temp_elimination(self):
        code = [
            Instruction(op=Opcode.MUL, rd=temp(1), ra=var(1), rb=var(1)),
            Instruction(op=Opcode.RET, ra=var(1)),
        ]
        function = build_function(code)
        optimize_function(function)
        assert len(function.code) == 1

    def test_labels_remap_after_deletion(self):
        code = [
            Instruction(op=Opcode.MUL, rd=temp(1), ra=var(1), rb=var(1)),
            Instruction(op=Opcode.ADD, rd=var(1), ra=var(1), rb=-1,
                        imm=1),
            Instruction(op=Opcode.BR, target="top",
                        kind=BranchKind.UNCOND),
        ]
        function = build_function(code, labels={"top": 1})
        optimize_function(function)
        assert function.labels["top"] == 0
        assert function.code[0].op is Opcode.ADD

    def test_stores_and_calls_never_removed(self):
        code = [
            Instruction(op=Opcode.STORE, ra=var(1), rb=var(2)),
            Instruction(op=Opcode.CALL, rd=temp(5), target="g", nargs=0),
            Instruction(op=Opcode.RET, imm=0),
        ]
        function = build_function(code)
        optimize_function(function)
        assert [i.op for i in function.code] == [
            Opcode.STORE, Opcode.CALL, Opcode.RET
        ]


class TestVerifier:
    def test_accepts_valid_program(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 5)
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.br("end", qp=1)
        f.label("end")
        f.halt()
        verify_executable(pb.link())

    def test_rejects_predicate_dest_on_alu(self):
        bad = Function(name="f")
        bad.code = [Instruction(op=Opcode.ADD, rd=1, ra=1, rb=1, pd1=3)]
        with pytest.raises(VerificationError):
            verify_function(bad)

    def test_rejects_unknown_label(self):
        bad = Function(name="f")
        bad.code = [Instruction(op=Opcode.BR, target="ghost")]
        with pytest.raises(VerificationError):
            verify_function(bad)

    def test_rejects_surviving_vreg_after_regalloc(self):
        bad = Function(name="f")
        bad.code = [
            Instruction(op=Opcode.ADD, rd=var(1), ra=1, rb=1)
        ]
        with pytest.raises(VerificationError):
            verify_function(bad, allow_vregs=False)

    def test_rejects_unguarded_region_branch(self):
        bad = Function(name="f")
        bad.code = [
            Instruction(op=Opcode.BR, target=0, qp=0,
                        kind=BranchKind.EXIT, region_based=True)
        ]
        with pytest.raises(VerificationError):
            verify_function(bad)


class TestStaticAnalysis:
    def test_report_on_hyperblock_compile(self):
        from repro.compiler import compile_with_profile
        from repro.compiler import config as config_mod
        from repro.compiler.analysis import analyze_executable

        source = """
        func main() {
            var i = 0; var s = 0;
            while (i < 40) {
                var v = i * 7 % 13;
                if (v > 6) { s = s + v; } else { s = s - 1; }
                if (v == 3) { s = s * 2; }
                if (v == 12) { break; }
                i = i + 1;
            }
            return s;
        }
        """
        compiled = compile_with_profile(source, config_mod.HYPERBLOCK)
        report = analyze_executable(compiled.executable)
        assert report.num_regions >= 1
        assert report.region_branch_sites >= 1
        assert report.mean_region_size > 0
        assert 0.0 < report.summary()["predicated_fraction"] < 1.0
        assert report.mean_guard_distance >= 1.0

    def test_baseline_has_no_regions(self):
        from repro.compiler import compile_source
        from repro.compiler.analysis import analyze_executable

        compiled = compile_source(
            "func main() { var x = 1;"
            " if (x > 0) { x = 2; } return x; }"
        )
        report = analyze_executable(compiled.executable)
        assert report.num_regions == 0
        assert report.region_branch_sites == 0
        assert report.summary()["predicated_fraction"] < 0.5
