"""Tests for the predicate-aware static verifier (``repro.analysis``).

The heart of the file is :class:`TestSeededViolations`: one minimal
program per rule id, each constructed to trigger *exactly* that rule —
the contract the workload-lint CI job relies on.
"""

import pytest

from repro.analysis import (
    RULES,
    FunctionCFG,
    LintReport,
    Severity,
    StaticAnalysisError,
    function_slices,
    lint_executable,
    lint_program,
    solve_forward,
)
from repro.analysis.rules import InitProblem, ReachingPredDefs
from repro.compiler.config import BASELINE, HYPERBLOCK
from repro.isa import (
    BranchKind,
    CmpType,
    Instruction,
    Opcode,
    ProgramBuilder,
    Relation,
)
from repro.isa.registers import ARG_BASE, P_TRUE, R_SP
from repro.workloads import get_workload, workload_names
from repro.workloads.synthetic import make_synthetic


def lint(pb: ProgramBuilder, name: str = "t") -> LintReport:
    return lint_executable(pb.link(), name=name)


def clean_program() -> ProgramBuilder:
    """A small, fully well-formed predicated program.

    The exit guard is the *primary* compare target (PGU sees it), the
    compare sits a full availability distance ahead of the branch (SFP
    can filter it), and the guard value is loop-varying — so the
    predicate-flow rules (RPA012-RPA017) stay silent too.
    """
    pb = ProgramBuilder()
    f = pb.function("main")
    f.movi(1, 3)
    f.label("loop")
    f.subi(1, 1, 1)
    cmp = f.cmp(Relation.LE, 1, 2, ra=1, imm=0)
    cmp.region = 1
    for _ in range(4):
        f.addi(3, 1, 0)
    exit_br = f.emit(
        Instruction(
            op=Opcode.BR,
            qp=1,
            target="done",
            kind=BranchKind.EXIT,
            region=1,
            region_based=True,
        )
    )
    assert exit_br.region_based
    f.br("loop", qp=2)
    f.label("done")
    f.halt()
    return pb


class TestCFG:
    def test_function_slices_cover_the_executable(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.call(1, "g", nargs=0)
        f.halt()
        g = pb.function("g")
        g.ret(imm=7)
        exe = pb.link()
        slices = function_slices(exe)
        assert [s.name for s in slices] == ["main", "g"]
        assert slices[0].start == 0
        assert slices[0].end == slices[1].start
        assert slices[-1].end == len(exe.code)

    def test_blocks_and_edges(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 5)                       # B0
        f.label("loop")
        f.subi(1, 1, 1)                    # B1
        f.cmp(Relation.GT, 1, 2, ra=1, imm=0)
        f.br("loop", qp=1)
        f.halt()                           # B2
        exe = pb.link()
        cfg = FunctionCFG(exe, function_slices(exe)[0])
        assert len(cfg.blocks) == 3
        # B0 -> B1; B1 -> {B1 (taken), B2 (fall through)}; B2 exits.
        assert cfg.blocks[0].successors == [1]
        assert sorted(cfg.blocks[1].successors) == [1, 2]
        assert cfg.blocks[2].successors == []
        assert cfg.reachable() == {0, 1, 2}
        assert cfg.fall_off_blocks() == []

    def test_always_taken_branch_has_no_fallthrough_edge(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.jmp("end")
        f.movi(1, 1)
        f.label("end")
        f.halt()
        exe = pb.link()
        cfg = FunctionCFG(exe, function_slices(exe)[0])
        block = cfg.block_at(0)
        assert [cfg.blocks[s].start for s in block.successors] == [2]

    def test_reverse_postorder_starts_at_entry(self):
        pb = clean_program()
        exe = pb.link()
        cfg = FunctionCFG(exe, function_slices(exe)[0])
        order = cfg.reverse_postorder()
        assert order[0] == 0
        assert set(order) == cfg.reachable()


class TestDataflow:
    def _cfg(self, pb):
        exe = pb.link()
        return exe, FunctionCFG(exe, function_slices(exe)[0])

    def test_boundary_includes_params_sp_and_zero(self):
        pb = ProgramBuilder()
        pb.function("main").halt()
        g = pb.function("g", nparams=2)
        g.ret(imm=0)
        exe = pb.link()
        slice_g = function_slices(exe)[1]
        gprs, preds = InitProblem(slice_g).boundary()
        assert (gprs >> 0) & 1
        assert (gprs >> R_SP) & 1
        assert (gprs >> ARG_BASE) & 1
        assert (gprs >> (ARG_BASE + 1)) & 1
        assert not (gprs >> (ARG_BASE + 2)) & 1
        assert (preds >> P_TRUE) & 1

    def test_defs_in_both_arms_reach_the_join(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 1, 2, ra=0, imm=0)
        f.movi(5, 1, qp=1)   # then-arm define of r5
        f.movi(5, 2, qp=2)   # else-arm define of r5
        f.addi(6, 5, 0)      # read r5: initialized on the single path
        f.halt()
        report = lint(pb)
        assert "RPA001" not in report.rule_ids()

    def test_loop_carried_def_does_not_cover_the_zero_trip_path(self):
        # r9 is only written inside the loop body; the path that never
        # enters the loop reaches the read with r9 undefined.
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 0)
        f.label("head")
        f.cmp(Relation.LT, 1, 2, ra=1, imm=3)
        f.br("done", qp=2)
        f.movi(9, 42)
        f.addi(1, 1, 1)
        f.br("head")
        f.label("done")
        f.addi(3, 9, 0)      # read of r9
        f.halt()
        report = lint(pb)
        assert [d.rule_id for d in report.errors] == ["RPA001"]
        assert "r9" in report.errors[0].message

    def test_reaching_defs_strong_vs_weak_update(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 1, 2, ra=0, imm=0)                 # pos 0
        f.cmp(Relation.NE, 1, -1, ra=0, imm=0,
              ctype=CmpType.AND, qp=2)                        # pos 1: weak
        f.cmp(Relation.EQ, 1, -1, ra=0, imm=0,
              ctype=CmpType.UNC, qp=2)                        # pos 2: strong
        f.halt()
        exe, cfg = self._cfg(pb)
        problem = ReachingPredDefs()
        in_states = solve_forward(cfg, problem)
        state = in_states[0]
        code = exe.code
        for pos in range(0, 2):
            state = problem.transfer(state, pos, code[pos])
        # After the weak and/or-type compare both defines reach.
        assert state[1] == frozenset({0, 1})
        state = problem.transfer(state, 2, code[2])
        # The unc compare writes unconditionally: old defines are killed.
        assert state[1] == frozenset({2})


def _single_rule(pb, rule_id, severity):
    report = lint(pb)
    assert report.rule_ids() == [rule_id], report.render()
    fired = report.by_severity(severity)
    assert fired and all(d.rule_id == rule_id for d in fired)
    return report


class TestSeededViolations:
    """One minimal fixture per rule id, firing exactly that rule."""

    def test_rpa001_undefined_gpr(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.addi(1, 2, 1)       # r2 never written
        f.halt()
        report = _single_rule(pb, "RPA001", Severity.ERROR)
        assert "r2" in report.errors[0].message

    def test_rpa002_undefined_predicate_guard(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 5, qp=3)    # p3 has no defining compare
        f.halt()
        report = _single_rule(pb, "RPA002", Severity.ERROR)
        assert "p3" in report.errors[0].message

    def test_rpa002_and_type_compare_reads_its_target(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.NE, 1, -1, ra=0, imm=0, ctype=CmpType.AND)
        f.halt()
        _single_rule(pb, "RPA002", Severity.ERROR)

    def test_rpa003_region_based_branch_without_region(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.LT, 1, 2, ra=0, imm=0)
        f.emit(
            Instruction(
                op=Opcode.BR,
                qp=1,
                target="out",
                kind=BranchKind.EXIT,
                region=-1,
                region_based=True,
            )
        )
        f.label("out")
        f.halt()
        _single_rule(pb, "RPA003", Severity.ERROR)

    def test_rpa004_unguarded_region_branch(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.emit(
            Instruction(
                op=Opcode.BR,
                qp=P_TRUE,
                target="out",
                kind=BranchKind.EXIT,
                region=1,
                region_based=True,
            )
        )
        f.label("out")
        f.halt()
        _single_rule(pb, "RPA004", Severity.ERROR)

    def test_rpa004_guard_defined_outside_region(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.LT, 1, 2, ra=0, imm=0)  # region -1
        f.emit(
            Instruction(
                op=Opcode.BR,
                qp=1,
                target="out",
                kind=BranchKind.EXIT,
                region=1,
                region_based=True,
            )
        )
        f.label("out")
        f.halt()
        report = _single_rule(pb, "RPA004", Severity.ERROR)
        assert "not inside its own region" in report.errors[0].message

    def test_rpa005_non_contiguous_region_ids(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 1, 2, ra=0, imm=0).region = 1
        f.cmp(Relation.EQ, 3, 4, ra=0, imm=0).region = 3
        f.halt()
        report = _single_rule(pb, "RPA005", Severity.INFO)
        assert "missing [2]" in report.diagnostics[0].message

    def test_rpa006_pd1_equals_pd2(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 3, 3, ra=0, imm=0)
        f.halt()
        _single_rule(pb, "RPA006", Severity.ERROR)

    def test_rpa006_compare_targets_p0(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 0, -1, ra=0, imm=0)
        f.halt()
        report = _single_rule(pb, "RPA006", Severity.ERROR)
        assert "p0" in report.errors[0].message

    def test_rpa006_complement_without_primary(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.emit(
            Instruction(op=Opcode.CMP, ra=0, imm=0, pd1=-1, pd2=3)
        )
        f.halt()
        _single_rule(pb, "RPA006", Severity.ERROR)

    def test_rpa006_compare_writes_nothing(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.emit(
            Instruction(op=Opcode.CMP, ra=0, imm=0, pd1=-1, pd2=-1)
        )
        f.halt()
        _single_rule(pb, "RPA006", Severity.ERROR)

    def test_rpa007_unreachable_code(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.jmp("end")
        f.movi(1, 1)          # unreachable
        f.label("end")
        f.halt()
        _single_rule(pb, "RPA007", Severity.WARNING)

    def test_rpa007_trailing_safety_ret_is_exempt(self):
        pb = ProgramBuilder()
        pb.function("main").halt()
        g = pb.function("g")
        g.ret(imm=1)
        g.ret(imm=0)          # the compiler's unreachable safety net
        report = lint(pb)
        assert "RPA007" not in report.rule_ids()

    def test_rpa008_fall_off_function_end(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 1)          # no halt/ret
        report = _single_rule(pb, "RPA008", Severity.ERROR)
        assert "fall" in report.errors[0].message

    def test_rpa008_empty_function(self):
        pb = ProgramBuilder()
        pb.function("main").halt()
        pb.function("empty")
        report = lint(pb)
        assert report.rule_ids() == ["RPA008"]

    def test_rpa009_call_arity_mismatch(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.call(1, "g", nargs=0)
        f.halt()
        g = pb.function("g", nparams=1)
        g.ret(imm=0)
        report = _single_rule(pb, "RPA009", Severity.ERROR)
        assert "1 parameter" in report.errors[0].message

    def test_rpa010_branch_escapes_function(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 1, 2, ra=0, imm=0)
        f.emit(
            Instruction(
                op=Opcode.BR, qp=1, target=5, kind=BranchKind.COND
            )
        )
        f.halt()              # main is [0, 3); target 5 lands inside g
        g = pb.function("g")
        g.nop()
        g.nop()
        g.nop()
        g.ret(imm=0)
        _single_rule(pb, "RPA010", Severity.ERROR)

    def test_rpa011_predicated_halt(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.cmp(Relation.EQ, 1, 2, ra=0, imm=0)
        f.emit(Instruction(op=Opcode.HALT, qp=1))
        _single_rule(pb, "RPA011", Severity.WARNING)


class TestReportAndVerifyHook:
    def test_clean_program_is_clean(self):
        report = lint(clean_program())
        assert report.diagnostics == []
        assert not report.has_errors
        assert report.counts() == {"info": 0, "warning": 0, "error": 0}

    def test_link_verify_raises_on_errors(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.addi(1, 2, 1)
        f.halt()
        with pytest.raises(StaticAnalysisError) as excinfo:
            pb.link(verify=True)
        assert "RPA001" in str(excinfo.value)
        assert excinfo.value.report.has_errors

    def test_link_verify_passes_clean_program(self):
        exe = clean_program().link(verify=True)
        assert len(exe.code) > 0

    def test_lint_program_convenience(self):
        report = lint_program(clean_program().program, name="clean")
        assert report.program == "clean"
        assert not report.has_errors

    def test_diagnostic_rendering_has_location_and_instruction(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 5, qp=3)
        f.halt()
        report = lint(pb, name="prog")
        text = report.errors[0].render()
        assert text.startswith("prog:main:0: error RPA002")
        assert "mov r1 = 5" in text

    def test_report_json_shape(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        f.movi(1, 5, qp=3)
        f.halt()
        payload = lint(pb, name="prog").to_dict()
        assert payload["program"] == "prog"
        assert payload["counts"]["error"] == 1
        entry = payload["diagnostics"][0]
        assert entry["rule"] == "RPA002"
        assert entry["location"] == "prog:main:0"
        assert "instruction" in entry

    def test_unregistered_rule_id_rejected(self):
        report = LintReport(program="x")
        with pytest.raises(KeyError):
            report.add("RPA999", "main", 0, 0, "nope")

    def test_rule_catalogue_is_stable(self):
        assert sorted(RULES) == [f"RPA{i:03d}" for i in range(1, 18)]
        for rule in RULES.values():
            assert rule.title and rule.rationale


class TestWorkloadSweep:
    """Every bundled workload and synthetic program lints clean.

    This is the acceptance criterion for the analyzer: the compiler must
    never emit code that trips an error-severity rule.
    """

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize(
        "config", [BASELINE, HYPERBLOCK], ids=["baseline", "hyper"]
    )
    def test_bundled_workloads_have_no_errors(self, name, config):
        compiled = get_workload(name).compile("tiny", config)
        report = lint_executable(compiled.executable, name=name)
        assert not report.has_errors, report.render(Severity.ERROR)
        assert not report.warnings, report.render(Severity.WARNING)

    @pytest.mark.parametrize(
        "bias,noise,spacing", [(50, 0, 0), (50, 20, 4), (80, 10, 9)]
    )
    def test_synthetic_programs_have_no_errors(self, bias, noise, spacing):
        workload = make_synthetic(bias=bias, noise=noise, spacing=spacing)
        compiled = workload.compile("tiny", HYPERBLOCK)
        report = lint_executable(compiled.executable, name=workload.name)
        assert not report.has_errors, report.render(Severity.ERROR)


class TestBuilderRegionValidation:
    def test_region_based_branch_requires_region(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        with pytest.raises(ValueError, match="region >= 0"):
            f.br("x", qp=1, kind=BranchKind.EXIT, region_based=True)

    def test_region_based_branch_with_region_is_fine(self):
        pb = ProgramBuilder()
        f = pb.function("main")
        instr = f.br(
            "x", qp=1, kind=BranchKind.EXIT, region=2, region_based=True
        )
        assert instr.region == 2
