"""Concurrency tests for the on-disk trace cache.

N processes hammering ``get_or_build`` on one key must perform exactly
one build (the per-key file lock serialises the miss path) and every
process must load bit-identical bytes.  A truncated cache file must be
treated as a miss, not a crash.
"""

import multiprocessing
import os
import time

import numpy as np

from repro.trace import Trace, TraceCache, TraceMeta


def _tiny_trace(salt: int = 0) -> Trace:
    return Trace.from_lists(
        b_pc=[1, 2, 3 + salt],
        b_idx=[10, 20, 30],
        b_taken=[True, False, True],
        b_guard=[0, 1, 2],
        b_guard_def=[-1, 5, 15],
        b_kind=[0, 0, 1],
        b_region=[False, True, False],
        b_target=[4, 8, -1],
        d_pc=[0, 2],
        d_idx=[5, 15],
        d_value=[True, False],
        d_pred=[1, 2],
        meta=TraceMeta(workload="tiny", scale="t", instructions=40 + salt),
    )


def _race_build(args):
    """One contender: build-on-miss with a build log for counting."""
    cache_dir, key, log_path = args
    cache = TraceCache(cache_dir)

    def builder():
        # Widen the race window: without locking, several processes
        # would reach here together.
        time.sleep(0.2)
        with open(log_path, "a") as log:
            log.write(f"{os.getpid()}\n")
        return _tiny_trace()

    trace = cache.get_or_build(key, builder)
    return trace.b_pc.tobytes(), trace.meta.instructions, cache.stats()


def _put_tiny(cache_dir, key):
    TraceCache(cache_dir).put(key, _tiny_trace())


class TestConcurrentBuild:
    def test_exactly_one_build_across_processes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        log_path = tmp_path / "builds.log"
        key = "race-key"
        n = 4
        ctx = multiprocessing.get_context()
        with ctx.Pool(n) as pool:
            loads = pool.map(
                _race_build, [(cache_dir, key, log_path)] * n
            )
        builds = log_path.read_text().splitlines()
        assert len(builds) == 1, f"expected one build, saw {builds}"
        # The caches' own counters agree: across all contenders exactly
        # one builder ran, and every process missed its first probe
        # (the key did not exist when the race started).
        assert sum(stats["builds"] for *_, stats in loads) == 1
        assert all(stats["misses"] == 1 for *_, stats in loads)
        reference = _tiny_trace()
        for b_pc_bytes, instructions, _ in loads:
            assert b_pc_bytes == reference.b_pc.tobytes()
            assert instructions == reference.meta.instructions

    def test_concurrent_puts_never_corrupt(self, tmp_path):
        """Unique temp names: racing writers still publish a whole file."""
        cache = TraceCache(tmp_path / "cache")
        key = "clobber"
        procs = [
            multiprocessing.Process(
                target=_put_tiny, args=(cache.directory, key)
            )
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        cache.put(key, _tiny_trace())
        for proc in procs:
            proc.join()
        loaded = cache.get(key)
        assert loaded is not None
        assert np.array_equal(loaded.b_pc, _tiny_trace().b_pc)
        # No temp droppings left behind.
        leftovers = [
            p for p in (tmp_path / "cache").iterdir()
            if ".tmp-" in p.name
        ]
        assert leftovers == []


class TestInstanceCounters:
    def test_miss_build_hit_sequence(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        assert cache.stats() == {"hits": 0, "misses": 0, "builds": 0}
        cache.get_or_build("k", _tiny_trace)
        assert cache.stats() == {"hits": 0, "misses": 1, "builds": 1}
        cache.get_or_build("k", _tiny_trace)
        assert cache.stats() == {"hits": 1, "misses": 1, "builds": 1}
        assert cache.get("nope") is None
        assert cache.stats() == {"hits": 1, "misses": 2, "builds": 1}

    def test_counters_mirrored_into_telemetry(self, tmp_path):
        from repro import telemetry

        registry = telemetry.MetricsRegistry()
        with telemetry.use_registry(registry):
            cache = TraceCache(tmp_path / "cache")
            cache.get_or_build("k", _tiny_trace)
            cache.get_or_build("k", _tiny_trace)
        counters = registry.snapshot()["counters"]
        assert counters["trace_cache.misses"] == 1
        assert counters["trace_cache.builds"] == 1
        assert counters["trace_cache.hits"] == 1
        assert "trace_cache.build_seconds" in registry.histograms
        assert "trace_cache.lock_wait_seconds" in registry.histograms


class TestCorruptionHandling:
    def test_truncated_file_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        key = "truncated"
        cache.put(key, _tiny_trace())
        path = cache.key_path(key)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get(key) is None
        # ... and the miss path rebuilds cleanly.
        rebuilt = cache.get_or_build(key, _tiny_trace)
        assert np.array_equal(rebuilt.b_pc, _tiny_trace().b_pc)
        assert cache.get(key) is not None

    def test_garbage_file_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        key = "garbage"
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.key_path(key).write_bytes(b"not an npz at all")
        assert cache.get(key) is None

    def test_clear_removes_locks_too(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        cache.get_or_build("a", _tiny_trace)
        cache.get_or_build("b", _tiny_trace)
        assert cache.clear() == 2
        assert list(cache.directory.iterdir()) == []
