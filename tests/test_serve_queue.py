"""Job queue semantics: priority bands, client fairness, backpressure.

All tests drive the queue from a single event loop via ``asyncio.run``;
``get`` never blocks in these scenarios because every pop follows a put.
"""

import asyncio

import pytest

from repro.serve.jobqueue import (
    CANCELLED,
    QUEUED,
    Job,
    JobQueue,
    QueueFull,
)
from repro.serve.protocol import RequestControls, canonicalize


def make_job(queue, client="c1", priority=5, entries=4096):
    # Distinct entries give distinct request keys, like real traffic.
    spec = canonicalize(
        "simulate", {"workload": "crc", "entries": entries}
    )
    return Job(
        id=queue.next_id(), spec=spec,
        controls=RequestControls(priority=priority, client=client),
        client=client,
    )


def drain(queue, count):
    async def run():
        return [await queue.get() for _ in range(count)]

    return asyncio.run(run())


def test_fifo_within_one_client():
    async def run():
        queue = JobQueue()
        jobs = [make_job(queue, entries=1 << n) for n in range(3)]
        for job in jobs:
            queue.put(job)
        return [await queue.get() for _ in jobs], jobs

    popped, jobs = asyncio.run(run())
    assert [j.id for j in popped] == [j.id for j in jobs]


def test_lower_priority_band_drains_first():
    async def run():
        queue = JobQueue()
        low = make_job(queue, priority=9, entries=16)
        urgent = make_job(queue, priority=0, entries=32)
        mid = make_job(queue, priority=5, entries=64)
        for job in (low, urgent, mid):
            queue.put(job)
        return [await queue.get() for _ in range(3)]

    popped = asyncio.run(run())
    assert [j.controls.priority for j in popped] == [0, 5, 9]


def test_round_robin_between_clients_in_a_band():
    """A flooding client waits behind one job per competitor, not none."""

    async def run():
        queue = JobQueue()
        flood = [
            make_job(queue, client="flood", entries=1 << n)
            for n in range(4, 8)
        ]
        single = make_job(queue, client="single", entries=1 << 10)
        for job in flood:
            queue.put(job)
        queue.put(single)
        return [await queue.get() for _ in range(5)]

    popped = asyncio.run(run())
    order = [j.client for j in popped]
    # One flood job is served first (it was there first), then the
    # single-job client gets its turn, then the rest of the flood.
    assert order == ["flood", "single", "flood", "flood", "flood"]


def test_depth_limit_raises_queue_full():
    async def run():
        queue = JobQueue(max_depth=2)
        queue.put(make_job(queue, entries=16))
        queue.put(make_job(queue, entries=32))
        assert queue.depth == 2
        with pytest.raises(QueueFull):
            queue.put(make_job(queue, entries=64))
        # Draining one readmits one.
        await queue.get()
        queue.put(make_job(queue, entries=64))
        assert queue.depth == 2

    asyncio.run(run())


def test_cancelled_jobs_are_skipped_and_freed():
    async def run():
        queue = JobQueue(max_depth=2)
        victim = make_job(queue, entries=16)
        survivor = make_job(queue, entries=32)
        queue.put(victim)
        queue.put(survivor)
        assert queue.cancel(victim)
        # Cancel frees the admission slot immediately...
        assert queue.depth == 1
        queue.put(make_job(queue, entries=64))
        # ...and the dispatcher never sees the victim.
        first = await queue.get()
        assert first.id == survivor.id
        assert victim.state == CANCELLED
        assert victim.done_event.is_set()

    asyncio.run(run())


def test_cancel_only_applies_to_queued_jobs():
    async def run():
        queue = JobQueue()
        job = make_job(queue)
        queue.put(job)
        popped = await queue.get()
        popped.state = "running"
        assert not queue.cancel(popped)
        assert popped.state == "running"

    asyncio.run(run())


def test_get_waits_for_a_put():
    async def run():
        queue = JobQueue()
        job = make_job(queue)

        async def producer():
            await asyncio.sleep(0.01)
            queue.put(job)

        asyncio.ensure_future(producer())
        popped = await asyncio.wait_for(queue.get(), timeout=5.0)
        assert popped.id == job.id

    asyncio.run(run())


def test_job_describe_shape():
    queue = JobQueue()
    job = make_job(queue)
    body = job.describe()
    assert body["job_id"] == job.id
    assert body["state"] == QUEUED
    assert body["op"] == "simulate"
    assert body["request_key"] == job.spec.request_key
    assert "result" not in body


def test_max_depth_validation():
    with pytest.raises(ValueError):
        JobQueue(max_depth=0)
