"""Pickle-roundtrip coverage for every executor-transported payload.

The parallel sweep ships predictors, options and traces across process
boundaries and returns :class:`~repro.sim.driver.SimResult` objects
back.  Any unpicklable attribute (a lambda, a file handle, a local
class) would break the executor at runtime — this module catches such
breakage at the unit level, for every predictor in the registry.
"""

import pickle

import numpy as np
import pytest

from repro.pipeline.btb import BTBConfig
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.predictors.registry import available_predictors
from repro.sim import SimOptions, simulate
from repro.trace import Trace, TraceMeta
from repro.workloads import get_workload


def _roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


#: A deterministic little (pc, history, taken) stimulus stream.
_STIMULUS = [
    ((17 * i) & 0xFFFF, (31 * i) & 0xFFFFFFFF, (i * i) % 3 == 1)
    for i in range(200)
]


@pytest.mark.parametrize("name", available_predictors())
class TestPredictorRoundtrip:
    def test_fresh_instance_roundtrips(self, name):
        predictor = make_predictor(name)
        clone = _roundtrip(predictor)
        assert clone.name == predictor.name
        assert clone.storage_bits == predictor.storage_bits

    def test_clone_behaves_identically(self, name):
        predictor = make_predictor(name)
        # Train a little first so the roundtrip carries real state.
        for pc, history, taken in _STIMULUS[:100]:
            predictor.predict(pc, history)
            predictor.update(pc, history, taken)
        clone = _roundtrip(predictor)
        original_predictions = []
        clone_predictions = []
        for pc, history, taken in _STIMULUS[100:]:
            original_predictions.append(predictor.predict(pc, history))
            predictor.update(pc, history, taken)
            clone_predictions.append(clone.predict(pc, history))
            clone.update(pc, history, taken)
        assert original_predictions == clone_predictions


class TestOptionsRoundtrip:
    @pytest.mark.parametrize(
        "options",
        [
            SimOptions(),
            SimOptions(distance=16, history_bits=8),
            SimOptions(sfp=SFPConfig(update_pht=True)),
            SimOptions(pgu=PGUConfig(which="guards_only", delay=2)),
            SimOptions(
                sfp=SFPConfig(squash_known_true=True),
                pgu=PGUConfig(),
                btb=BTBConfig(),
                delayed_update=True,
                record_flags=True,
            ),
        ],
    )
    def test_options_roundtrip(self, options):
        clone = _roundtrip(options)
        assert clone == options
        assert clone.describe() == options.describe()


class TestTraceRoundtrip:
    def test_synthetic_trace(self):
        trace = Trace.from_lists(
            b_pc=[1, 2],
            b_idx=[3, 9],
            b_taken=[True, False],
            b_guard=[0, 2],
            b_guard_def=[-1, 4],
            b_kind=[0, 1],
            b_region=[False, True],
            b_target=[5, -1],
            d_pc=[0],
            d_idx=[4],
            d_value=[False],
            d_pred=[2],
            meta=TraceMeta(workload="w", scale="tiny", instructions=12),
        )
        clone = _roundtrip(trace)
        for attr in ("b_pc", "b_idx", "b_taken", "b_guard", "b_guard_def",
                     "b_kind", "b_region", "b_target", "d_pc", "d_idx",
                     "d_value", "d_pred"):
            original = getattr(trace, attr)
            copied = getattr(clone, attr)
            assert original.dtype == copied.dtype
            assert np.array_equal(original, copied)
        assert clone.meta == trace.meta

    def test_real_trace_simulates_identically(self):
        trace = get_workload("crc").trace(scale="tiny")
        clone = _roundtrip(trace)
        before = simulate(trace, make_predictor("gshare", entries=256))
        after = simulate(clone, make_predictor("gshare", entries=256))
        assert before.mispredictions == after.mispredictions
        assert before.branches == after.branches


class TestResultRoundtrip:
    def test_result_with_flags(self):
        trace = get_workload("crc").trace(scale="tiny")
        result = simulate(
            trace,
            make_predictor("gshare", entries=256),
            SimOptions(sfp=SFPConfig(), record_flags=True),
        )
        clone = _roundtrip(result)
        assert clone.mispredictions == result.mispredictions
        assert clone.squashed == result.squashed
        assert clone.misprediction_rate == result.misprediction_rate
        assert clone.per_class.keys() == result.per_class.keys()
        for cls, stats in result.per_class.items():
            assert clone.per_class[cls].branches == stats.branches
            assert (
                clone.per_class[cls].mispredictions
                == stats.mispredictions
            )
        assert np.array_equal(clone.flags.correct, result.flags.correct)
        assert np.array_equal(clone.flags.squashed, result.flags.squashed)
        assert np.array_equal(clone.flags.misfetch, result.flags.misfetch)
