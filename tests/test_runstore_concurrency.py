"""Concurrent-writer safety for the run-history store.

The daemon turns the store into a shared result cache: several
processes (pool workers of one daemon, or several daemons pointed at
one store) can finish the *same* memoized job at the same moment and
publish records with the same run id.  ``RunStore.add`` must make that
race benign:

* ``if_exists="skip"``  — first writer wins, exactly one file;
* ``if_exists="replace"`` — last writer wins, exactly one file;
* ``if_exists="append"`` — the historical default keeps every copy.
"""

import multiprocessing

import pytest

from repro.runstore import IF_EXISTS, RunRecord, RunStore, utc_timestamp


def make_record(epoch=1000.0, mpki=1.5):
    record = RunRecord(
        kind="simulate", label="crc", scale="tiny",
        metrics={"crc.mpki": mpki},
    )
    record.timestamp = utc_timestamp(epoch)
    record.git = {"sha": "f" * 40, "dirty": False}
    return record.seal()


def _race_writer(root, policy, barrier, epoch):
    """Child-process body: publish one record, synchronized start."""
    record = make_record(epoch=epoch)
    store = RunStore(root)
    barrier.wait()
    for _ in range(20):
        store.add(record, if_exists=policy)


class TestPolicies:
    def test_append_keeps_every_copy(self, tmp_path):
        store = RunStore(tmp_path)
        a, b = make_record(epoch=1000.0), make_record(epoch=2000.0)
        assert a.run_id == b.run_id
        store.add(a)
        store.add(b)
        assert len(store.paths_for(a.run_id)) == 2

    def test_skip_is_first_writer_wins(self, tmp_path):
        store = RunStore(tmp_path)
        first = make_record(epoch=1000.0)
        later = make_record(epoch=2000.0)
        path = store.add(first, if_exists="skip")
        again = store.add(later, if_exists="skip")
        assert again == path  # the existing file, nothing written
        assert len(store.paths_for(first.run_id)) == 1
        assert store.find(first.run_id).timestamp == first.timestamp

    def test_replace_is_last_writer_wins(self, tmp_path):
        store = RunStore(tmp_path)
        first = make_record(epoch=1000.0)
        later = make_record(epoch=2000.0)
        store.add(first, if_exists="replace")
        store.add(later, if_exists="replace")
        assert len(store.paths_for(first.run_id)) == 1
        assert store.find(first.run_id).timestamp == later.timestamp

    def test_policies_only_collapse_identical_content(self, tmp_path):
        store = RunStore(tmp_path)
        a = make_record(mpki=1.5)
        b = make_record(mpki=1.6)
        assert a.run_id != b.run_id
        store.add(a, if_exists="skip")
        store.add(b, if_exists="skip")
        assert len(store.paths()) == 2

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="if_exists"):
            RunStore(tmp_path).add(make_record(), if_exists="upsert")
        assert set(IF_EXISTS) == {"append", "skip", "replace"}

    def test_lookup_helpers(self, tmp_path):
        store = RunStore(tmp_path)
        record = make_record()
        assert not store.contains(record.run_id)
        assert store.find(record.run_id) is None
        store.add(record)
        assert store.contains(record.run_id)
        assert store.find(record.run_id).run_id == record.run_id


class TestTwoProcessRace:
    """The satellite's acceptance test: two real processes racing."""

    @pytest.mark.parametrize("policy", ["skip", "replace"])
    def test_racing_writers_leave_exactly_one_record(
        self, tmp_path, policy
    ):
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        writers = [
            context.Process(
                target=_race_writer,
                args=(str(tmp_path), policy, barrier, epoch),
            )
            for epoch in (1000.0, 2000.0)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=120.0)
            assert process.exitcode == 0
        store = RunStore(tmp_path)
        run_id = make_record().run_id
        paths = store.paths_for(run_id)
        assert len(paths) == 1
        # The surviving file is valid and complete (no torn writes).
        assert store.find(run_id).metrics == {"crc.mpki": 1.5}

    def test_racing_append_writers_keep_both(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        barrier = context.Barrier(2)
        writers = [
            context.Process(
                target=_race_writer,
                args=(str(tmp_path), "append", barrier, epoch),
            )
            for epoch in (1000.0, 2000.0)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join(timeout=120.0)
            assert process.exitcode == 0
        store = RunStore(tmp_path)
        # 20 adds per writer, two distinct timestamps -> two files
        # (same-name appends atomically overwrite identical content).
        assert len(store.paths_for(make_record().run_id)) == 2
        for record in store.records():
            assert record.metrics == {"crc.mpki": 1.5}
