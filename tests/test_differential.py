"""Differential tests: reference interpreter vs baseline compile vs
hyperblock compile (several configurations) must all agree.

This is the reproduction's strongest correctness net: if-conversion,
scheduling, unrolling and register allocation may rearrange anything,
but results must be bit-identical.
"""

import pytest

from tests.progen import generate_program
from repro.compiler import CompileConfig, compile_source, compile_with_profile
from repro.compiler import config as config_mod
from repro.engine import run
from repro.lang.reference import evaluate

#: Hyperblock variants the differential suite exercises.
VARIANTS = {
    "hyperblock": config_mod.HYPERBLOCK,
    "no-schedule": CompileConfig(
        hyperblocks=True, schedule_compares=False,
        merge_adjacent_regions=False,
    ),
    "no-unroll": CompileConfig(hyperblocks=True, unroll=1),
    "unroll4": CompileConfig(hyperblocks=True, unroll=4),
    "aggressive": CompileConfig(
        hyperblocks=True, max_arm_stmts=40, max_region_stmts=80,
        cold_threshold=0.0, tiny_arm_stmts=40,
    ),
    "timid": CompileConfig(
        hyperblocks=True, max_arm_stmts=2, max_region_stmts=3,
        cold_threshold=0.4,
    ),
    "no-peephole": CompileConfig(hyperblocks=True, peephole=False),
}


def all_results(source: str):
    expected = evaluate(source, max_steps=20_000_000)
    results = {"reference": expected}
    baseline = compile_source(source, config_mod.BASELINE)
    results["baseline"] = run(
        baseline.executable, max_instructions=20_000_000
    ).return_value
    results["profiling-style"] = run(
        compile_source(source, config_mod.PROFILING).executable,
        max_instructions=20_000_000,
    ).return_value
    for name, config in VARIANTS.items():
        compiled = compile_with_profile(
            source, config, max_instructions=20_000_000
        )
        results[name] = run(
            compiled.executable, max_instructions=20_000_000
        ).return_value
    return results


def assert_all_agree(source: str):
    results = all_results(source)
    reference = results["reference"]
    mismatches = {
        name: value for name, value in results.items() if value != reference
    }
    assert not mismatches, (
        f"configs disagree with reference ({reference}): {mismatches}\n"
        f"--- source ---\n{source}"
    )


class TestHandWritten:
    def test_nested_if_else(self):
        assert_all_agree(
            """
            func main() {
                var total = 0;
                var i = 0;
                while (i < 50) {
                    if (i % 3 == 0) {
                        if (i % 2 == 0) { total = total + i; }
                        else { total = total - 1; }
                    } else if (i % 7 == 0) {
                        total = total * 2;
                    }
                    i = i + 1;
                }
                return total;
            }
            """
        )

    def test_breaks_in_converted_arms(self):
        assert_all_agree(
            """
            func main() {
                var i = 0; var s = 0;
                while (i < 100) {
                    i = i + 1;
                    s = s + i;
                    if (s > 300) { break; }
                    if (i % 11 == 0) { continue; }
                    s = s + 1;
                }
                return s * 10 + i;
            }
            """
        )

    def test_returns_in_converted_arms(self):
        assert_all_agree(
            """
            func pick(v) {
                if (v < 0) { return 0 - v; }
                if (v % 2 == 0) { return v / 2; }
                return v * 3 + 1;
            }
            func main() {
                var i = 0 - 20; var s = 0;
                while (i < 20) { s = s + pick(i); i = i + 1; }
                return s;
            }
            """
        )

    def test_calls_in_predicated_arms(self):
        assert_all_agree(
            """
            global log[64];
            func bump(i, v) { log[i % 64] = v; return v + 1; }
            func main() {
                var i = 0; var s = 0;
                while (i < 60) {
                    if (i % 5 == 0) { s = bump(i, s); }
                    else { s = s + 2; }
                    i = i + 1;
                }
                return s + log[0] + log[5];
            }
            """
        )

    def test_logical_ops_both_modes(self):
        assert_all_agree(
            """
            func main() {
                var i = 0; var hits = 0;
                while (i < 200) {
                    if (i % 3 == 0 && i % 5 == 0) { hits = hits + 100; }
                    if (i % 7 == 0 || i % 11 == 0) { hits = hits + 1; }
                    if (!(i % 2 == 0) && (i > 50 || i < 10)) {
                        hits = hits + 3;
                    }
                    i = i + 1;
                }
                return hits;
            }
            """
        )

    def test_division_corner_cases(self):
        assert_all_agree(
            """
            func main() {
                var s = 0; var i = 0 - 10;
                while (i < 10) {
                    s = s + 100 / i + 100 % i;
                    i = i + 1;
                }
                return s;
            }
            """
        )

    def test_guarded_oob_loads(self):
        assert_all_agree(
            """
            global data[8];
            func main() {
                var i = 0; var s = 0;
                while (i < 8) { data[i] = i * i; i = i + 1; }
                i = 0 - 4;
                while (i < 12) {
                    if (i >= 0 && data[i] > 5) { s = s + data[i]; }
                    i = i + 1;
                }
                return s;
            }
            """
        )

    def test_deeply_nested_regions(self):
        assert_all_agree(
            """
            func main() {
                var i = 0; var s = 0;
                while (i < 64) {
                    if (i % 2 == 0) {
                        if (i % 4 == 0) {
                            if (i % 8 == 0) { s = s + 8; }
                            else { s = s + 4; }
                        } else {
                            s = s + 2;
                        }
                    } else {
                        s = s + 1;
                    }
                    i = i + 1;
                }
                return s;
            }
            """
        )

    def test_loop_inside_if_arm_blocks_conversion(self):
        assert_all_agree(
            """
            func main() {
                var i = 0; var s = 0; var j = 0;
                while (i < 20) {
                    if (i % 4 == 1) {
                        j = 0;
                        while (j < i) { s = s + j; j = j + 1; }
                    } else {
                        s = s + 1;
                    }
                    i = i + 1;
                }
                return s;
            }
            """
        )


@pytest.mark.parametrize("seed", range(60))
def test_random_programs(seed):
    assert_all_agree(generate_program(seed))


class TestProgenProperties:
    def test_deterministic(self):
        assert generate_program(123) == generate_program(123)
        assert generate_program(123) != generate_program(124)

    def test_generated_programs_are_valid(self):
        from repro.lang import analyze, parse
        for seed in range(10):
            module = parse(generate_program(seed))
            analyze(module)
