"""Unit tests for trace containers, masks, and the disk cache."""

import numpy as np
import pytest

from repro.isa.opcodes import BranchKind
from repro.trace import Trace, TraceCache, TraceMeta, TraceRecorder
from repro.trace.container import BranchClass


def sample_trace():
    recorder = TraceRecorder()
    recorder.record_branch(10, 100, True, 1, 90, int(BranchKind.COND),
                           False, 50)
    recorder.record_branch(20, 200, False, 2, 150, int(BranchKind.EXIT),
                           True, 60)
    recorder.record_branch(30, 300, True, 0, -1, int(BranchKind.LOOP),
                           False, 5)
    recorder.record_pdef(5, 90, True, 1)
    recorder.record_pdef(6, 150, False, 2)
    return recorder.finish(
        TraceMeta(workload="demo", scale="tiny", instructions=400,
                  return_value=7)
    )


class TestContainer:
    def test_counts(self):
        trace = sample_trace()
        assert trace.num_branches == 3
        assert trace.num_pdefs == 2
        assert trace.taken_rate() == pytest.approx(2 / 3)

    def test_branch_classes(self):
        classes = sample_trace().branch_classes()
        assert list(classes) == [
            BranchClass.NORMAL, BranchClass.REGION, BranchClass.LOOP
        ]

    def test_guard_known_false_requires_all_conditions(self):
        trace = sample_trace()
        mask = trace.guard_known_false(10)
        # Branch 0: taken -> no. Branch 1: NT, guard!=p0, distance 50 -> yes.
        # Branch 2: guard p0 -> no.
        assert list(mask) == [False, True, False]

    def test_distance_threshold(self):
        trace = sample_trace()
        assert list(trace.guard_known(10)) == [True, True, False]
        assert list(trace.guard_known(51)) == [False, False, False]

    def test_summary_fields(self):
        summary = sample_trace().summary()
        assert summary["branches"] == 3
        assert summary["region_fraction"] == pytest.approx(1 / 3)
        assert summary["pdefs_per_100_instrs"] == pytest.approx(0.5)

    def test_empty_trace(self):
        trace = TraceRecorder().finish(TraceMeta())
        assert trace.num_branches == 0
        assert trace.taken_rate() == 0.0
        assert trace.summary()["region_fraction"] == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.meta.workload == "demo"
        assert loaded.meta.instructions == 400
        assert loaded.meta.return_value == 7
        np.testing.assert_array_equal(loaded.b_pc, trace.b_pc)
        np.testing.assert_array_equal(loaded.b_taken, trace.b_taken)
        np.testing.assert_array_equal(loaded.d_idx, trace.d_idx)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.get("key1") is None
        built = []

        def builder():
            built.append(1)
            return sample_trace()

        first = cache.get_or_build("key1", builder)
        second = cache.get_or_build("key1", builder)
        assert built == [1]  # second call hit the cache
        assert second.num_branches == first.num_branches

    def test_keys_are_isolated(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("a", sample_trace())
        assert cache.get("b") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.key_path("bad")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz")
        assert cache.get("bad") is None
        assert not path.exists()  # cleaned up

    def test_clear(self, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("a", sample_trace())
        cache.put("b", sample_trace())
        assert cache.clear() == 2
        assert cache.get("a") is None
