"""Confidence and hotspots: the diagnostic views an architect uses.

Part 1 — which static branches hurt, and does the predicate machinery
fix *those* sites or different ones?
Part 2 — how much of the prediction stream could a pipeline-gating
consumer trust, with and without the squash filter's perfect class?

Run:  python examples/confidence_gating.py [workload]
"""

import sys

from repro.predictors import (
    ConfidenceEstimator,
    PGUConfig,
    SFPConfig,
    make_predictor,
)
from repro.sim import SimOptions, simulate_with_confidence, top_hotspots
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "parser"
    workload = get_workload(name)
    trace = workload.trace(scale="small", hyperblocks=True)
    from repro.compiler.config import HYPERBLOCK

    compiled = workload.compile("small", HYPERBLOCK)
    code = compiled.executable.code

    print(f"=== {name}: top mispredicting sites (gshare-1024) ===")
    plain = SimOptions()
    both = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())
    before = top_hotspots(
        trace, make_predictor("gshare", entries=1024), plain, limit=5
    )
    after = {
        s.pc: s
        for s in top_hotspots(
            trace, make_predictor("gshare", entries=1024), both, limit=1000
        )
    }
    from repro.isa.printer import format_instruction

    print(f"{'pc':>6s} {'misp(plain)':>11s} {'misp(both)':>10s} "
          f"{'sq(both)':>8s}  site")
    for site in before:
        treated = after.get(site.pc)
        print(f"{site.pc:>6d} {site.mispredictions:>11d} "
              f"{treated.mispredictions if treated else 0:>10d} "
              f"{treated.squashed if treated else 0:>8d}  "
              f"{format_instruction(code[site.pc])}")

    print(f"\n=== {name}: confidence classes (JRS threshold 8) ===")
    print(f"{'config':8s} {'perfect':>8s} {'high':>6s} {'high-acc':>8s} "
          f"{'trusted':>8s} {'trust-acc':>9s}")
    for label, options in (("plain", plain), ("sfp", SimOptions(
            sfp=SFPConfig())), ("both", both)):
        result = simulate_with_confidence(
            trace,
            make_predictor("gshare", entries=1024),
            ConfidenceEstimator(entries=1024, threshold=8),
            options,
        )
        print(f"{label:8s} {result.perfect_coverage:8.4f} "
              f"{result.high_coverage:6.4f} {result.high_accuracy:8.4f} "
              f"{result.trusted_coverage:8.4f} "
              f"{result.trusted_accuracy:9.4f}")


if __name__ == "__main__":
    main()
