"""Quickstart: the whole pipeline in ~40 lines.

Compile a small predicated program, trace it, and measure how the
paper's two mechanisms (squash false-path filter, predicate global
update) change branch prediction.

Run:  python examples/quickstart.py
"""

from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import get_workload


def main() -> None:
    # 1. Pick a workload and get its hyperblock (if-converted) trace.
    #    The first call compiles + executes + caches; repeats are instant.
    workload = get_workload("compress")
    trace = workload.trace(scale="small", hyperblocks=True)
    print(f"workload : {workload.name} — {workload.description}")
    print(f"trace    : {trace.meta.instructions} instructions, "
          f"{trace.num_branches} branches, "
          f"{int(trace.b_region.sum())} region-based, "
          f"{trace.num_pdefs} predicate defines")

    # 2. Simulate a gshare predictor under four front-end configurations.
    configs = {
        "gshare alone":        SimOptions(),
        "+ squash filter":     SimOptions(sfp=SFPConfig()),
        "+ predicate update":  SimOptions(pgu=PGUConfig()),
        "+ both":              SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
    }
    print(f"\n{'configuration':20s} {'mispredict':>10s} {'mpki':>7s} "
          f"{'squashed':>9s}")
    for label, options in configs.items():
        predictor = make_predictor("gshare", entries=4096)
        result = simulate(trace, predictor, options)
        print(f"{label:20s} {result.misprediction_rate:10.4f} "
              f"{result.mpki:7.2f} {result.squash_coverage:9.4f}")

    # 3. The paper's target population: region-based branches.
    base = simulate(trace, make_predictor("gshare", entries=4096),
                    SimOptions())
    both = simulate(trace, make_predictor("gshare", entries=4096),
                    SimOptions(sfp=SFPConfig(), pgu=PGUConfig()))
    from repro.trace.container import BranchClass
    print(f"\nregion-based branches: "
          f"{base.class_stats(BranchClass.REGION).misprediction_rate:.4f}"
          f" -> "
          f"{both.class_stats(BranchClass.REGION).misprediction_rate:.4f}"
          f" misprediction with both techniques")


if __name__ == "__main__":
    main()
