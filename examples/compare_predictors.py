"""Compare predictor families on one workload, with and without the
paper's predicate techniques, across hardware budgets.

Run:  python examples/compare_predictors.py [workload]
"""

import sys

from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import get_workload

FAMILIES = ("bimodal", "gshare", "gselect", "gag", "local", "tournament")
SIZES = (256, 1024, 4096)


def bar(rate: float, scale: float = 300.0) -> str:
    return "#" * int(rate * scale)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "lexer"
    trace = get_workload(name).trace(scale="small", hyperblocks=True)
    both = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())

    print(f"workload: {name} ({trace.num_branches} dynamic branches)\n")
    print(f"{'predictor':12s} {'entries':>7s} {'plain':>8s} "
          f"{'+techniques':>11s}")
    for family in FAMILIES:
        for entries in SIZES:
            plain = simulate(
                trace, make_predictor(family, entries=entries), SimOptions()
            )
            treated = simulate(
                trace, make_predictor(family, entries=entries), both
            )
            print(f"{family:12s} {entries:7d} "
                  f"{plain.misprediction_rate:8.4f} "
                  f"{treated.misprediction_rate:11.4f}  "
                  f"{bar(treated.misprediction_rate)}")
        print()

    # Oracle bound for context.
    perfect = simulate(trace, make_predictor("perfect"), SimOptions())
    print(f"{'perfect':12s} {'-':>7s} {perfect.misprediction_rate:8.4f}")


if __name__ == "__main__":
    main()
