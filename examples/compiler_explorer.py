"""Compiler explorer: see what if-conversion does to a program.

Compiles a small program both ways, disassembles the interesting
function, reports region statistics, and histograms the dynamic
guard-define -> branch distance that the paper's mechanisms live off.

Run:  python examples/compiler_explorer.py
"""

import numpy as np

from repro.compiler import compile_source, compile_with_profile
from repro.compiler import config as config_mod
from repro.compiler.cfg import CFG
from repro.engine import run
from repro.isa.printer import disassemble
from repro.trace import TraceMeta, TraceRecorder

SOURCE = """
global data[512];

func lcg(s) { return (s * 1103515245 + 12345) % 2147483648; }

func classify(v, limit) {
    var score = 0;
    if (v < 0) { return 0 - v; }          // cold path -> side exit
    if (v % 2 == 0) { score = v / 2; }    // warm hammock -> predicated
    else { score = v * 3 + 1; }
    if (score > limit) { score = limit; } // biased triangle
    return score;
}

func main() {
    var i = 0;
    var seed = 99;
    var total = 0;
    while (i < 512) {
        seed = lcg(seed);
        data[i] = seed % 400 - 40;
        i = i + 1;
    }
    i = 0;
    while (i < 512) {
        total = total + classify(data[i], 150);
        i = i + 1;
    }
    return total;
}
"""


def main() -> None:
    baseline = compile_source(SOURCE, config_mod.BASELINE)
    hyper = compile_with_profile(SOURCE, config_mod.HYPERBLOCK)

    print("=== classify(), baseline compile (branch ladders) ===")
    print(disassemble(baseline.program.functions["classify"]))
    print("\n=== classify(), hyperblock compile (predicated) ===")
    print(disassemble(hyper.program.functions["classify"]))

    cfg = CFG(baseline.program.functions["classify"])
    print(f"\nbaseline classify(): {len(cfg.blocks)} basic blocks, "
          f"{len(cfg.back_edges())} back edges")
    print(f"hyperblock compile : {hyper.num_regions} predicated regions "
          f"across the program")

    # Execute both and confirm identical results.
    base_result = run(baseline.executable)
    recorder = TraceRecorder()
    hyper_result = run(hyper.executable, recorder=recorder)
    assert base_result.return_value == hyper_result.return_value
    print(f"\nboth compiles return {base_result.return_value}; "
          f"baseline executes {base_result.instructions} instructions, "
          f"hyperblock {hyper_result.instructions} "
          f"({hyper_result.instructions / base_result.instructions:.2f}x)")

    trace = recorder.finish(
        TraceMeta(instructions=hyper_result.instructions)
    )
    region = trace.b_region & (trace.b_guard_def >= 0)
    distances = (trace.b_idx - trace.b_guard_def)[region]
    print(f"\nregion-based branches: {int(region.sum())} dynamic")
    if distances.size:
        print("guard-define -> branch distance (dynamic instructions):")
        for lo, hi in ((0, 2), (2, 4), (4, 8), (8, 16), (16, 10**9)):
            count = int(((distances >= lo) & (distances < hi)).sum())
            label = f"{lo}-{hi-1}" if hi < 10**9 else f"{lo}+"
            print(f"  {label:>6s}: {'#' * (60 * count // distances.size)}"
                  f" {count}")


if __name__ == "__main__":
    main()
