"""Author a new workload and run the paper's headline comparison on it.

Shows the full user-facing path: write ``minic`` source, wrap it in a
:class:`repro.workloads.Workload` with input scales, and evaluate the
predicate techniques on the traces — no changes to the library needed.

Run:  python examples/custom_workload.py
"""

from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads import Workload

# A banking-style transaction filter: fee ladders keyed to amounts, a
# fraud check with a cold escalation path, and per-account state.
SOURCE = """
global balance[$accounts];
global flags[$accounts];

func lcg(s) { return (s * 1103515245 + 12345) % 2147483648; }

func fee(amount) {
    if (amount < 100) { return 1; }
    if (amount < 1000) { return 5; }
    if (amount < 5000) { return 20; }
    return 50;
}

func main() {
    var i = 0;
    var seed = $seed;
    while (i < $accounts) {
        seed = lcg(seed);
        balance[i] = seed % 10000;
        flags[i] = 0;
        i = i + 1;
    }
    var t = 0;
    var fees = 0;
    var declined = 0;
    var escalations = 0;
    var account = 0;
    var amount = 0;
    while (t < $transactions) {
        seed = lcg(seed);
        account = seed % $accounts;
        seed = lcg(seed);
        amount = seed % 6000;
        if (balance[account] < amount) {
            declined = declined + 1;           // data-dependent decline
        } else {
            balance[account] = balance[account] - amount + 9;
            fees = fees + fee(amount);
            if (amount > 5500 && flags[account] == 0) {
                flags[account] = 1;            // cold fraud escalation
                escalations = escalations + 1;
            }
        }
        t = t + 1;
    }
    return fees * 7 + declined * 3 + escalations * 1000;
}
"""

WORKLOAD = Workload(
    name="transactions",
    description="transaction filter with fee ladders and fraud checks",
    template=SOURCE,
    scales={
        "tiny": {"accounts": 64, "transactions": 2000, "seed": 2024},
        "small": {"accounts": 256, "transactions": 12000, "seed": 2024},
        "ref": {"accounts": 1024, "transactions": 80000, "seed": 2024},
    },
)


def main() -> None:
    # Sanity: the baseline and hyperblock compiles must agree.
    base = WORKLOAD.run("tiny", None)
    print(f"main() returns {base.return_value} "
          f"({base.instructions} instructions)\n")

    trace = WORKLOAD.trace(scale="small", hyperblocks=True,
                           use_cache=False)
    print(f"{trace.num_branches} branches, "
          f"{int(trace.b_region.sum())} region-based, "
          f"{trace.num_pdefs} predicate defines\n")

    configs = {
        "base": SimOptions(),
        "sfp": SimOptions(sfp=SFPConfig()),
        "pgu": SimOptions(pgu=PGUConfig()),
        "both": SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
    }
    print(f"{'config':6s} {'mispredict':>10s}")
    for label, options in configs.items():
        result = simulate(
            trace, make_predictor("gshare", entries=2048), options
        )
        print(f"{label:6s} {result.misprediction_rate:10.4f}")


if __name__ == "__main__":
    main()
