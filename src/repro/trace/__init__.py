"""Dynamic traces: the interface between execution and predictor simulation.

A trace is two event streams recorded while interpreting a workload:

* **branch events** — one per dynamic conditional branch (plus predicated
  calls/returns), carrying the static site, outcome, qualifying predicate,
  and the dynamic index at which that predicate was last defined;
* **predicate-define events** — one per architectural predicate write,
  carrying the computed value.

Traces are stored as numpy structure-of-arrays
(:class:`~repro.trace.container.Trace`) and cached on disk keyed by
workload + compile configuration (:mod:`repro.trace.cache`).
"""

from repro.trace.container import BranchClass, Trace, TraceMeta
from repro.trace.recorder import TraceRecorder
from repro.trace.cache import TraceCache

__all__ = ["BranchClass", "Trace", "TraceCache", "TraceMeta", "TraceRecorder"]
