"""Packed trace containers (numpy structure-of-arrays)."""

import enum
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.isa.opcodes import BranchKind


class BranchClass(enum.IntEnum):
    """Coarse classification used in per-class statistics."""

    NORMAL = 0  #: ordinary branch outside any predicated region
    REGION = 1  #: region-based branch (inside a hyperblock, guarded)
    LOOP = 2  #: loop back-edge


@dataclass
class TraceMeta:
    """Descriptive metadata carried alongside a trace."""

    workload: str = ""
    scale: str = ""
    compile_config: str = ""
    instructions: int = 0  #: total dynamic instructions executed
    return_value: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


class Trace:
    """A packed dynamic trace.

    Branch arrays (length = #dynamic branch events, fetch order):

    * ``b_pc``: static instruction index of the branch.
    * ``b_idx``: dynamic instruction index (time) of the branch.
    * ``b_taken``: actual outcome.
    * ``b_guard``: qualifying predicate register (0 = p0).
    * ``b_guard_def``: dynamic index of the most recent architectural
      write to the guard before this branch; ``-1`` if never written
      (p0 or an unwritten predicate).
    * ``b_kind``: :class:`~repro.isa.opcodes.BranchKind` value.
    * ``b_region``: region-based flag.
    * ``b_target``: static target index (``-1`` for returns).

    Predicate-define arrays (length = #architectural predicate writes,
    execution order):

    * ``d_pc``: static index of the defining compare.
    * ``d_idx``: dynamic instruction index of the write.
    * ``d_value``: the value written to the primary predicate target.
    * ``d_pred``: the primary predicate register written.
    """

    def __init__(
        self,
        b_pc: np.ndarray,
        b_idx: np.ndarray,
        b_taken: np.ndarray,
        b_guard: np.ndarray,
        b_guard_def: np.ndarray,
        b_kind: np.ndarray,
        b_region: np.ndarray,
        b_target: np.ndarray,
        d_pc: np.ndarray,
        d_idx: np.ndarray,
        d_value: np.ndarray,
        d_pred: np.ndarray,
        meta: TraceMeta,
    ):
        self.b_pc = b_pc
        self.b_idx = b_idx
        self.b_taken = b_taken
        self.b_guard = b_guard
        self.b_guard_def = b_guard_def
        self.b_kind = b_kind
        self.b_region = b_region
        self.b_target = b_target
        self.d_pc = d_pc
        self.d_idx = d_idx
        self.d_value = d_value
        self.d_pred = d_pred
        self.meta = meta

    @classmethod
    def from_lists(cls, *, b_pc, b_idx, b_taken, b_guard, b_guard_def,
                   b_kind, b_region, b_target, d_pc, d_idx, d_value, d_pred,
                   meta: TraceMeta) -> "Trace":
        """Build a trace from the recorder's plain lists."""
        return cls(
            b_pc=np.asarray(b_pc, dtype=np.int64),
            b_idx=np.asarray(b_idx, dtype=np.int64),
            b_taken=np.asarray(b_taken, dtype=bool),
            b_guard=np.asarray(b_guard, dtype=np.int16),
            b_guard_def=np.asarray(b_guard_def, dtype=np.int64),
            b_kind=np.asarray(b_kind, dtype=np.int8),
            b_region=np.asarray(b_region, dtype=bool),
            b_target=np.asarray(b_target, dtype=np.int64),
            d_pc=np.asarray(d_pc, dtype=np.int64),
            d_idx=np.asarray(d_idx, dtype=np.int64),
            d_value=np.asarray(d_value, dtype=bool),
            d_pred=np.asarray(d_pred, dtype=np.int16),
            meta=meta,
        )

    # -- basic facts ---------------------------------------------------------

    @property
    def num_branches(self) -> int:
        return int(self.b_pc.shape[0])

    @property
    def num_pdefs(self) -> int:
        return int(self.d_pc.shape[0])

    def branch_classes(self) -> np.ndarray:
        """Per-branch :class:`BranchClass` values."""
        classes = np.full(self.num_branches, BranchClass.NORMAL, dtype=np.int8)
        classes[self.b_kind == int(BranchKind.LOOP)] = BranchClass.LOOP
        classes[self.b_region] = BranchClass.REGION
        return classes

    def taken_rate(self) -> float:
        """Fraction of dynamic branches that were taken."""
        if self.num_branches == 0:
            return 0.0
        return float(self.b_taken.mean())

    def guard_known_false(self, distance: int) -> np.ndarray:
        """Mask of branches squashable by the SFP filter at distance ``D``.

        A branch is squashable iff its guard was architecturally written,
        the written value is false (so the branch *cannot* be taken), and
        the write is at least ``distance`` dynamic instructions old by
        fetch time.  A false guard implies the branch was not taken, so
        the predictor may assert not-taken with certainty.
        """
        resolved = (self.b_guard_def >= 0) & (
            self.b_idx - self.b_guard_def >= distance
        )
        # Guard value is reconstructed: a guarded branch is taken iff its
        # guard was true, so guard-false is exactly "not taken" *except*
        # that a true guard with a not-taken outcome cannot occur for BR
        # (br is taken iff qp).  Predicated CALL/RET behave identically.
        return resolved & (~self.b_taken) & (self.b_guard != 0)

    def guard_known(self, distance: int) -> np.ndarray:
        """Mask of branches whose guard value is visible at fetch."""
        return (self.b_guard_def >= 0) & (
            self.b_idx - self.b_guard_def >= distance
        )

    def summary(self) -> Dict[str, float]:
        """Headline counts used by the characterisation experiment."""
        classes = self.branch_classes()
        branches = max(self.num_branches, 1)
        return {
            "instructions": self.meta.instructions,
            "branches": self.num_branches,
            "pdefs": self.num_pdefs,
            "taken_rate": self.taken_rate(),
            "region_fraction": float(
                (classes == BranchClass.REGION).sum() / branches
            ),
            "loop_fraction": float(
                (classes == BranchClass.LOOP).sum() / branches
            ),
            "pdefs_per_100_instrs": (
                100.0 * self.num_pdefs / max(self.meta.instructions, 1)
            ),
        }

    # -- persistence ---------------------------------------------------------

    def save(self, path) -> None:
        """Save to an ``.npz`` file (see :class:`~repro.trace.cache.TraceCache`)."""
        np.savez_compressed(
            path,
            b_pc=self.b_pc,
            b_idx=self.b_idx,
            b_taken=self.b_taken,
            b_guard=self.b_guard,
            b_guard_def=self.b_guard_def,
            b_kind=self.b_kind,
            b_region=self.b_region,
            b_target=self.b_target,
            d_pc=self.d_pc,
            d_idx=self.d_idx,
            d_value=self.d_value,
            d_pred=self.d_pred,
            meta_workload=np.array(self.meta.workload),
            meta_scale=np.array(self.meta.scale),
            meta_config=np.array(self.meta.compile_config),
            meta_instructions=np.array(self.meta.instructions),
            meta_return=np.array(self.meta.return_value),
        )

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace previously stored with :meth:`save`."""
        with np.load(path) as data:
            meta = TraceMeta(
                workload=str(data["meta_workload"]),
                scale=str(data["meta_scale"]),
                compile_config=str(data["meta_config"]),
                instructions=int(data["meta_instructions"]),
                return_value=int(data["meta_return"]),
            )
            return cls(
                b_pc=data["b_pc"],
                b_idx=data["b_idx"],
                b_taken=data["b_taken"],
                b_guard=data["b_guard"],
                b_guard_def=data["b_guard_def"],
                b_kind=data["b_kind"],
                b_region=data["b_region"],
                b_target=data["b_target"],
                d_pc=data["d_pc"],
                d_idx=data["d_idx"],
                d_value=data["d_value"],
                d_pred=data["d_pred"],
                meta=meta,
            )
