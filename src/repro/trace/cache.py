"""On-disk trace cache.

Generating a trace means interpreting millions of instructions, so traces
are cached under a key derived from the workload name, input scale, and
compile configuration.  Workloads are deterministic, hence a cache hit is
bit-identical to a regeneration.
"""

import hashlib
import os
from pathlib import Path
from typing import Callable, Optional

from repro.trace.container import Trace

#: Environment variable overriding the default cache directory.
CACHE_ENV = "REPRO_TRACE_CACHE"


def default_cache_dir() -> Path:
    """The cache directory (``$REPRO_TRACE_CACHE`` or ``~/.cache/repro``)."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-traces"


class TraceCache:
    """Caches :class:`~repro.trace.container.Trace` objects on disk."""

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory else default_cache_dir()

    def key_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.directory / f"{digest}.npz"

    def get(self, key: str) -> Optional[Trace]:
        """Return the cached trace for ``key``, or ``None``."""
        path = self.key_path(key)
        if not path.exists():
            return None
        try:
            return Trace.load(path)
        except Exception:
            # A truncated or stale file is treated as a miss.
            path.unlink(missing_ok=True)
            return None

    def put(self, key: str, trace: Trace) -> None:
        """Store ``trace`` under ``key``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.key_path(key)
        tmp = path.with_suffix(".tmp.npz")
        trace.save(tmp)
        tmp.replace(path)

    def get_or_build(self, key: str, builder: Callable[[], Trace]) -> Trace:
        """Fetch ``key`` from the cache, building and storing on a miss."""
        trace = self.get(key)
        if trace is None:
            trace = builder()
            self.put(key, trace)
        return trace

    def clear(self) -> int:
        """Delete all cached traces; returns the number removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed
