"""On-disk trace cache.

Generating a trace means interpreting millions of instructions, so traces
are cached under a key derived from the workload name, input scale, and
compile configuration.  Workloads are deterministic, hence a cache hit is
bit-identical to a regeneration.

The cache is safe under concurrent builders (e.g. parallel sweep
workers all warming the same suite):

* writes land in a per-call unique temp file and are published with an
  atomic :func:`os.replace`, so readers only ever see complete files;
* :meth:`TraceCache.get_or_build` takes a per-key advisory file lock
  around the miss path, so N processes racing on one key perform
  exactly one build — the rest block briefly, then load the winner's
  file.

Every instance counts its own traffic (:attr:`TraceCache.hits`,
:attr:`TraceCache.misses`, :attr:`TraceCache.builds`) and mirrors the
counts — plus lock-wait and build-time histograms — into the current
:mod:`repro.telemetry` registry under ``trace_cache.*``.
"""

import hashlib
import os
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Optional

from repro import telemetry
from repro.telemetry import span
from repro.trace.container import Trace

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Environment variable overriding the default cache directory.
CACHE_ENV = "REPRO_TRACE_CACHE"


def default_cache_dir() -> Path:
    """The cache directory (``$REPRO_TRACE_CACHE`` or ``~/.cache/repro``)."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-traces"


class TraceCache:
    """Caches :class:`~repro.trace.container.Trace` objects on disk."""

    def __init__(self, directory: Optional[Path] = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        #: completed :meth:`get` calls that found a loadable file
        self.hits = 0
        #: completed :meth:`get` calls that found nothing usable
        self.misses = 0
        #: builder invocations performed by :meth:`get_or_build`
        self.builds = 0

    def stats(self) -> Dict[str, int]:
        """This instance's counters as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
        }

    def key_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.directory / f"{digest}.npz"

    def _lock_path(self, key: str) -> Path:
        return self.key_path(key).with_suffix(".lock")

    @contextmanager
    def _key_lock(self, key: str):
        """Exclusive per-key advisory lock (no-op where unsupported)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self._lock_path(key), "w") as handle:
            start = time.perf_counter()
            fcntl.flock(handle, fcntl.LOCK_EX)
            if telemetry.enabled():
                telemetry.get_registry().histogram(
                    "trace_cache.lock_wait_seconds"
                ).observe(time.perf_counter() - start)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _load(self, key: str) -> Optional[Trace]:
        """Load ``key`` without touching the hit/miss counters."""
        path = self.key_path(key)
        if not path.exists():
            return None
        try:
            return Trace.load(path)
        except Exception:
            # A truncated or stale file is treated as a miss.
            path.unlink(missing_ok=True)
            return None

    def get(self, key: str) -> Optional[Trace]:
        """Return the cached trace for ``key``, or ``None``."""
        trace = self._load(key)
        if trace is None:
            self.misses += 1
            self._count("trace_cache.misses")
        else:
            self.hits += 1
            self._count("trace_cache.hits")
        return trace

    def put(self, key: str, trace: Trace) -> None:
        """Store ``trace`` under ``key``.

        The write goes to a per-call unique temp name, then an atomic
        rename publishes it — concurrent writers of the same key cannot
        truncate each other mid-write, and the loser's rename simply
        (atomically) re-publishes identical bytes.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.key_path(key)
        tmp = path.with_suffix(
            f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}.npz"
        )
        try:
            with span("cache-publish"):
                trace.save(tmp)
                os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def get_or_build(self, key: str, builder: Callable[[], Trace]) -> Trace:
        """Fetch ``key`` from the cache, building and storing on a miss.

        The miss path holds a per-key file lock across the re-check,
        build and store, giving exactly-one-build semantics across
        concurrent processes.
        """
        trace = self.get(key)
        if trace is not None:
            return trace
        with self._key_lock(key):
            # Another process may have built while we waited on the lock;
            # that late load is not re-counted as a hit or miss.
            trace = self._load(key)
            if trace is None:
                start = time.perf_counter()
                trace = builder()
                self.builds += 1
                self._count("trace_cache.builds")
                if telemetry.enabled():
                    telemetry.get_registry().histogram(
                        "trace_cache.build_seconds"
                    ).observe(time.perf_counter() - start)
                self.put(key, trace)
        return trace

    def clear(self) -> int:
        """Delete all cached traces; returns the number removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.npz"):
            path.unlink()
            removed += 1
        for path in self.directory.glob("*.lock"):
            path.unlink(missing_ok=True)
        return removed

    @staticmethod
    def _count(name: str) -> None:
        if telemetry.enabled():
            telemetry.get_registry().counter(name).inc()
