"""In-memory trace recorder fed by the interpreter."""

from typing import Optional

from repro.trace.container import Trace, TraceMeta


class TraceRecorder:
    """Accumulates branch and predicate-define events in plain lists.

    The interpreter calls :meth:`record_branch` and :meth:`record_pdef`
    with positional ints/bools only (hot path); :meth:`finish` converts
    the accumulated lists into a packed numpy :class:`Trace`.
    """

    def __init__(self):
        self.b_pc = []
        self.b_idx = []
        self.b_taken = []
        self.b_guard = []
        self.b_guard_def = []
        self.b_kind = []
        self.b_region = []
        self.b_target = []
        self.d_pc = []
        self.d_idx = []
        self.d_value = []
        self.d_pred = []

    def record_branch(
        self, pc, dyn_idx, taken, guard, guard_def_idx, kind, region_based,
        target,
    ) -> None:
        """One dynamic branch event (called by the interpreter)."""
        self.b_pc.append(pc)
        self.b_idx.append(dyn_idx)
        self.b_taken.append(taken)
        self.b_guard.append(guard)
        self.b_guard_def.append(guard_def_idx)
        self.b_kind.append(kind)
        self.b_region.append(region_based)
        self.b_target.append(target)

    def record_pdef(self, pc, dyn_idx, value, pred) -> None:
        """One architectural predicate write (called by the interpreter)."""
        self.d_pc.append(pc)
        self.d_idx.append(dyn_idx)
        self.d_value.append(value)
        self.d_pred.append(pred)

    def finish(self, meta: Optional[TraceMeta] = None) -> Trace:
        """Pack the accumulated events into a :class:`Trace`."""
        return Trace.from_lists(
            b_pc=self.b_pc,
            b_idx=self.b_idx,
            b_taken=self.b_taken,
            b_guard=self.b_guard,
            b_guard_def=self.b_guard_def,
            b_kind=self.b_kind,
            b_region=self.b_region,
            b_target=self.b_target,
            d_pc=self.d_pc,
            d_idx=self.d_idx,
            d_value=self.d_value,
            d_pred=self.d_pred,
            meta=meta or TraceMeta(),
        )
