"""A small forward-dataflow framework over :class:`FunctionCFG`.

A :class:`ForwardProblem` supplies the lattice (``top``, ``join``,
``equals``), the state at the function entry (``boundary``) and a
per-instruction ``transfer``.  :func:`solve_forward` runs the classic
optimistic worklist algorithm in reverse postorder and returns the
fixpoint state at the entry of every *reachable* block; states inside a
block are then re-derived on demand with :func:`instruction_states`.

States are treated as immutable values: ``transfer`` and ``join`` must
return (possibly shared) values, never mutate their inputs.  That keeps
the solver trivially correct and is plenty fast for this ISA — linked
workload programs are a few thousand instructions at most.
"""

from typing import Any, Dict, Iterator, Tuple

from repro.analysis.cfg import FunctionCFG
from repro.isa.instructions import Instruction


class ForwardProblem:
    """Interface a forward-dataflow problem implements."""

    def boundary(self) -> Any:
        """State on entry to the function."""
        raise NotImplementedError

    def top(self) -> Any:
        """Identity element of :meth:`join` (state of unvisited paths)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        """Combine states at a control-flow merge."""
        raise NotImplementedError

    def transfer(self, state: Any, pos: int, instr: Instruction) -> Any:
        """State after executing ``instr`` at absolute position ``pos``."""
        raise NotImplementedError

    def equals(self, a: Any, b: Any) -> bool:
        return a == b


def solve_forward(
    cfg: FunctionCFG, problem: ForwardProblem
) -> Dict[int, Any]:
    """Fixpoint in-states for every reachable block of ``cfg``."""
    order = cfg.reverse_postorder()
    if not order:
        return {}
    reachable = set(order)
    code = cfg.executable.code

    in_states: Dict[int, Any] = {index: problem.top() for index in order}
    in_states[order[0]] = problem.boundary()
    out_states: Dict[int, Any] = {}

    # Worklist seeded in reverse postorder: near-linear on reducible CFGs.
    pending = list(order)
    queued = set(order)
    while pending:
        index = pending.pop(0)
        queued.discard(index)
        block = cfg.blocks[index]

        # The function-entry path contributes ``boundary`` to the entry
        # block; every block additionally joins its predecessors' outs
        # (the entry block can have them too, via loop back edges).
        state = problem.boundary() if index == order[0] else problem.top()
        for pred in block.predecessors:
            if pred in out_states:
                state = problem.join(state, out_states[pred])
        in_states[index] = state

        for pos in range(block.start, block.end):
            state = problem.transfer(state, pos, code[pos])

        previous = out_states.get(index)
        if previous is None or not problem.equals(previous, state):
            out_states[index] = state
            for succ in block.successors:
                if succ in reachable and succ not in queued:
                    queued.add(succ)
                    pending.append(succ)
    return in_states


def instruction_states(
    cfg: FunctionCFG, problem: ForwardProblem, in_states: Dict[int, Any]
) -> Iterator[Tuple[int, Instruction, Any]]:
    """Yield ``(pos, instr, state_before)`` for every reachable
    instruction, in ascending position order."""
    code = cfg.executable.code
    for index in sorted(in_states):
        block = cfg.blocks[index]
        state = in_states[index]
        for pos in range(block.start, block.end):
            instr = code[pos]
            yield pos, instr, state
            state = problem.transfer(state, pos, instr)
