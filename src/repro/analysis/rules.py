"""The predicate-aware checks (rule ids ``RPA001`` .. ``RPA011``).

Two dataflow problems feed the checks:

* :class:`InitProblem` — must-initialized register masks (GPRs and
  predicate registers), intersection join.  Any static write counts as a
  definition, predicated or not: if-conversion deliberately produces
  guarded writes on the straight-line path, and def-before-use is about
  *static* reachability, not dynamic guarantee.  A read of a register
  that is not must-initialized means some path from the entry carries no
  definition at all — on the machine it silently reads 0 (GPRs) or false
  (predicates).
* :class:`ReachingPredDefs` — which ``CMP`` instructions' predicate
  writes reach each point (union join).  A compare kills earlier
  definitions of its target only when it writes unconditionally
  (``unc``, or ``normal`` under ``p0``); ``and``/``or``-type compares
  and guarded normal compares are weak updates.

Everything else is structural.  See ``docs/static-analysis.md`` for the
catalogue with examples.
"""

from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.cfg import FunctionCFG, FunctionSlice
from repro.analysis.dataflow import (
    ForwardProblem,
    instruction_states,
    solve_forward,
)
from repro.analysis.diagnostics import LintReport
from repro.isa.instructions import Instruction
from repro.isa.opcodes import CmpType, Opcode
from repro.isa.program import Executable
from repro.isa.registers import ARG_BASE, NUM_GPR, NUM_PRED, P_TRUE, R_SP

_ALL_GPRS = (1 << NUM_GPR) - 1
_ALL_PREDS = (1 << NUM_PRED) - 1

#: Instruction kinds that can carry ``region_based``.
_BRANCH_OPS = (Opcode.BR, Opcode.CALL, Opcode.RET)


class InitProblem(ForwardProblem):
    """Must-initialized (GPR mask, predicate mask) bit-vector pairs."""

    def __init__(self, slice_: FunctionSlice):
        gprs = 1 | (1 << R_SP)  # r0 hardwired; sp set by the runtime
        for param in range(slice_.nparams):
            gprs |= 1 << (ARG_BASE + param)
        self._boundary = (gprs, 1 << P_TRUE)

    def boundary(self) -> Tuple[int, int]:
        return self._boundary

    def top(self) -> Tuple[int, int]:
        return (_ALL_GPRS, _ALL_PREDS)

    def join(self, a, b) -> Tuple[int, int]:
        return (a[0] & b[0], a[1] & b[1])

    def transfer(self, state, pos, instr) -> Tuple[int, int]:
        gprs, preds = state
        rd = instr.writes_reg()
        if rd >= 0:
            gprs |= 1 << rd
        if instr.op is Opcode.CMP:
            if instr.pd1 > 0:
                preds |= 1 << instr.pd1
            if instr.pd2 > 0:
                preds |= 1 << instr.pd2
        return (gprs, preds)


#: Reaching-definition state: predicate register -> defining positions.
PredDefs = Dict[int, FrozenSet[int]]


class ReachingPredDefs(ForwardProblem):
    """Which CMP positions' predicate writes reach each point."""

    def boundary(self) -> PredDefs:
        return {}

    def top(self) -> PredDefs:
        return {}

    def join(self, a: PredDefs, b: PredDefs) -> PredDefs:
        if not a:
            return b
        if not b:
            return a
        merged = dict(a)
        for pred, defs in b.items():
            mine = merged.get(pred)
            merged[pred] = defs if mine is None else (mine | defs)
        return merged

    def transfer(self, state: PredDefs, pos, instr) -> PredDefs:
        if instr.op is not Opcode.CMP:
            return state
        targets = [p for p in (instr.pd1, instr.pd2) if p > 0]
        if not targets:
            return state
        strong = instr.ctype is CmpType.UNC or (
            instr.ctype is CmpType.NORMAL and instr.qp == P_TRUE
        )
        new_state = dict(state)
        here = frozenset((pos,))
        for pred in targets:
            if strong:
                new_state[pred] = here
            else:
                new_state[pred] = new_state.get(pred, frozenset()) | here
        return new_state


def check_function(
    executable: Executable, cfg: FunctionCFG, report: LintReport
) -> None:
    """Run every rule over one function, appending to ``report``."""
    slice_ = cfg.slice
    code = executable.code

    def local(pos: int) -> int:
        return pos - slice_.start

    def add(rule_id: str, pos: int, message: str) -> None:
        report.add(
            rule_id,
            slice_.name,
            local(pos),
            pos,
            message,
            instruction=code[pos],
        )

    if len(slice_) == 0:
        report.add(
            "RPA008",
            slice_.name,
            0,
            slice_.start,
            "function has no instructions; a call to it falls through "
            "into the next function",
        )
        return

    # -- structural checks over every instruction --------------------------
    for pos in range(slice_.start, slice_.end):
        instr = code[pos]
        _check_structural(executable, instr, pos, add)

    # -- CFG-shape checks --------------------------------------------------
    reachable_blocks = cfg.reachable()
    for pos in cfg.escaping_branches:
        add(
            "RPA010",
            pos,
            f"branch target {code[pos].target} is outside "
            f"{slice_.name} [{slice_.start}, {slice_.end})",
        )
    for block in cfg.blocks:
        if block.index not in reachable_blocks and not _is_safety_ret(
            code, block, slice_
        ):
            add(
                "RPA007",
                block.start,
                f"unreachable block of {len(block)} instruction(s)",
            )
    for index in cfg.fall_off_blocks():
        if index in reachable_blocks:
            block = cfg.blocks[index]
            add(
                "RPA008",
                block.end - 1,
                "control can fall through the last instruction of "
                f"{slice_.name}",
            )

    # -- region-id contiguity ---------------------------------------------
    region_ids = sorted(
        {
            code[pos].region
            for pos in range(slice_.start, slice_.end)
            if code[pos].region >= 0
        }
    )
    if region_ids and region_ids[-1] - region_ids[0] + 1 != len(region_ids):
        present = set(region_ids)
        missing = [
            r
            for r in range(region_ids[0], region_ids[-1] + 1)
            if r not in present
        ]
        report.add(
            "RPA005",
            slice_.name,
            0,
            slice_.start,
            f"region ids {region_ids} are not contiguous "
            f"(missing {missing})",
        )

    # -- dataflow checks (reachable code only) -----------------------------
    init = InitProblem(slice_)
    init_in = solve_forward(cfg, init)
    for pos, instr, state in instruction_states(cfg, init, init_in):
        _check_initialized(instr, pos, state, add)

    reach = ReachingPredDefs()
    reach_in = solve_forward(cfg, reach)
    for pos, instr, state in instruction_states(cfg, reach, reach_in):
        _check_region_guard(code, instr, pos, state, add)


def _is_safety_ret(code, block, slice_: FunctionSlice) -> bool:
    """The compiler ends every function with a belt-and-braces ``ret``;
    when all paths return explicitly it is unreachable by design."""
    return (
        block.end == slice_.end
        and len(block) == 1
        and code[block.start].op is Opcode.RET
        and code[block.start].qp == P_TRUE
    )


def _check_structural(
    executable: Executable, instr: Instruction, pos: int, add
) -> None:
    if instr.region_based:
        if instr.op in _BRANCH_OPS and instr.region < 0:
            add(
                "RPA003",
                pos,
                "region-based branch carries no region id",
            )
        if instr.qp == P_TRUE:
            add(
                "RPA004",
                pos,
                "region-based branch is unguarded (qp = p0)",
            )

    if instr.op is Opcode.CMP:
        targets = [p for p in (instr.pd1, instr.pd2) if p != -1]
        if not targets:
            add("RPA006", pos, "compare writes no predicate register")
        elif instr.pd1 == -1:
            add(
                "RPA006",
                pos,
                f"compare writes complement p{instr.pd2} without a "
                "primary pd1",
            )
        elif instr.pd1 == instr.pd2:
            add(
                "RPA006",
                pos,
                f"compare writes p{instr.pd1} as both its own "
                "complement (pd1 == pd2)",
            )
        if 0 in targets:
            add(
                "RPA006",
                pos,
                "compare targets the hardwired p0",
            )

    if instr.op is Opcode.CALL and isinstance(instr.target, int):
        try:
            callee = executable.entry_name(instr.target)
        except KeyError:
            return  # link-level breakage; verify_executable's territory
        nparams = executable.function_nparams.get(callee, 0)
        if instr.nargs != nparams:
            add(
                "RPA009",
                pos,
                f"call stages {instr.nargs} argument(s) but "
                f"{callee} declares {nparams} parameter(s)",
            )

    if instr.op is Opcode.HALT and instr.qp != P_TRUE:
        add(
            "RPA011",
            pos,
            f"HALT ignores its qualifying predicate p{instr.qp} and "
            "stops the machine unconditionally",
        )


def _check_initialized(
    instr: Instruction, pos: int, state: Tuple[int, int], add
) -> None:
    gprs, preds = state
    for reg in instr.reads_regs():
        if reg != 0 and not (gprs >> reg) & 1:
            add(
                "RPA001",
                pos,
                f"r{reg} is read but not written on every path from "
                "the function entry",
            )
    pred_reads: List[int] = []
    if instr.qp != P_TRUE:
        pred_reads.append(instr.qp)
    if instr.op is Opcode.CMP and instr.ctype in (CmpType.AND, CmpType.OR):
        # and/or-type compares read-modify-write their targets.
        pred_reads.extend(
            p for p in (instr.pd1, instr.pd2) if p > 0
        )
    for pred in pred_reads:
        if not (preds >> pred) & 1:
            add(
                "RPA002",
                pos,
                f"p{pred} is read but no CMP defining it reaches here "
                "on every path",
            )


def _check_region_guard(
    code, instr: Instruction, pos: int, state: PredDefs, add
) -> None:
    if not instr.region_based or instr.op not in _BRANCH_OPS:
        return
    if instr.qp == P_TRUE or instr.region < 0:
        return  # RPA004 (unguarded) / RPA003 already reported
    defs = state.get(instr.qp, frozenset())
    if not defs:
        return  # no reaching define at all: RPA002 already reported
    if not any(code[d].region == instr.region for d in defs):
        regions = sorted({code[d].region for d in defs})
        add(
            "RPA004",
            pos,
            f"guard p{instr.qp} of this region-{instr.region} branch "
            f"is only defined in region(s) {regions}, not inside its "
            "own region",
        )
