"""Predicate-flow analysis: per-branch static facts for SFP and PGU.

The paper's mechanisms consume *dynamic* predicate facts — the squash
false-path filter (SFP) needs the guard resolved at least ``D``
instructions before fetch, predicate global update (PGU) shifts guard
defines into history — yet both are grounded in *static* program
structure.  This module computes that structure per function, for every
branch-trace event site:

* the set of predicate defines that can reach it (the static
  PGU-visible context, :class:`~repro.analysis.rules.ReachingPredDefs`);
* bounds on the guard's availability distance at fetch
  (:class:`GuardDistance`), giving a static SFP-filterability verdict
  and a site-coverage upper bound;
* the guard's abstract value on every feasible path (an edge-refined
  constant lattice per predicate register, with complement propagation
  for NORMAL/UNC compare pairs), giving must-not-taken /
  must-taken facts — a statically squashable branch is exactly one
  whose guard is provably false.

Soundness leans on the interpreter's machine semantics
(:mod:`repro.engine.interpreter`): the predicate file is per-frame
(fresh all-false file on CALL, restored on RET), ``unc`` compares write
both targets even under a false qualifying predicate, ``and``/``or``
compares can only lower/raise their targets, and a branch is taken iff
its qualifying predicate is true.  Distances saturate at
:data:`SAT_DISTANCE` ("at least this far"); a ``CALL`` saturates upper
bounds because the callee's dynamic length is unknown, while lower
bounds stay valid (the callee only adds instructions).

The facts feed three consumers: verifier rules ``RPA012``–``RPA017``
(:func:`check_predflow_function`), the ``repro analyze`` CLI report
(:class:`PredflowReport`), and the static/dynamic contract checker in
:mod:`repro.analysis.contract`.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.analysis.cfg import FunctionCFG, falls_through, function_slices
from repro.analysis.dataflow import ForwardProblem, solve_forward
from repro.analysis.diagnostics import LintReport
from repro.analysis.rules import ReachingPredDefs
from repro.compiler.dominance import dominators
from repro.isa.opcodes import CmpType, Opcode
from repro.isa.program import Executable
from repro.isa.registers import NUM_PRED, P_TRUE
from repro.pipeline.availability import DEFAULT_DISTANCE

#: Distances saturate here: "at least this many instructions back".
SAT_DISTANCE = 1 << 10

#: Version stamp of the ``repro analyze --json`` payload.
ANALYZE_SCHEMA_VERSION = 1

#: Abstract guard values at a branch.
GUARD_TRUE = "true"
GUARD_FALSE = "false"
GUARD_UNKNOWN = "unknown"
GUARD_UNREACHABLE = "unreachable"

#: Static SFP-filterability verdicts.
VERDICT_ALWAYS = "always"  #: guard resolved >= D back on every path
VERDICT_SOMETIMES = "sometimes"
VERDICT_NEVER = "never"  #: guard always resolved < D back
VERDICT_UNDEFINED = "undefined"  #: no reaching define on any path
VERDICT_UNGUARDED = "unguarded"  #: qp == p0

VERDICTS = (
    VERDICT_ALWAYS,
    VERDICT_SOMETIMES,
    VERDICT_NEVER,
    VERDICT_UNDEFINED,
    VERDICT_UNGUARDED,
)

_BRANCH_OPS = (Opcode.BR, Opcode.CALL, Opcode.RET)


class _DomOrder:
    """Adapter presenting a :class:`FunctionCFG` to
    :func:`repro.compiler.dominance.dominators`, which expects
    ``reachable()`` to return an *ordered* list with the entry first."""

    def __init__(self, cfg: FunctionCFG):
        self.blocks = cfg.blocks
        self._order = cfg.reverse_postorder()

    def reachable(self) -> List[int]:
        return self._order


# ---------------------------------------------------------------------------
# Predicate-value lattice
#
# A state is ``None`` (no feasible path reaches here) or a pair of int
# bitmasks ``(known, values)``: bit ``p`` of ``known`` set means predicate
# ``p`` has the same value on every feasible path, and that value is bit
# ``p`` of ``values``.  Machine truth at function entry: the activation
# installs a fresh predicate file, all false except the hardwired p0.
# ---------------------------------------------------------------------------

def _all_known_entry() -> Tuple[int, int]:
    return ((1 << NUM_PRED) - 1, 1 << P_TRUE)


def _value_of(state: Optional[Tuple[int, int]], pred: int) -> Optional[int]:
    """The constant value of ``pred`` in ``state``: 1, 0 or None."""
    if pred == P_TRUE:
        return 1
    if state is None:
        return None
    known, values = state
    if (known >> pred) & 1:
        return (values >> pred) & 1
    return None


def _vjoin(a, b):
    """Join two value states (``None`` = unreachable is the identity)."""
    if a is None:
        return b
    if b is None:
        return a
    known_a, val_a = a
    known_b, val_b = b
    known = known_a & known_b & ~(val_a ^ val_b)
    return (known, val_a & known)


def _vtransfer(state, instr):
    """Value state after executing ``instr``.

    Mirrors the interpreter: only ``CMP`` writes predicates, ``unc``
    writes both targets even under a false guard (false/false), and
    ``and``/``or`` are one-directional read-modify-writes.
    """
    if state is None:
        return None
    if instr.op is not Opcode.CMP:
        return state
    targets = [p for p in (instr.pd1, instr.pd2) if p > 0]
    if not targets:
        return state
    known, values = state
    mask = 0
    for p in targets:
        mask |= 1 << p
    guard_value = _value_of(state, instr.qp)
    ctype = instr.ctype
    if ctype is CmpType.UNC:
        if guard_value == 0:
            # unc under a false guard architecturally clears both targets
            return (known | mask, values & ~mask)
        return (known & ~mask, values & ~mask)
    if guard_value == 0:
        return state  # normal/and/or under a false guard write nothing
    if ctype is CmpType.NORMAL:
        return (known & ~mask, values & ~mask)
    keep = 0
    if ctype is CmpType.AND:
        # and-type can only lower targets: known-false stays known-false
        for p in targets:
            if (known >> p) & 1 and not (values >> p) & 1:
                keep |= 1 << p
    else:  # CmpType.OR can only raise targets: known-true survives
        for p in targets:
            if (known >> p) & 1 and (values >> p) & 1:
                keep |= 1 << p
    drop = mask & ~keep
    return (known & ~drop, values & ~drop)


def _refine(state, pred: int, value: int, partner: int):
    """Assume ``pred == value`` on an edge (and its complement partner,
    if any).  Returns ``None`` when the assumption contradicts a known
    value — the edge is infeasible."""
    if state is None or pred == P_TRUE:
        return state
    known, values = state
    for p, v in ((pred, value), (partner, 1 - value)):
        if p <= 0:
            continue
        bit = 1 << p
        if known & bit and ((values >> p) & 1) != v:
            return None
        known |= bit
        values = (values | bit) if v else (values & ~bit)
    return (known, values)


def _complement_partner(code, defs_state, pred: int) -> int:
    """The predicate provably holding ``not pred``, or ``-1``.

    Exactly when every path's last write of both registers is one
    always-executed ``normal``/``unc`` compare writing the
    ``(pd1, pd2)`` complement pair.
    """
    defs = defs_state.get(pred) if defs_state else None
    if not defs or len(defs) != 1:
        return -1
    (d,) = defs
    instr = code[d]
    if instr.op is not Opcode.CMP or instr.qp != P_TRUE:
        return -1
    if instr.ctype not in (CmpType.NORMAL, CmpType.UNC):
        return -1
    if instr.pd1 <= 0 or instr.pd2 <= 0 or instr.pd1 == instr.pd2:
        return -1
    if pred == instr.pd1:
        partner = instr.pd2
    elif pred == instr.pd2:
        partner = instr.pd1
    else:
        return -1
    if defs_state.get(partner) != defs:
        return -1
    return partner


def _solve_values(cfg: FunctionCFG, reach_in: Dict[int, dict]) -> Dict[int, object]:
    """Edge-refined value fixpoint: reachable block index -> in-state.

    Classic optimistic propagation in the SCCP style: per-edge out
    states start unreachable (``None``) and conditional terminators
    refine the qualifying predicate (plus its complement partner) on
    the taken/fall-through edges; a refinement contradicting a known
    value marks the edge infeasible.
    """
    code = cfg.executable.code
    order = cfg.reverse_postorder()
    if not order:
        return {}
    entry = order[0]
    reach = ReachingPredDefs()

    # Reaching-def state just before each block's terminator, for
    # complement-pair discovery (fixed; independent of values).
    term_reach: Dict[int, dict] = {}
    for index in order:
        block = cfg.blocks[index]
        state = reach_in[index]
        for pos in range(block.start, block.end - 1):
            state = reach.transfer(state, pos, code[pos])
        term_reach[index] = state

    in_vals: Dict[int, object] = {index: None for index in order}
    edge_out: Dict[Tuple[int, int], object] = {}
    reachable = set(order)
    pending = list(order)
    queued = set(order)
    fuel = 64 * (len(order) + 1) * (len(order) + 1)
    while pending:
        fuel -= 1
        if fuel < 0:  # defensive: degrade to "only p0 known"
            return {index: (1 << P_TRUE, 1 << P_TRUE) for index in order}
        index = pending.pop(0)
        queued.discard(index)
        block = cfg.blocks[index]

        state = _all_known_entry() if index == entry else None
        for pred_block in block.predecessors:
            if pred_block in reachable:
                state = _vjoin(state, edge_out.get((pred_block, index)))
        in_vals[index] = state

        out = state
        for pos in range(block.start, block.end):
            out = _vtransfer(out, code[pos])

        term = code[block.end - 1]
        succ_states = {succ: out for succ in block.successors}
        if out is not None and term.qp != P_TRUE and term.op in (
            Opcode.BR,
            Opcode.RET,
        ):
            partner = _complement_partner(code, term_reach[index], term.qp)
            taken_succ = fall_succ = None
            if term.op is Opcode.BR:
                target = term.target
                if isinstance(target, int) and cfg.slice.contains(target):
                    taken_succ = cfg.block_at(target).index
            if falls_through(term) and block.end < cfg.slice.end:
                fall_succ = cfg.block_at(block.end).index
            # The state *before* the terminator decides feasibility; the
            # terminator itself writes nothing, so ``out`` is it.
            if taken_succ != fall_succ:
                if taken_succ in succ_states:
                    succ_states[taken_succ] = _refine(out, term.qp, 1, partner)
                if fall_succ in succ_states:
                    succ_states[fall_succ] = _refine(out, term.qp, 0, partner)

        for succ, succ_state in succ_states.items():
            if succ not in reachable:
                continue
            key = (index, succ)
            if key in edge_out and edge_out[key] == succ_state:
                continue
            edge_out[key] = succ_state
            if succ not in queued:
                queued.add(succ)
                pending.append(succ)
    return in_vals


# ---------------------------------------------------------------------------
# Guard availability distance
# ---------------------------------------------------------------------------


class GuardDistance(ForwardProblem):
    """Per-predicate ``(min, max, may_be_undefined)`` distance since the
    last reaching define, in fetched instructions.

    A predicate absent from the state was never defined on any path.
    Entries are exact on call-free paths; a ``CALL`` saturates the upper
    bound (the callee's dynamic length is unknown) and leaves the lower
    bound valid (callees only add fetched instructions).  Weak defines
    (guarded ``normal``, ``and``/``or``) may not fire dynamically, so
    they only lower the minimum; strong defines (``unc``, ``normal``
    under p0) reset both bounds.
    """

    def boundary(self):
        return {}

    def top(self):
        return None

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        merged = {}
        for pred in a.keys() | b.keys():
            entry_a = a.get(pred)
            entry_b = b.get(pred)
            if entry_a is None:
                merged[pred] = (entry_b[0], entry_b[1], True)
            elif entry_b is None:
                merged[pred] = (entry_a[0], entry_a[1], True)
            else:
                merged[pred] = (
                    min(entry_a[0], entry_b[0]),
                    max(entry_a[1], entry_b[1]),
                    entry_a[2] or entry_b[2],
                )
        return merged

    def transfer(self, state, pos, instr):
        if state is None:
            return None
        out = {
            pred: (
                min(lo + 1, SAT_DISTANCE),
                min(hi + 1, SAT_DISTANCE),
                undef,
            )
            for pred, (lo, hi, undef) in state.items()
        }
        if instr.op is Opcode.CMP:
            targets = [p for p in (instr.pd1, instr.pd2) if p > 0]
            strong = instr.ctype is CmpType.UNC or (
                instr.ctype is CmpType.NORMAL and instr.qp == P_TRUE
            )
            for pred in targets:
                if strong:
                    out[pred] = (1, 1, False)
                else:
                    prev = out.get(pred)
                    if prev is None:
                        out[pred] = (1, 1, True)
                    else:
                        out[pred] = (1, prev[1], prev[2])
        elif instr.op is Opcode.CALL:
            out = {
                pred: (lo, SAT_DISTANCE, undef)
                for pred, (lo, hi, undef) in out.items()
            }
        return out


# ---------------------------------------------------------------------------
# Per-branch facts
# ---------------------------------------------------------------------------


@dataclass
class BranchFacts:
    """Everything the analysis proves about one static branch site."""

    pc: int  #: absolute index in the linked executable
    function: str
    index: int  #: function-local index
    opcode: str
    region: int
    region_based: bool
    guard: int  #: qualifying predicate register
    guard_value: str  #: "true" | "false" | "unknown" | "unreachable"
    min_avail: int  #: -1 when the guard is never defined
    max_avail: int  #: SAT_DISTANCE means "unbounded"; -1 never defined
    may_be_undefined: bool  #: some path carries no define of the guard
    reaching_defines: Tuple[int, ...]  #: all CMP defines reaching (any pred)
    guard_defines: Tuple[int, ...]  #: defines whose write of the guard reaches
    in_region_defines: Tuple[int, ...]  #: guard defines inside this region
    complement_only: bool  #: every reaching define writes guard as pd2
    dominated_by_define: bool  #: some guard define dominates this branch

    @property
    def must_not_taken(self) -> bool:
        """Guard provably false (or site on no feasible path): the
        branch is statically squashable."""
        return self.guard_value in (GUARD_FALSE, GUARD_UNREACHABLE)

    @property
    def must_taken(self) -> bool:
        return self.guard_value == GUARD_TRUE

    def verdict(self, distance: int) -> str:
        """Static SFP-filterability at availability distance ``D``."""
        if self.guard == P_TRUE:
            return VERDICT_UNGUARDED
        if self.min_avail < 0:
            return VERDICT_UNDEFINED
        if self.max_avail < distance:
            return VERDICT_NEVER
        if self.min_avail >= distance and not self.may_be_undefined:
            return VERDICT_ALWAYS
        return VERDICT_SOMETIMES

    def to_dict(self, distance: int = DEFAULT_DISTANCE) -> dict:
        return {
            "pc": self.pc,
            "function": self.function,
            "index": self.index,
            "opcode": self.opcode,
            "region": self.region,
            "region_based": self.region_based,
            "guard": self.guard,
            "guard_value": self.guard_value,
            "min_avail": self.min_avail,
            "max_avail": self.max_avail,
            "may_be_undefined": self.may_be_undefined,
            "reaching_defines": list(self.reaching_defines),
            "guard_defines": list(self.guard_defines),
            "in_region_defines": list(self.in_region_defines),
            "complement_only": self.complement_only,
            "dominated_by_define": self.dominated_by_define,
            "must_not_taken": self.must_not_taken,
            "must_taken": self.must_taken,
            "sfp_verdict": self.verdict(distance),
        }


@dataclass
class FunctionFacts:
    """All branch facts of one function."""

    name: str
    start: int
    end: int
    branches: List[BranchFacts] = field(default_factory=list)


@dataclass
class PredflowReport:
    """Predicate-flow facts for one linked program."""

    program: str
    distance: int
    functions: List[FunctionFacts] = field(default_factory=list)

    def branches(self):
        for function in self.functions:
            yield from function.branches

    def by_pc(self) -> Dict[int, BranchFacts]:
        return {facts.pc: facts for facts in self.branches()}

    def summary(self) -> dict:
        branches = list(self.branches())
        region = [b for b in branches if b.region_based]
        verdicts = {v: 0 for v in VERDICTS}
        for b in branches:
            verdicts[b.verdict(self.distance)] += 1
        filterable_region = sum(
            1
            for b in region
            if b.verdict(self.distance) in (VERDICT_ALWAYS, VERDICT_SOMETIMES)
        )
        defines = {d for b in branches for d in b.reaching_defines}
        return {
            "functions": len(self.functions),
            "branches": len(branches),
            "region_branches": len(region),
            "must_not_taken": sum(1 for b in branches if b.must_not_taken),
            "must_taken": sum(1 for b in branches if b.must_taken),
            "complement_only": sum(
                1 for b in branches if b.complement_only
            ),
            "define_sites": len(defines),
            "distance": self.distance,
            "verdicts": verdicts,
            # Upper bound on the fraction of region-branch *sites* SFP
            # could ever squash at this distance: a site whose guard is
            # provably resolved too late can never be filtered.
            "sfp_site_coverage_bound": (
                filterable_region / len(region) if region else 0.0
            ),
        }

    def to_dict(self) -> dict:
        return {
            "schema": ANALYZE_SCHEMA_VERSION,
            "program": self.program,
            "distance": self.distance,
            "summary": self.summary(),
            "functions": [
                {
                    "name": function.name,
                    "start": function.start,
                    "end": function.end,
                    "branches": [
                        b.to_dict(self.distance) for b in function.branches
                    ],
                }
                for function in self.functions
            ],
        }


# ---------------------------------------------------------------------------
# Analysis driver
# ---------------------------------------------------------------------------


def analyze_cfg(
    executable: Executable,
    cfg: FunctionCFG,
    distance: int = DEFAULT_DISTANCE,
) -> FunctionFacts:
    """Compute branch facts for one function."""
    code = executable.code
    slice_ = cfg.slice
    facts = FunctionFacts(name=slice_.name, start=slice_.start, end=slice_.end)
    if len(slice_) == 0:
        return facts

    reach = ReachingPredDefs()
    reach_in = solve_forward(cfg, reach)
    dist = GuardDistance()
    dist_in = solve_forward(cfg, dist)
    vals_in = _solve_values(cfg, reach_in)
    dom = dominators(_DomOrder(cfg))

    for index in sorted(reach_in):
        block = cfg.blocks[index]
        reach_state = reach_in[index]
        dist_state = dist_in[index]
        val_state = vals_in.get(index)
        for pos in range(block.start, block.end):
            instr = code[pos]
            if instr.is_branch_event():
                facts.branches.append(
                    _branch_facts(
                        code,
                        cfg,
                        dom,
                        slice_,
                        pos,
                        instr,
                        reach_state,
                        dist_state,
                        val_state,
                    )
                )
            reach_state = reach.transfer(reach_state, pos, instr)
            dist_state = dist.transfer(dist_state, pos, instr)
            val_state = _vtransfer(val_state, instr)
    return facts


def _branch_facts(
    code,
    cfg: FunctionCFG,
    dom: Dict[int, set],
    slice_,
    pos: int,
    instr,
    reach_state,
    dist_state,
    val_state,
) -> BranchFacts:
    guard = instr.qp
    reach_state = reach_state or {}
    all_defs = sorted(
        {d for defs in reach_state.values() for d in defs}
    )
    guard_defs = sorted(reach_state.get(guard, frozenset()))
    in_region = (
        tuple(d for d in guard_defs if code[d].region == instr.region)
        if instr.region >= 0
        else ()
    )

    if val_state is None:
        guard_value = GUARD_UNREACHABLE
    else:
        value = _value_of(val_state, guard)
        if value is None:
            guard_value = GUARD_UNKNOWN
        else:
            guard_value = GUARD_TRUE if value else GUARD_FALSE

    entry = (dist_state or {}).get(guard)
    if entry is None:
        min_avail, max_avail, may_undef = -1, -1, True
    else:
        min_avail, max_avail, may_undef = entry

    block_index = cfg.block_at(pos).index
    dominating = dom.get(block_index, set())
    dominated_by_define = any(
        (cfg.block_at(d).index == block_index and d < pos)
        or (
            cfg.block_at(d).index != block_index
            and cfg.block_at(d).index in dominating
        )
        for d in guard_defs
    )

    return BranchFacts(
        pc=pos,
        function=slice_.name,
        index=pos - slice_.start,
        opcode=instr.op.name.lower(),
        region=instr.region,
        region_based=instr.region_based,
        guard=guard,
        guard_value=guard_value,
        min_avail=min_avail,
        max_avail=max_avail,
        may_be_undefined=may_undef,
        reaching_defines=tuple(all_defs),
        guard_defines=tuple(guard_defs),
        in_region_defines=in_region,
        complement_only=bool(guard_defs)
        and all(code[d].pd1 != guard for d in guard_defs),
        dominated_by_define=dominated_by_define,
    )


def analyze_executable(
    executable: Executable,
    name: str = "<program>",
    distance: int = DEFAULT_DISTANCE,
) -> PredflowReport:
    """Run the predicate-flow analysis over every function."""
    report = PredflowReport(program=name, distance=distance)
    with telemetry.span("predflow", program=name):
        for slice_ in function_slices(executable):
            if len(slice_) == 0:
                continue
            cfg = FunctionCFG(executable, slice_)
            report.functions.append(analyze_cfg(executable, cfg, distance))
        if telemetry.enabled():
            registry = telemetry.get_registry()
            summary = report.summary()
            registry.counter("analysis.predflow.programs").inc()
            registry.counter("analysis.predflow.functions").inc(
                summary["functions"]
            )
            registry.counter("analysis.predflow.branches").inc(
                summary["branches"]
            )
            registry.counter("analysis.predflow.region_branches").inc(
                summary["region_branches"]
            )
            registry.counter("analysis.predflow.must_not_taken").inc(
                summary["must_not_taken"]
            )
            registry.counter("analysis.predflow.must_taken").inc(
                summary["must_taken"]
            )
            for verdict, count in summary["verdicts"].items():
                if count:
                    registry.counter(
                        f"analysis.predflow.verdict.{verdict}"
                    ).inc(count)
    return report


# ---------------------------------------------------------------------------
# Verifier rules RPA012 .. RPA017
# ---------------------------------------------------------------------------


def check_predflow_function(
    executable: Executable,
    facts: FunctionFacts,
    report: LintReport,
    distance: int = DEFAULT_DISTANCE,
) -> None:
    """Fire the predicate-flow rules over one function's facts.

    All six rules scope to *region-based* branches whose guard has a
    reaching define inside the branch's own region — unguarded,
    region-less, undefined-guard or out-of-region-guard branches are
    RPA002/RPA003/RPA004 territory and stay single-rule there.
    """
    code = executable.code

    def add(rule_id: str, branch: BranchFacts, message: str) -> None:
        report.add(
            rule_id,
            branch.function,
            branch.index,
            branch.pc,
            message,
            instruction=code[branch.pc],
        )

    for branch in facts.branches:
        instr = code[branch.pc]
        if not (instr.region_based and instr.op in _BRANCH_OPS):
            continue
        if branch.guard == P_TRUE or instr.region < 0:
            continue
        if not branch.guard_defines or not branch.in_region_defines:
            continue
        local = facts.start

        first_in = min(branch.in_region_defines)
        clobbers = [
            d
            for d in branch.guard_defines
            if code[d].region != instr.region
            and first_in < d < branch.pc
        ]
        if clobbers:
            add(
                "RPA012",
                branch,
                f"guard p{branch.guard} is redefined outside "
                f"region {instr.region} (at "
                f"{[d - local for d in clobbers]}) between its "
                f"in-region define at {first_in - local} and this "
                "branch",
            )
        elif first_in > branch.pc:
            add(
                "RPA017",
                branch,
                f"every in-region define of guard p{branch.guard} "
                f"(at {[d - local for d in branch.in_region_defines]}) "
                "sits after this branch: the guard is loop-carried "
                "and the branch consumes the previous iteration's "
                "value",
            )

        if branch.must_not_taken:
            reason = (
                "no feasible path reaches this branch"
                if branch.guard_value == GUARD_UNREACHABLE
                else f"guard p{branch.guard} is provably false on every "
                "feasible path"
            )
            add(
                "RPA013",
                branch,
                f"statically dead region exit: {reason}, so the branch "
                "can never be taken",
            )
        elif branch.must_taken:
            add(
                "RPA014",
                branch,
                f"region branch always taken: guard p{branch.guard} is "
                "provably true on every feasible path",
            )

        if branch.verdict(distance) == VERDICT_NEVER:
            add(
                "RPA015",
                branch,
                f"guard p{branch.guard} resolves at most "
                f"{branch.max_avail} instruction(s) before fetch on "
                f"every path — below availability distance {distance}, "
                "so SFP can never filter this branch",
            )

        if branch.complement_only:
            add(
                "RPA016",
                branch,
                f"guard p{branch.guard} is only ever written as a "
                "complement (pd2) target, so its defines never enter "
                "the PGU-visible define stream",
            )
