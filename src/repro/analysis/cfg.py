"""Per-function control-flow graphs over linked executables.

:mod:`repro.compiler.cfg` builds CFGs over *pre-link* functions with
symbolic labels; the verifier instead works on the linked
:class:`~repro.isa.program.Executable` — the form every simulation
consumes — so it sees exactly the instruction stream the machine will,
after every compiler pass and the link step have had their say.

Functions are laid out contiguously by :meth:`Program.link`, so each is
a half-open index range (:class:`FunctionSlice`).  Block leaders are the
classic ones: the function entry, branch targets, and the instruction
after any branch or (conditional) return.  Edges follow the machine
semantics in :mod:`repro.engine.interpreter`:

* ``BR`` under ``p0`` is always taken (no fall-through edge, whatever
  its ``kind`` claims);
* ``RET`` under ``p0`` leaves the function; a predicated ``RET`` may
  fall through;
* ``HALT`` stops the machine unconditionally — even under a false
  qualifying predicate;
* ``CALL`` returns to the next instruction, so it does not end a block.

Branches whose (already resolved, integer) target lies outside the
enclosing function are recorded in :attr:`FunctionCFG.escaping_branches`
rather than given an edge; the verifier reports them as ``RPA010``.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Executable
from repro.isa.registers import P_TRUE


@dataclass(frozen=True)
class FunctionSlice:
    """One function's contiguous ``[start, end)`` range of a linked
    executable."""

    name: str
    start: int
    end: int
    nparams: int

    def __len__(self) -> int:
        return self.end - self.start

    def contains(self, index: int) -> bool:
        return self.start <= index < self.end


def function_slices(executable: Executable) -> List[FunctionSlice]:
    """Every function of ``executable`` as a slice, in layout order."""
    entries = sorted(
        executable.function_entries.items(), key=lambda item: item[1]
    )
    slices = []
    for position, (name, start) in enumerate(entries):
        end = (
            entries[position + 1][1]
            if position + 1 < len(entries)
            else len(executable.code)
        )
        slices.append(
            FunctionSlice(
                name=name,
                start=start,
                end=end,
                nparams=executable.function_nparams.get(name, 0),
            )
        )
    return slices


def falls_through(instr: Instruction) -> bool:
    """Whether control can continue to the next instruction."""
    if instr.op is Opcode.HALT:
        return False  # HALT ignores its qualifying predicate
    if instr.op in (Opcode.BR, Opcode.RET) and instr.qp == P_TRUE:
        return False
    return True


@dataclass
class Block:
    """A maximal straight-line run of instructions (absolute indices)."""

    index: int
    start: int
    end: int  #: one past the last instruction
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start


class FunctionCFG:
    """Control-flow graph of one function of a linked executable."""

    def __init__(self, executable: Executable, slice_: FunctionSlice):
        self.executable = executable
        self.slice = slice_
        self.blocks: List[Block] = []
        #: absolute positions of branches targeting outside the function.
        self.escaping_branches: List[int] = []
        self._block_of: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        code = self.executable.code
        start, end = self.slice.start, self.slice.end
        if start >= end:
            return
        leaders: Set[int] = {start}
        for pos in range(start, end):
            instr = code[pos]
            if instr.op is Opcode.BR:
                target = instr.target
                if isinstance(target, int) and self.slice.contains(target):
                    leaders.add(target)
                else:
                    self.escaping_branches.append(pos)
                if pos + 1 < end:
                    leaders.add(pos + 1)
            elif instr.op in (Opcode.RET, Opcode.HALT) and pos + 1 < end:
                leaders.add(pos + 1)
        starts = sorted(leaders)
        for index, block_start in enumerate(starts):
            block_end = starts[index + 1] if index + 1 < len(starts) else end
            self.blocks.append(
                Block(index=index, start=block_start, end=block_end)
            )
            for pos in range(block_start, block_end):
                self._block_of[pos] = index
        for block in self.blocks:
            last = code[block.end - 1]
            succs = []
            if last.op is Opcode.BR:
                target = last.target
                if isinstance(target, int) and self.slice.contains(target):
                    succs.append(self._block_of[target])
            if falls_through(last) and block.end < end:
                succs.append(self._block_of[block.end])
            seen: Set[int] = set()
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    block.successors.append(succ)
        for block in self.blocks:
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.index)

    # -- queries -----------------------------------------------------------

    def block_at(self, pos: int) -> Block:
        """The block containing absolute instruction position ``pos``."""
        return self.blocks[self._block_of[pos]]

    def reachable(self) -> Set[int]:
        """Block indices reachable from the function entry."""
        if not self.blocks:
            return set()
        visited: Set[int] = set()
        stack = [0]
        while stack:
            index = stack.pop()
            if index in visited:
                continue
            visited.add(index)
            stack.extend(self.blocks[index].successors)
        return visited

    def reverse_postorder(self) -> List[int]:
        """Reachable block indices in reverse postorder (for dataflow)."""
        if not self.blocks:
            return []
        order: List[int] = []
        visited: Set[int] = set()
        # Iterative postorder: (block, next-successor-to-visit) pairs.
        stack = [(0, 0)]
        visited.add(0)
        while stack:
            index, child = stack[-1]
            succs = self.blocks[index].successors
            if child < len(succs):
                stack[-1] = (index, child + 1)
                succ = succs[child]
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(index)
        order.reverse()
        return order

    def fall_off_blocks(self) -> List[int]:
        """Blocks whose terminator can run past the function end."""
        code = self.executable.code
        return [
            block.index
            for block in self.blocks
            if block.end == self.slice.end
            and falls_through(code[block.end - 1])
        ]
