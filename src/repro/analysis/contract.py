"""Static/dynamic contract checking: simulation vs. proven facts.

:mod:`repro.analysis.predflow` proves per-branch facts from program
structure alone — guard provably false, guard resolved at least ``D``
instructions before fetch on every path, the set of compares whose
predicate write can reach a branch.  Every dynamic execution must obey
them, so they double as a machine-checked correctness oracle over the
whole trace/simulate stack: a dynamically-taken branch whose guard was
proven false, an SFP squash on a branch proven non-filterable, or a
guard resolved from a define the analysis says cannot reach it all mean
either the simulator or the analysis is wrong — and both are bugs worth
failing loudly over.

Three enforcement surfaces, one :class:`StaticContract`:

* :class:`ContractChecker` — an
  :class:`~repro.profiler.collector.EventCollector` validating sampled
  :class:`~repro.profiler.events.PredictionEvent` streams in-line with
  the object-core driver.  Disarmed it advertises a sampling rate no
  trace reaches, so the driver's sentinel skips the event path entirely
  (the profiler's own <3%-overhead trick; the contract benchmark gate
  holds it under 5%).
* :func:`check_trace` — vectorised validation of *every* branch of a
  recorded trace (works for all cores, since the trace precedes them),
  including the define-stream reachability check.
* :func:`check_flags` — validates the per-branch
  :class:`~repro.sim.driver.BranchFlags` of a simulation (any core)
  against the static squashability verdicts.

:func:`run_contract_gate` bundles them into the differential gate the
tests sweep over all workloads × configs × cores.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.analysis.predflow import (
    SAT_DISTANCE,
    VERDICT_NEVER,
    VERDICT_UNDEFINED,
    VERDICT_UNGUARDED,
    BranchFacts,
    PredflowReport,
    analyze_executable,
)
from repro.isa.registers import P_TRUE
from repro.pipeline.availability import DEFAULT_DISTANCE
from repro.profiler.collector import EventCollector, SiteTable
from repro.profiler.events import AVAIL_NEVER, SFPDecision
from repro.profiler.spec import ProfileSpec

#: Violation kinds (stable names; tests match on them).
TAKEN_DEAD = "taken-dead-branch"
NOT_TAKEN_CONST = "not-taken-const-branch"
FILTERED_UNFILTERABLE = "sfp-filtered-unfilterable"
AVAIL_BELOW_MIN = "avail-below-static-min"
AVAIL_ABOVE_MAX = "avail-above-static-max"
UNDEFINED_GUARD = "guard-unexpectedly-undefined"
DEFINE_NOT_REACHING = "define-not-reaching"
DEFINE_NOT_RECORDED = "define-not-recorded"
UNKNOWN_SITE = "unknown-branch-site"

#: A sampling rate no finite trace reaches: the driver's sentinel
#: ``(-seed) % rate`` never equals a branch index, so a disarmed
#: checker costs one integer comparison per branch.
DISARMED_RATE = 1 << 60


class ContractError(AssertionError):
    """A dynamic event contradicted a statically proven fact."""

    def __init__(self, violations: List["ContractViolation"]):
        self.violations = violations
        shown = [str(v) for v in violations[:20]]
        if len(violations) > 20:
            shown.append(f"... ({len(violations) - 20} more)")
        super().__init__(
            f"{len(violations)} static/dynamic contract violation(s):\n"
            + "\n".join(shown)
        )


@dataclass(frozen=True)
class ContractViolation:
    """One dynamic observation contradicting a static fact."""

    kind: str
    pc: int  #: static branch site
    seq: int  #: dynamic branch-stream index (-1 when aggregated)
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} @ pc={self.pc} seq={self.seq}: {self.detail}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pc": self.pc,
            "seq": self.seq,
            "detail": self.detail,
        }


class StaticContract:
    """The static claims of one program, indexed for dynamic checking."""

    def __init__(
        self, report: PredflowReport, distance: int = DEFAULT_DISTANCE
    ):
        self.program = report.program
        self.distance = distance
        self.facts: Dict[int, BranchFacts] = report.by_pc()
        self.never_filterable = {
            pc
            for pc, facts in self.facts.items()
            if facts.verdict(distance)
            in (VERDICT_NEVER, VERDICT_UNDEFINED, VERDICT_UNGUARDED)
        }

    @classmethod
    def for_executable(
        cls,
        executable,
        name: str = "<program>",
        distance: int = DEFAULT_DISTANCE,
    ) -> "StaticContract":
        return cls(
            analyze_executable(executable, name=name, distance=distance),
            distance=distance,
        )

    # -- event-level checks ------------------------------------------------

    def check_event(self, event) -> List[ContractViolation]:
        """Violations implied by one :class:`PredictionEvent`."""
        facts = self.facts.get(event.pc)
        if facts is None:
            return [
                ContractViolation(
                    UNKNOWN_SITE,
                    event.pc,
                    event.seq,
                    "dynamic branch at a site the static analysis "
                    "never reached",
                )
            ]
        out: List[ContractViolation] = []
        if event.taken and facts.must_not_taken:
            out.append(
                ContractViolation(
                    TAKEN_DEAD,
                    event.pc,
                    event.seq,
                    f"taken, but guard p{facts.guard} was proven "
                    f"{facts.guard_value}",
                )
            )
        if not event.taken and facts.must_taken:
            out.append(
                ContractViolation(
                    NOT_TAKEN_CONST,
                    event.pc,
                    event.seq,
                    f"not taken, but guard p{facts.guard} was proven true",
                )
            )
        if (
            event.sfp != SFPDecision.NOT_FILTERED
            and event.pc in self.never_filterable
        ):
            out.append(
                ContractViolation(
                    FILTERED_UNFILTERABLE,
                    event.pc,
                    event.seq,
                    f"SFP filtered a branch proven "
                    f"{facts.verdict(self.distance)!r} at distance "
                    f"{self.distance}",
                )
            )
        if facts.guard != P_TRUE:
            if event.avail == AVAIL_NEVER:
                if facts.min_avail >= 0 and not facts.may_be_undefined:
                    out.append(
                        ContractViolation(
                            UNDEFINED_GUARD,
                            event.pc,
                            event.seq,
                            f"guard p{facts.guard} never resolved, but "
                            "a define reaches on every path",
                        )
                    )
            elif facts.min_avail < 0:
                out.append(
                    ContractViolation(
                        DEFINE_NOT_REACHING,
                        event.pc,
                        event.seq,
                        f"guard p{facts.guard} resolved dynamically "
                        "(avail="
                        f"{event.avail}), but no define reaches "
                        "statically",
                    )
                )
            else:
                if event.avail < facts.min_avail:
                    out.append(
                        ContractViolation(
                            AVAIL_BELOW_MIN,
                            event.pc,
                            event.seq,
                            f"avail {event.avail} below the static "
                            f"minimum {facts.min_avail}",
                        )
                    )
                if (
                    facts.max_avail < SAT_DISTANCE
                    and event.avail > facts.max_avail
                ):
                    out.append(
                        ContractViolation(
                            AVAIL_ABOVE_MAX,
                            event.pc,
                            event.seq,
                            f"avail {event.avail} above the static "
                            f"maximum {facts.max_avail}",
                        )
                    )
        return out


class ContractChecker(EventCollector):
    """EventCollector validating sampled events against the contract.

    ``armed=False`` keeps the checker installable but inert: it
    advertises :data:`DISARMED_RATE`, so the driver's sampling sentinel
    never fires and the per-branch cost is one comparison (mirroring
    the no-collector path; the benchmark gate pins this under 5%).

    ``fail_fast`` raises :class:`ContractError` on the first violating
    event; otherwise violations accumulate and
    :meth:`raise_on_violations` reports them all.
    """

    def __init__(
        self,
        contract: StaticContract,
        spec: ProfileSpec = ProfileSpec(),
        sites: Optional[SiteTable] = None,
        armed: bool = True,
        fail_fast: bool = False,
    ):
        super().__init__(spec, sites)
        self.contract = contract
        self.armed = armed
        self.fail_fast = fail_fast
        self.events_checked = 0
        self.violations: List[ContractViolation] = []
        if not armed:
            # seed 1 puts the first sample at index rate-1 == 2**60-1,
            # beyond any finite trace (seed 0 would sample index 0).
            self.rate = DISARMED_RATE
            self.seed = 1

    def collect(self, event) -> None:
        self.events_checked += 1
        found = self.contract.check_event(event)
        if found:
            self.violations.extend(found)
            if self.fail_fast:
                raise ContractError(found)

    def close(self) -> None:
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("analysis.contract.events").inc(
                self.events_checked
            )
            if self.violations:
                registry.counter("analysis.contract.violations").inc(
                    len(self.violations)
                )

    def raise_on_violations(self) -> None:
        if self.violations:
            raise ContractError(self.violations)


# ---------------------------------------------------------------------------
# Whole-trace and flags-level checks (all cores)
# ---------------------------------------------------------------------------


def check_trace(
    trace,
    contract: StaticContract,
    max_violations: int = 1000,
) -> List[ContractViolation]:
    """Validate every branch of ``trace`` against the static claims.

    Covers the taken/not-taken facts, the availability bounds, and the
    define-stream reachability claim (each resolved guard must trace
    back to a compare the analysis says can reach the branch).
    Vectorised per static site, so it is cheap enough to run as a gate
    over full traces.
    """
    violations: List[ContractViolation] = []
    b_pc = trace.b_pc
    b_idx = trace.b_idx
    b_taken = trace.b_taken
    b_guard_def = trace.b_guard_def
    d_idx = trace.d_idx
    d_pc = trace.d_pc

    def add(kind, pc, seqs, detail):
        for seq in np.atleast_1d(seqs)[:8]:
            if len(violations) < max_violations:
                violations.append(
                    ContractViolation(kind, int(pc), int(seq), detail)
                )

    for pc in np.unique(b_pc):
        facts = contract.facts.get(int(pc))
        sel = np.nonzero(b_pc == pc)[0]
        if facts is None:
            add(
                UNKNOWN_SITE,
                pc,
                sel,
                "dynamic branch at a site the static analysis never "
                "reached",
            )
            continue
        taken = b_taken[sel]
        if facts.must_not_taken and taken.any():
            add(
                TAKEN_DEAD,
                pc,
                sel[taken],
                f"taken, but guard p{facts.guard} was proven "
                f"{facts.guard_value}",
            )
        if facts.must_taken and (~taken).any():
            add(
                NOT_TAKEN_CONST,
                pc,
                sel[~taken],
                f"not taken, but guard p{facts.guard} was proven true",
            )
        if facts.guard == P_TRUE:
            continue
        guard_def = b_guard_def[sel]
        defined = guard_def >= 0
        avail = b_idx[sel] - guard_def
        if (
            (~defined).any()
            and facts.min_avail >= 0
            and not facts.may_be_undefined
        ):
            add(
                UNDEFINED_GUARD,
                pc,
                sel[~defined],
                f"guard p{facts.guard} never resolved, but a define "
                "reaches on every path",
            )
        if defined.any():
            if facts.min_avail < 0:
                add(
                    DEFINE_NOT_REACHING,
                    pc,
                    sel[defined],
                    f"guard p{facts.guard} resolved dynamically, but "
                    "no define reaches statically",
                )
            else:
                below = defined & (avail < facts.min_avail)
                if below.any():
                    add(
                        AVAIL_BELOW_MIN,
                        pc,
                        sel[below],
                        f"avail below the static minimum "
                        f"{facts.min_avail}",
                    )
                if facts.max_avail < SAT_DISTANCE:
                    above = defined & (avail > facts.max_avail)
                    if above.any():
                        add(
                            AVAIL_ABOVE_MAX,
                            pc,
                            sel[above],
                            f"avail above the static maximum "
                            f"{facts.max_avail}",
                        )
                # Each resolved guard must map to a define-stream row
                # produced by a compare that statically reaches here.
                gdef = guard_def[defined]
                rows = np.searchsorted(d_idx, gdef)
                in_range = rows < len(d_idx)
                rows_clipped = np.minimum(rows, max(len(d_idx) - 1, 0))
                matches = in_range & (
                    d_idx[rows_clipped] == gdef
                ) if len(d_idx) else np.zeros(len(gdef), dtype=bool)
                if (~matches).any():
                    add(
                        DEFINE_NOT_RECORDED,
                        pc,
                        sel[defined][~matches],
                        "resolved guard has no matching define-stream "
                        "row",
                    )
                if matches.any():
                    def_pcs = d_pc[rows_clipped[matches]]
                    allowed = np.isin(
                        def_pcs, np.asarray(facts.guard_defines)
                    )
                    if (~allowed).any():
                        bad = np.unique(def_pcs[~allowed]).tolist()
                        add(
                            DEFINE_NOT_REACHING,
                            pc,
                            sel[defined][matches][~allowed],
                            f"guard resolved by define(s) at {bad}, "
                            "which the analysis says cannot reach "
                            "this branch",
                        )
    if telemetry.enabled():
        registry = telemetry.get_registry()
        registry.counter("analysis.contract.branches").inc(
            int(trace.num_branches)
        )
        if violations:
            registry.counter("analysis.contract.violations").inc(
                len(violations)
            )
    return violations


def check_flags(
    trace,
    flags,
    contract: StaticContract,
    squash_known_true: bool = False,
    max_violations: int = 1000,
) -> List[ContractViolation]:
    """Validate a simulation's per-branch flags (any core).

    An SFP squash on a branch whose guard is provably never resolved
    ``distance`` back (or never guarded at all) contradicts the filter
    model; a squash asserting not-taken on a provably-true guard
    contradicts the value analysis.
    """
    violations: List[ContractViolation] = []
    squashed = np.asarray(flags.squashed, dtype=bool)
    seqs = np.nonzero(squashed)[0]
    for seq in seqs:
        pc = int(trace.b_pc[seq])
        facts = contract.facts.get(pc)
        if facts is None:
            kind, detail = UNKNOWN_SITE, (
                "squash at a site the static analysis never reached"
            )
        elif pc in contract.never_filterable:
            kind, detail = FILTERED_UNFILTERABLE, (
                f"SFP squashed a branch proven "
                f"{facts.verdict(contract.distance)!r} at distance "
                f"{contract.distance}"
            )
        elif facts.must_taken and not squash_known_true:
            kind, detail = NOT_TAKEN_CONST, (
                "SFP asserted not-taken, but the guard was proven true"
            )
        else:
            continue
        if len(violations) < max_violations:
            violations.append(ContractViolation(kind, pc, int(seq), detail))
    return violations


# ---------------------------------------------------------------------------
# The differential gate
# ---------------------------------------------------------------------------


@dataclass
class GateResult:
    """Outcome of one workload × config × core contract-gate run."""

    workload: str
    config: str
    core: str
    branches: int
    events_checked: int
    violations: List[ContractViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_on_violations(self) -> None:
        if self.violations:
            raise ContractError(self.violations)


def run_contract_gate(
    workload_name: str,
    hyperblocks: bool = True,
    core: str = "object",
    scale: str = "tiny",
    distance: int = DEFAULT_DISTANCE,
    predictor_name: str = "gshare",
) -> GateResult:
    """Replay one workload against its own static contract.

    Compiles the workload, runs predflow, records/loads the trace, then
    (1) checks the whole trace, (2) simulates with SFP+PGU and
    ``record_flags`` on the requested core and checks the flags, and
    (3) on the object core additionally installs an armed
    :class:`ContractChecker` at sampling rate 1.
    """
    from repro.compiler import config as config_mod
    from repro.predictors import make_predictor
    from repro.predictors.pgu import PGUConfig
    from repro.predictors.sfp import SFPConfig
    from repro.sim.driver import SimOptions, simulate
    from repro.workloads import get_workload

    workload = get_workload(workload_name)
    config = (
        config_mod.HYPERBLOCK if hyperblocks else config_mod.BASELINE
    )
    executable = workload.compile(scale, config).executable
    contract = StaticContract.for_executable(
        executable,
        name=f"{workload_name}/{scale}",
        distance=distance,
    )
    trace = workload.trace(scale, hyperblocks=hyperblocks)

    violations = list(check_trace(trace, contract))
    options = SimOptions(
        distance=distance,
        sfp=SFPConfig(),
        pgu=PGUConfig(),
        record_flags=True,
    )
    checker = None
    if core == "object":
        checker = ContractChecker(contract, spec=ProfileSpec(rate=1))
    result = simulate(
        trace,
        make_predictor(predictor_name),
        options,
        collector=checker,
        core=core,
    )
    violations.extend(
        check_flags(
            trace,
            result.flags,
            contract,
            squash_known_true=options.sfp.squash_known_true,
        )
    )
    if checker is not None:
        violations.extend(checker.violations)
    return GateResult(
        workload=workload_name,
        config="hyperblock" if hyperblocks else "baseline",
        core=core,
        branches=int(trace.num_branches),
        events_checked=checker.events_checked if checker else 0,
        violations=violations,
    )
