"""Diagnostics: rules, severities, locations and the lint report.

Every check the static verifier performs is registered here as a
:class:`Rule` with a stable id (``RPA0xx``), a severity and a short
rationale.  Checks emit :class:`Diagnostic` records through a
:class:`LintReport`; locations are ``program:function:index`` (the index
is function-local, matching ``repro disasm`` output) and each diagnostic
carries the offending instruction rendered via
:func:`repro.isa.printer.format_instruction`.

The rule catalogue is documented in ``docs/static-analysis.md``.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction
from repro.isa.printer import format_instruction


class Severity(enum.IntEnum):
    """How bad a diagnostic is.  Only ``ERROR`` fails a lint run."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One registered check: stable id, default severity, rationale."""

    id: str
    severity: Severity
    title: str
    rationale: str


#: The rule catalogue.  Ids are stable across releases: never renumber,
#: only append.  Severities here are defaults; a rule always fires at its
#: registered severity.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "RPA001",
            Severity.ERROR,
            "use of undefined GPR",
            "a general register is read on some path from the function "
            "entry that contains no write to it; the machine reads 0, "
            "which is almost always a builder or compiler bug",
        ),
        Rule(
            "RPA002",
            Severity.ERROR,
            "use of undefined predicate",
            "a qualifying predicate (or an AND/OR-type compare target) is "
            "read without a reaching CMP that writes it; the predicate "
            "file resets to false at activation, so the guarded code is "
            "silently dead",
        ),
        Rule(
            "RPA003",
            Severity.ERROR,
            "region-based branch without region id",
            "region_based instructions must carry region >= 0; the "
            "region id keys every per-region statistic the experiments "
            "report",
        ),
        Rule(
            "RPA004",
            Severity.ERROR,
            "region-based branch not guarded from its region",
            "a region-based branch must be guarded by a non-p0 predicate "
            "whose defining compare sits inside the same region — the "
            "invariant both SFP and PGU feed on",
        ),
        Rule(
            "RPA005",
            Severity.INFO,
            "region ids not contiguous within function",
            "lowering numbers a function's regions consecutively, so a "
            "gap means a later pass fused or deleted regions "
            "(merge_regions does this by design); surfaced so per-region "
            "breakdowns are read with that in mind",
        ),
        Rule(
            "RPA006",
            Severity.ERROR,
            "malformed compare predicate pair",
            "a CMP must write pd1 (optionally with a distinct complement "
            "pd2) and may never target the hardwired p0",
        ),
        Rule(
            "RPA007",
            Severity.WARNING,
            "unreachable code",
            "instructions that no path from the function entry reaches "
            "are dead weight and usually betray a mis-lowered branch; "
            "the compiler's single trailing safety ``ret`` is exempt",
        ),
        Rule(
            "RPA008",
            Severity.ERROR,
            "control may fall off the function end",
            "a path reaches the last instruction of the function and "
            "falls through into the next function (or off the program)",
        ),
        Rule(
            "RPA009",
            Severity.ERROR,
            "call arity mismatch",
            "a CALL stages a different number of arguments than the "
            "callee declares; the surplus or missing registers read as "
            "garbage/zero in the callee frame",
        ),
        Rule(
            "RPA010",
            Severity.ERROR,
            "branch target outside the enclosing function",
            "branches must stay intra-function (calls are the only "
            "inter-function control transfer); Program.link cannot catch "
            "this for pre-resolved integer targets",
        ),
        Rule(
            "RPA011",
            Severity.WARNING,
            "predicated HALT executes unconditionally",
            "the machine ignores the qualifying predicate on HALT, so a "
            "guard on it is misleading dead syntax",
        ),
        Rule(
            "RPA012",
            Severity.WARNING,
            "region guard clobbered outside its region",
            "a region-based branch's guard is redefined outside the "
            "region between its in-region compare and the branch, so "
            "the value the branch consumes may not be the one its "
            "region computed — SFP/PGU statistics keyed on the region "
            "would misattribute it",
        ),
        Rule(
            "RPA013",
            Severity.WARNING,
            "statically dead region exit",
            "the guard of a region-based branch is provably false on "
            "every feasible path (or no feasible path reaches the "
            "branch): the exit can never be taken and is statically "
            "squashable dead weight",
        ),
        Rule(
            "RPA014",
            Severity.INFO,
            "region branch always taken",
            "the guard of a region-based branch is provably true on "
            "every feasible path, so the 'conditional' branch always "
            "fires; if-conversion legitimately produces this when the "
            "complement guard exits the region first, but it also "
            "flags genuinely dead layout after the branch",
        ),
        Rule(
            "RPA015",
            Severity.INFO,
            "region branch never SFP-filterable",
            "on every path the guard resolves fewer than "
            "availability-distance instructions before the branch's "
            "fetch, so the squash false-path filter can never act on "
            "it; surfaced so static coverage bounds are read with that "
            "in mind",
        ),
        Rule(
            "RPA016",
            Severity.INFO,
            "PGU-invisible complement guard",
            "every reaching define writes the guard as the complement "
            "(pd2) target; the define stream records the primary "
            "predicate only, so predicate global update never sees "
            "this guard's value",
        ),
        Rule(
            "RPA017",
            Severity.WARNING,
            "loop-carried region guard",
            "every in-region define of the guard sits after the "
            "branch: the guard only reaches it around the loop back "
            "edge, so the branch consumes the previous iteration's "
            "value — legal, but easily a rotation bug",
        ),
    )
}


@dataclass
class Diagnostic:
    """One finding: a rule violation at a specific instruction."""

    rule_id: str
    program: str
    function: str
    index: int  #: function-local instruction index
    abs_index: int  #: absolute index in the linked executable
    message: str
    instruction: Optional[Instruction] = None

    @property
    def severity(self) -> Severity:
        return RULES[self.rule_id].severity

    @property
    def location(self) -> str:
        return f"{self.program}:{self.function}:{self.index}"

    def render(self) -> str:
        line = (
            f"{self.location}: {self.severity.label} "
            f"{self.rule_id}: {self.message}"
        )
        if self.instruction is not None:
            line += (
                f"\n    {self.index:5d}  "
                f"{format_instruction(self.instruction)}"
            )
        return line

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "program": self.program,
            "function": self.function,
            "index": self.index,
            "abs_index": self.abs_index,
            "location": self.location,
            "message": self.message,
        }
        if self.instruction is not None:
            payload["instruction"] = format_instruction(self.instruction)
        return payload


class StaticAnalysisError(Exception):
    """Raised by ``Program.link(verify=True)`` on error diagnostics.

    Carries *every* collected diagnostic — most severe first, then by
    ``program:function:index`` — so a failing link never hides findings
    behind a truncated summary.
    """

    def __init__(self, report: "LintReport"):
        self.report = report
        ordered = sorted(
            report.diagnostics,
            key=lambda d: (-d.severity, d.program, d.function, d.index),
        )
        lines = [d.render().splitlines()[0] for d in ordered]
        counts = report.counts()
        header = (
            f"static analysis found {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
        super().__init__("\n".join([header] + lines))


@dataclass
class LintReport:
    """All diagnostics from analysing one program."""

    program: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(
        self,
        rule_id: str,
        function: str,
        index: int,
        abs_index: int,
        message: str,
        instruction: Optional[Instruction] = None,
    ) -> Diagnostic:
        if rule_id not in RULES:
            raise KeyError(f"unregistered rule id {rule_id!r}")
        diagnostic = Diagnostic(
            rule_id=rule_id,
            program=self.program,
            function=function,
            index=index,
            abs_index=abs_index,
            message=message,
            instruction=instruction,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    # -- queries -----------------------------------------------------------

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        """Diagnostic counts keyed by severity label."""
        counts = {s.label: 0 for s in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.label] += 1
        return counts

    def rule_ids(self) -> List[str]:
        """Distinct rule ids that fired, sorted."""
        return sorted({d.rule_id for d in self.diagnostics})

    def sort(self) -> None:
        """Order diagnostics by program position, then rule id."""
        self.diagnostics.sort(key=lambda d: (d.abs_index, d.rule_id))

    def raise_on_errors(self) -> None:
        if self.has_errors:
            raise StaticAnalysisError(self)

    # -- rendering ---------------------------------------------------------

    def render(self, min_severity: Severity = Severity.INFO) -> str:
        shown = [
            d for d in self.diagnostics if d.severity >= min_severity
        ]
        lines = [d.render() for d in shown]
        counts = self.counts()
        lines.append(
            f"{self.program}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
