"""Lint driver: run every rule over a linked program.

:func:`lint_executable` is the core entry point (it is what
``Program.link(verify=True)`` and the ``repro lint`` CLI command call);
:func:`lint_program` is a convenience that links first.

Instrumented with :mod:`repro.telemetry`: a ``lint`` span per program
plus ``analysis.*`` counters (functions/blocks/instructions analysed,
diagnostics by severity, firings per rule id), so ``repro lint
--metrics out.jsonl`` leaves an auditable record of analyzer runtime
and findings.
"""

from repro import telemetry
from repro.analysis.cfg import FunctionCFG, function_slices
from repro.analysis.diagnostics import LintReport
from repro.analysis.predflow import analyze_cfg, check_predflow_function
from repro.analysis.rules import check_function
from repro.isa.program import Executable, Program


def lint_executable(
    executable: Executable, name: str = "<program>"
) -> LintReport:
    """Run the full rule catalogue over a linked executable."""
    report = LintReport(program=name)
    with telemetry.span("lint", program=name):
        blocks = 0
        slices = function_slices(executable)
        for slice_ in slices:
            cfg = FunctionCFG(executable, slice_)
            blocks += len(cfg.blocks)
            check_function(executable, cfg, report)
            if len(slice_):
                facts = analyze_cfg(executable, cfg)
                check_predflow_function(executable, facts, report)
        report.sort()
        if telemetry.enabled():
            registry = telemetry.get_registry()
            registry.counter("analysis.programs").inc()
            registry.counter("analysis.functions").inc(len(slices))
            registry.counter("analysis.blocks").inc(blocks)
            registry.counter("analysis.instructions").inc(
                len(executable.code)
            )
            for severity, count in report.counts().items():
                if count:
                    registry.counter(
                        f"analysis.diagnostics.{severity}"
                    ).inc(count)
            for diagnostic in report.diagnostics:
                registry.counter(
                    f"analysis.rule.{diagnostic.rule_id}"
                ).inc()
    return report


def lint_program(
    program: Program, entry: str = "main", name: str = "<program>"
) -> LintReport:
    """Link ``program`` (without verification) and lint the result."""
    return lint_executable(program.link(entry), name=name)
