"""Predicate-aware static verification of linked ISA programs.

The paper's two mechanisms (SFP and PGU) rest on invariants of
predicated code — every region-based branch is guarded by a qualifying
predicate defined inside its own region, predicate and GPR defines reach
their uses, control never falls off a function — and a workload that
silently violates them corrupts every downstream experiment.  This
package pins those invariants down statically:

* :mod:`repro.analysis.cfg` — per-function control-flow graphs over
  linked :class:`~repro.isa.program.Executable`s (the compiler's own
  :mod:`repro.compiler.cfg` works pre-link, on symbolic labels).
* :mod:`repro.analysis.dataflow` — a small forward-dataflow framework
  (optimistic worklist over reverse postorder).
* :mod:`repro.analysis.diagnostics` — the rule catalogue (stable
  ``RPA0xx`` ids with severities), diagnostics and the
  :class:`LintReport`.
* :mod:`repro.analysis.rules` — the checks themselves.
* :mod:`repro.analysis.predflow` — the predicate-flow analysis:
  per-branch reaching defines, guard availability bounds and abstract
  guard values (rules ``RPA012``–``RPA017``, the ``repro analyze``
  report, and the static side of the contract checker).
* :mod:`repro.analysis.contract` — static/dynamic contract checking:
  replay simulation events, traces and flags against the proven facts
  and fail loudly on any contradiction.
* :mod:`repro.analysis.verifier` — the :func:`lint_executable` /
  :func:`lint_program` drivers, telemetry-instrumented.

Three ways in:

* ``Program.link(verify=True)`` — raise :class:`StaticAnalysisError`
  at link time on any error-severity diagnostic;
* ``repro lint`` — the CLI command (text or ``--json``, non-zero exit
  on errors);
* call :func:`lint_executable` directly from tests or tools.

The rule catalogue is documented in ``docs/static-analysis.md``.
"""

from repro.analysis.cfg import (
    Block,
    FunctionCFG,
    FunctionSlice,
    falls_through,
    function_slices,
)
from repro.analysis.contract import (
    ContractChecker,
    ContractError,
    ContractViolation,
    GateResult,
    StaticContract,
    check_flags,
    check_trace,
    run_contract_gate,
)
from repro.analysis.dataflow import (
    ForwardProblem,
    instruction_states,
    solve_forward,
)
from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    LintReport,
    Rule,
    Severity,
    StaticAnalysisError,
)
from repro.analysis.predflow import (
    BranchFacts,
    FunctionFacts,
    PredflowReport,
    analyze_cfg,
    analyze_executable,
)
from repro.analysis.verifier import lint_executable, lint_program

__all__ = [
    "Block",
    "BranchFacts",
    "ContractChecker",
    "ContractError",
    "ContractViolation",
    "Diagnostic",
    "ForwardProblem",
    "FunctionCFG",
    "FunctionFacts",
    "FunctionSlice",
    "GateResult",
    "LintReport",
    "PredflowReport",
    "RULES",
    "Rule",
    "Severity",
    "StaticAnalysisError",
    "StaticContract",
    "analyze_cfg",
    "analyze_executable",
    "check_flags",
    "check_trace",
    "falls_through",
    "function_slices",
    "instruction_states",
    "lint_executable",
    "lint_program",
    "run_contract_gate",
    "solve_forward",
]
