"""Register-file conventions.

The machine has 64 general-purpose registers and 64 one-bit predicate
registers per *frame*.  Like the IA-64 register stack engine, each function
activation gets a fresh register frame: a call allocates new GPR and
predicate files, argument registers are copied in, and the return value is
copied back out.  This keeps the compiler free of caller-save bookkeeping
without changing anything the branch predictor can observe.

Conventions:

* ``r0`` is hardwired to zero (writes are ignored).
* ``r1 .. r55`` are allocatable by the register allocator.
* ``r56 .. r61`` (:data:`ARG_BASE` ..) stage up to :data:`MAX_ARGS` call
  arguments and, by reuse of ``r56``, the return value.
* ``r62`` (:data:`SCRATCH_REG`) is reserved for spill-address arithmetic.
* ``r63`` (:data:`R_SP`) is the stack pointer used for spill slots.
* ``p0`` is hardwired to true; ``p1 .. p63`` are allocatable.
"""

NUM_GPR = 64
NUM_PRED = 64

R_ZERO = 0
#: First argument-staging register; argument *i* travels in ``ARG_BASE + i``.
ARG_BASE = 56
MAX_ARGS = 6
#: Register holding a function's return value on ``RET`` (aliases ARG_BASE).
R_RETVAL = 56
SCRATCH_REG = 62
R_SP = 63

#: Predicate register hardwired to true.
P_TRUE = 0

#: Highest GPR index the register allocator may hand out.
LAST_ALLOCATABLE_GPR = ARG_BASE - 1

#: Number of predicate registers the compiler may allocate (p1..p63).
ALLOCATABLE_PREDS = NUM_PRED - 1

#: 64-bit two's-complement bounds used for value wrapping.
WORD_MASK = (1 << 64) - 1
WORD_SIGN = 1 << 63


def wrap(value: int) -> int:
    """Wrap an unbounded Python int to signed 64-bit two's complement."""
    value &= WORD_MASK
    if value & WORD_SIGN:
        value -= 1 << 64
    return value
