"""Program containers and the link step.

A :class:`Program` is a set of :class:`Function` bodies plus global-array
declarations.  :meth:`Program.link` resolves symbolic labels and call
targets to absolute instruction indices, producing an :class:`Executable`
that the interpreter decodes into parallel arrays.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode


class LinkError(Exception):
    """A symbolic reference could not be resolved at link time."""


@dataclass
class Function:
    """A function body: linear code with symbolic intra-function labels.

    Attributes:
        name: function name (``main`` is the entry point).
        nparams: number of parameters (arrive in the argument registers).
        code: the instruction list.
        labels: label name -> index into :attr:`code`.
        frame_slots: stack words the prologue must reserve for spills.
    """

    name: str
    nparams: int = 0
    code: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    frame_slots: int = 0

    def add_label(self, name: str) -> None:
        """Attach ``name`` to the next instruction to be appended."""
        if name in self.labels:
            raise LinkError(f"duplicate label {name!r} in {self.name}")
        self.labels[name] = len(self.code)

    def append(self, instr: Instruction) -> None:
        self.code.append(instr)


@dataclass
class GlobalArray:
    """A global word array placed in flat memory at link time."""

    name: str
    size: int
    base: int = -1  #: assigned by :meth:`Program.link`


@dataclass
class Program:
    """An unlinked program: functions plus global data declarations."""

    functions: Dict[str, Function] = field(default_factory=dict)
    globals: Dict[str, GlobalArray] = field(default_factory=dict)
    #: extra memory words reserved above globals for the spill stack.
    stack_words: int = 1 << 16

    def add_function(self, function: Function) -> None:
        if function.name in self.functions:
            raise LinkError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function

    def add_global(self, name: str, size: int) -> GlobalArray:
        if name in self.globals:
            raise LinkError(f"duplicate global {name!r}")
        if size <= 0:
            raise LinkError(f"global {name!r} must have positive size")
        array = GlobalArray(name, size)
        self.globals[name] = array
        return array

    def link(self, entry: str = "main", verify: bool = False) -> "Executable":
        """Resolve all symbolic references and lay out memory.

        Functions are concatenated in insertion order (entry first);
        branch targets become absolute instruction indices and call
        targets become entry indices.  Global arrays are packed from
        address 0; the spill stack sits above them, growing down from
        :attr:`Executable.memory_words`.

        With ``verify=True`` the linked executable is additionally run
        through the predicate-aware static verifier
        (:mod:`repro.analysis`); any error-severity diagnostic raises
        :class:`repro.analysis.StaticAnalysisError`.
        """
        if entry not in self.functions:
            raise LinkError(f"no entry function {entry!r}")

        order = [entry] + [n for n in self.functions if n != entry]
        entries: Dict[str, int] = {}
        offset = 0
        for name in order:
            entries[name] = offset
            offset += len(self.functions[name].code)

        code: List[Instruction] = []
        index_to_site: List[Tuple[str, int]] = []
        for name in order:
            function = self.functions[name]
            base = entries[name]
            for local_index, instr in enumerate(function.code):
                resolved = instr.copy()
                if resolved.op is Opcode.BR:
                    resolved.target = base + self._resolve_label(
                        function, resolved.target
                    )
                elif resolved.op is Opcode.CALL:
                    if resolved.target not in entries:
                        raise LinkError(
                            f"call to unknown function {resolved.target!r} "
                            f"from {name}"
                        )
                    resolved.target = entries[resolved.target]
                code.append(resolved)
                index_to_site.append((name, local_index))

        base_addr = 0
        for array in self.globals.values():
            array.base = base_addr
            base_addr += array.size
        memory_words = base_addr + self.stack_words

        executable = Executable(
            code=code,
            entry=entries[entry],
            function_entries=entries,
            function_nparams={
                name: self.functions[name].nparams for name in order
            },
            function_frame_slots={
                name: self.functions[name].frame_slots for name in order
            },
            globals={name: g.base for name, g in self.globals.items()},
            global_sizes={name: g.size for name, g in self.globals.items()},
            memory_words=memory_words,
            index_to_site=index_to_site,
        )
        if verify:
            # Imported lazily: repro.analysis depends on this module.
            from repro.analysis import lint_executable

            lint_executable(executable).raise_on_errors()
        return executable

    @staticmethod
    def _resolve_label(function: Function, target) -> int:
        if isinstance(target, int):
            return target
        if target is None or target not in function.labels:
            raise LinkError(
                f"unresolved label {target!r} in function {function.name}"
            )
        return function.labels[target]


@dataclass
class Executable:
    """A linked program ready for interpretation.

    ``code[i].target`` is an absolute index for every ``BR``/``CALL``.
    """

    code: List[Instruction]
    entry: int
    function_entries: Dict[str, int]
    function_nparams: Dict[str, int]
    function_frame_slots: Dict[str, int]
    globals: Dict[str, int]
    global_sizes: Dict[str, int]
    memory_words: int
    index_to_site: List[Tuple[str, int]]

    #: reverse map: entry index -> function name (built lazily).
    _entry_names: Optional[Dict[int, str]] = None

    def __len__(self) -> int:
        return len(self.code)

    def function_at(self, index: int) -> str:
        """Name of the function containing instruction ``index``."""
        return self.index_to_site[index][0]

    def entry_name(self, entry_index: int) -> str:
        """Function name for an entry index (e.g. a ``CALL`` target)."""
        if self._entry_names is None:
            self._entry_names = {
                v: k for k, v in self.function_entries.items()
            }
        return self._entry_names[entry_index]

    def global_base(self, name: str) -> int:
        """Base address of a global array."""
        return self.globals[name]

    def static_branch_sites(self) -> List[int]:
        """Indices of instructions that are branch-prediction events."""
        return [
            i for i, instr in enumerate(self.code) if instr.is_branch_event()
        ]
