"""Opcode and sub-operation enumerations for the predicated ISA."""

import enum


class Opcode(enum.IntEnum):
    """Primary operation of an instruction.

    The set is deliberately small — just enough to compile a C-like
    language — because the branch-prediction study only observes compares,
    predicate writes and branches; the ALU exists to give those events
    realistic data dependences and spacing.
    """

    NOP = 0
    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4  #: truncating signed division (C semantics)
    MOD = 5  #: remainder with the sign of the dividend (C semantics)
    AND = 6
    OR = 7
    XOR = 8
    SHL = 9
    SHR = 10  #: logical right shift
    SRA = 11  #: arithmetic right shift
    MOV = 12
    LOAD = 13  #: ``rd = mem[R[ra] + imm]`` (word addressed)
    STORE = 14  #: ``mem[R[ra] + imm] = R[rb]``
    CMP = 15  #: compare, writing a predicate pair per :class:`CmpType`
    BR = 16  #: branch to ``target`` iff the qualifying predicate holds
    CALL = 17  #: call function ``target``; return value lands in ``rd``
    RET = 18  #: return ``R[ra]`` (or ``imm``) to the caller
    HALT = 19  #: stop the machine (end of ``main``)


#: Opcodes that read ``R[ra]`` as their first source.
ALU_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SRA,
    }
)


class Relation(enum.IntEnum):
    """Compare relation evaluated by :attr:`Opcode.CMP` (signed 64-bit)."""

    EQ = 0
    NE = 1
    LT = 2
    LE = 3
    GT = 4
    GE = 5

    def negated(self) -> "Relation":
        """The relation that holds exactly when this one does not."""
        return _NEGATION[self]

    def evaluate(self, a: int, b: int) -> bool:
        """Apply the relation to two (signed) integers."""
        if self is Relation.EQ:
            return a == b
        if self is Relation.NE:
            return a != b
        if self is Relation.LT:
            return a < b
        if self is Relation.LE:
            return a <= b
        if self is Relation.GT:
            return a > b
        return a >= b


_NEGATION = {
    Relation.EQ: Relation.NE,
    Relation.NE: Relation.EQ,
    Relation.LT: Relation.GE,
    Relation.LE: Relation.GT,
    Relation.GT: Relation.LE,
    Relation.GE: Relation.LT,
}


class CmpType(enum.IntEnum):
    """IA-64 compare *type*: how the predicate pair ``(pd1, pd2)`` is written.

    With qualifying predicate ``qp`` and compare result ``r``:

    * ``NORMAL``: if ``qp``: ``pd1 = r``, ``pd2 = not r``; else unchanged.
    * ``UNC`` (unconditional): if ``qp``: as NORMAL; else *both* targets are
      cleared to false.  This is the compare type if-conversion uses for
      nested conditions — a guard nested under a false outer predicate must
      read false, never stale.
    * ``AND``: if ``qp`` and ``r`` is false: both targets cleared; otherwise
      unchanged.  Used to accumulate conjunctions.
    * ``OR``: if ``qp`` and ``r`` is true: both targets set; otherwise
      unchanged.  Used to accumulate disjunctions.
    """

    NORMAL = 0
    UNC = 1
    AND = 2
    OR = 3


class BranchKind(enum.IntEnum):
    """Classification of a branch site, recorded in traces.

    ``UNCOND`` branches (``qp`` = p0, fixed target) are not prediction
    events; all other kinds are.
    """

    UNCOND = 0
    COND = 1  #: ordinary forward conditional branch
    LOOP = 2  #: loop back-edge (conditional)
    EXIT = 3  #: side exit out of a predicated region
    CALL = 4  #: predicated call treated as a branch event
    RET = 5  #: predicated return treated as a branch event
