"""The :class:`Instruction` record.

Instructions are flat, slot-based records rather than nested operand
objects: the interpreter decodes a program into parallel arrays, and a flat
layout keeps both that decoding and the compiler's rewriting passes simple.
Unused slots hold ``-1`` (or ``None`` for :attr:`target`).
"""

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.opcodes import ALU_OPCODES, BranchKind, CmpType, Opcode, Relation
from repro.isa.registers import P_TRUE


@dataclass
class Instruction:
    """One predicated instruction.

    Attributes:
        op: the :class:`~repro.isa.opcodes.Opcode`.
        qp: qualifying predicate register; ``0`` (p0) means always execute.
        rd: destination GPR, or ``-1``.
        ra: first source GPR, or ``-1`` (then ``imm`` is the first source
            for ``MOV``/``LOAD``/``RET``).
        rb: second source GPR, or ``-1`` (then ``imm`` is the second source
            for ALU ops, ``CMP``).
        imm: immediate operand / memory displacement.
        pd1: first predicate destination of a ``CMP``, or ``-1``.
        pd2: second (complement) predicate destination, or ``-1``.
        crel: compare relation (``CMP`` only).
        ctype: compare type (``CMP`` only).
        target: branch label or callee name; resolved to an absolute
            instruction index by :meth:`repro.isa.program.Program.link`.
        kind: branch classification (``BR``/``CALL``/``RET``).
        nargs: argument count of a ``CALL``.
        region: hyperblock/region id this instruction belongs to, ``-1`` if
            it is not inside a predicated region.
        region_based: True for a branch left inside a predicated region —
            the branch population the paper studies.
        src_id: stable id of the source construct (AST node) that produced
            this instruction; profiling is keyed on it.
    """

    op: Opcode
    qp: int = P_TRUE
    rd: int = -1
    ra: int = -1
    rb: int = -1
    imm: int = 0
    pd1: int = -1
    pd2: int = -1
    crel: Relation = Relation.EQ
    ctype: CmpType = CmpType.NORMAL
    target: Optional[Union[str, int]] = None
    kind: BranchKind = BranchKind.UNCOND
    nargs: int = 0
    region: int = -1
    region_based: bool = False
    src_id: int = -1

    def is_branch_event(self) -> bool:
        """True if this instruction should appear in the branch trace.

        Unconditional always-executed jumps are not prediction events;
        everything else that can redirect fetch is.
        """
        if self.op is Opcode.BR:
            return self.kind != BranchKind.UNCOND or self.qp != P_TRUE
        if self.op in (Opcode.CALL, Opcode.RET):
            return self.qp != P_TRUE
        return False

    def writes_predicates(self) -> bool:
        """True if this instruction can write predicate registers."""
        return self.op is Opcode.CMP and (self.pd1 >= 0 or self.pd2 >= 0)

    def reads_regs(self) -> list:
        """GPR numbers this instruction reads (ignoring hardwired r0)."""
        regs = []
        if self.op in ALU_OPCODES or self.op is Opcode.CMP:
            if self.ra >= 0:
                regs.append(self.ra)
            if self.rb >= 0:
                regs.append(self.rb)
        elif self.op in (Opcode.MOV, Opcode.RET):
            if self.ra >= 0:
                regs.append(self.ra)
        elif self.op is Opcode.LOAD:
            if self.ra >= 0:
                regs.append(self.ra)
        elif self.op is Opcode.STORE:
            if self.ra >= 0:
                regs.append(self.ra)
            if self.rb >= 0:
                regs.append(self.rb)
        return regs

    def writes_reg(self) -> int:
        """The GPR this instruction writes, or ``-1``."""
        if self.op in ALU_OPCODES or self.op in (
            Opcode.MOV,
            Opcode.LOAD,
            Opcode.CALL,
        ):
            return self.rd
        return -1

    def copy(self) -> "Instruction":
        """A field-by-field copy (compiler passes rewrite copies)."""
        return Instruction(
            op=self.op,
            qp=self.qp,
            rd=self.rd,
            ra=self.ra,
            rb=self.rb,
            imm=self.imm,
            pd1=self.pd1,
            pd2=self.pd2,
            crel=self.crel,
            ctype=self.ctype,
            target=self.target,
            kind=self.kind,
            nargs=self.nargs,
            region=self.region,
            region_based=self.region_based,
            src_id=self.src_id,
        )
