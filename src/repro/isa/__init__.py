"""An EPIC-style predicated instruction set architecture.

This package defines the intermediate representation every other subsystem
works with: a small, IA-64-flavoured ISA in which

* every instruction carries a *qualifying predicate* (``qp``) and is
  nullified when that predicate is false,
* compare instructions write *pairs* of predicate registers using the
  IA-64 compare types (``normal``, ``unc``, ``and``, ``or``), and
* branches are guarded by predicates rather than by condition codes, so a
  conditional branch is "``br`` under ``qp``" and is taken iff ``qp`` holds.

The public surface:

* :mod:`repro.isa.opcodes` — opcode, compare-relation, compare-type and
  branch-kind enumerations.
* :mod:`repro.isa.registers` — register-file conventions (sizes, reserved
  registers, calling convention).
* :mod:`repro.isa.instructions` — the :class:`Instruction` record.
* :mod:`repro.isa.program` — :class:`Function`, :class:`Program` and the
  linked, directly executable :class:`Executable` form.
* :mod:`repro.isa.builder` — an assembler-style API for constructing
  programs by hand (used heavily by the tests and examples).
* :mod:`repro.isa.printer` — a disassembler.
"""

from repro.isa.opcodes import BranchKind, CmpType, Opcode, Relation
from repro.isa.registers import (
    ARG_BASE,
    MAX_ARGS,
    NUM_GPR,
    NUM_PRED,
    P_TRUE,
    R_RETVAL,
    R_SP,
    R_ZERO,
    SCRATCH_REG,
)
from repro.isa.instructions import Instruction
from repro.isa.program import Executable, Function, LinkError, Program
from repro.isa.builder import FunctionBuilder, ProgramBuilder
from repro.isa.printer import disassemble, format_instruction

__all__ = [
    "ARG_BASE",
    "BranchKind",
    "CmpType",
    "Executable",
    "Function",
    "FunctionBuilder",
    "Instruction",
    "LinkError",
    "MAX_ARGS",
    "NUM_GPR",
    "NUM_PRED",
    "Opcode",
    "P_TRUE",
    "Program",
    "ProgramBuilder",
    "Relation",
    "R_RETVAL",
    "R_SP",
    "R_ZERO",
    "SCRATCH_REG",
    "disassemble",
    "format_instruction",
]
