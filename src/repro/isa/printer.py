"""Disassembler for the predicated ISA.

Produces an IA-64-flavoured textual form, e.g.::

    (p3)  cmp.lt.unc p5, p6 = r4, r7
    (p5)  br.cond .L2          ; region 1, region-based
"""

from typing import Iterable, List, Union

from repro.isa.instructions import Instruction
from repro.isa.opcodes import BranchKind, CmpType, Opcode, Relation
from repro.isa.program import Executable, Function
from repro.isa.registers import P_TRUE

_REL_NAMES = {
    Relation.EQ: "eq",
    Relation.NE: "ne",
    Relation.LT: "lt",
    Relation.LE: "le",
    Relation.GT: "gt",
    Relation.GE: "ge",
}

_CTYPE_NAMES = {
    CmpType.NORMAL: "",
    CmpType.UNC: ".unc",
    CmpType.AND: ".and",
    CmpType.OR: ".or",
}

_KIND_NAMES = {
    BranchKind.UNCOND: "br",
    BranchKind.COND: "br.cond",
    BranchKind.LOOP: "br.loop",
    BranchKind.EXIT: "br.exit",
    BranchKind.CALL: "br.call",
    BranchKind.RET: "br.ret",
}

_ALU_NAMES = {
    Opcode.ADD: "add",
    Opcode.SUB: "sub",
    Opcode.MUL: "mul",
    Opcode.DIV: "div",
    Opcode.MOD: "mod",
    Opcode.AND: "and",
    Opcode.OR: "or",
    Opcode.XOR: "xor",
    Opcode.SHL: "shl",
    Opcode.SHR: "shr",
    Opcode.SRA: "sra",
}


def _src2(instr: Instruction) -> str:
    return f"r{instr.rb}" if instr.rb >= 0 else str(instr.imm)


#: Width of the qualifying-predicate column: ``(p63)`` plus a space.
_GUARD_WIDTH = 6


def format_instruction(instr: Instruction) -> str:
    """Render one instruction (without its address).

    The guard for ``qp == p0`` (always execute) is omitted — never
    rendered as ``(p0)`` — and the guard column has a fixed width, so
    instruction bodies align whether guarded or not and whatever the
    predicate number's digit count.
    """
    guard = f"(p{instr.qp})" if instr.qp != P_TRUE else ""
    body = _format_body(instr)
    notes = []
    if instr.region >= 0:
        notes.append(f"region {instr.region}")
    if instr.region_based:
        notes.append("region-based")
    if notes:
        body = f"{body}  ; {', '.join(notes)}"
    return f"{guard:<{_GUARD_WIDTH}s}{body}"


def _format_body(instr: Instruction) -> str:
    op = instr.op
    if op in _ALU_NAMES:
        return f"{_ALU_NAMES[op]} r{instr.rd} = r{instr.ra}, {_src2(instr)}"
    if op is Opcode.MOV:
        src = f"r{instr.ra}" if instr.ra >= 0 else str(instr.imm)
        return f"mov r{instr.rd} = {src}"
    if op is Opcode.LOAD:
        base = f"r{instr.ra}" if instr.ra >= 0 else "0"
        return f"ld r{instr.rd} = [{base} + {instr.imm}]"
    if op is Opcode.STORE:
        base = f"r{instr.ra}" if instr.ra >= 0 else "0"
        return f"st [{base} + {instr.imm}] = r{instr.rb}"
    if op is Opcode.CMP:
        rel = _REL_NAMES[instr.crel]
        ctype = _CTYPE_NAMES[instr.ctype]
        dests = f"p{instr.pd1}"
        if instr.pd2 >= 0:
            dests += f", p{instr.pd2}"
        return f"cmp.{rel}{ctype} {dests} = r{instr.ra}, {_src2(instr)}"
    if op is Opcode.BR:
        return f"{_KIND_NAMES[instr.kind]} {instr.target}"
    if op is Opcode.CALL:
        return f"call r{instr.rd} = {instr.target}({instr.nargs} args)"
    if op is Opcode.RET:
        value = f"r{instr.ra}" if instr.ra >= 0 else str(instr.imm)
        return f"ret {value}"
    if op is Opcode.HALT:
        return "halt"
    return "nop"


def disassemble(code: Union[Executable, Function, Iterable[Instruction]]) -> str:
    """Disassemble an executable, a function, or a raw instruction list."""
    lines: List[str] = []
    if isinstance(code, Executable):
        entry_names = {v: k for k, v in code.function_entries.items()}
        for index, instr in enumerate(code.code):
            if index in entry_names:
                lines.append(f"{entry_names[index]}:")
            lines.append(f"  {index:5d}  {format_instruction(instr)}")
        return "\n".join(lines)
    if isinstance(code, Function):
        index_labels = {}
        for name, index in code.labels.items():
            index_labels.setdefault(index, []).append(name)
        for index, instr in enumerate(code.code):
            for name in index_labels.get(index, []):
                lines.append(f"{name}:")
            lines.append(f"  {index:5d}  {format_instruction(instr)}")
        return "\n".join(lines)
    for index, instr in enumerate(code):
        lines.append(f"  {index:5d}  {format_instruction(instr)}")
    return "\n".join(lines)
