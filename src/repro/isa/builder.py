"""Assembler-style builders for constructing programs by hand.

The builders are the hand-written counterpart of the ``minic`` compiler:
tests, micro-examples and a few synthetic workloads construct IR directly
through this API.

Example:
    >>> from repro.isa import ProgramBuilder, Relation
    >>> pb = ProgramBuilder()
    >>> f = pb.function("main")
    >>> f.movi(1, 10)                # r1 = 10
    >>> f.label("loop")
    >>> f.subi(1, 1, 1)              # r1 -= 1
    >>> f.cmp(Relation.GT, 1, 2, ra=1, imm=0)   # p1, p2 = r1 > 0
    >>> f.br("loop", qp=1)           # loop back while p1
    >>> f.halt()
    >>> exe = pb.link()
"""

from typing import Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import BranchKind, CmpType, Opcode, Relation
from repro.isa.program import Function, Program
from repro.isa.registers import P_TRUE


class FunctionBuilder:
    """Builds one :class:`~repro.isa.program.Function`."""

    def __init__(self, name: str, nparams: int = 0):
        self.function = Function(name=name, nparams=nparams)

    # -- structure ---------------------------------------------------------

    def label(self, name: str) -> None:
        """Attach a label to the next emitted instruction."""
        self.function.add_label(name)

    def emit(self, instr: Instruction) -> Instruction:
        """Append a raw instruction and return it."""
        self.function.append(instr)
        return instr

    def __len__(self) -> int:
        return len(self.function.code)

    # -- ALU ---------------------------------------------------------------

    def _alu(self, op, rd, ra, rb, imm, qp) -> Instruction:
        return self.emit(
            Instruction(op=op, qp=qp, rd=rd, ra=ra, rb=rb, imm=imm)
        )

    def add(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.ADD, rd, ra, rb, 0, qp)

    def addi(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.ADD, rd, ra, -1, imm, qp)

    def sub(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.SUB, rd, ra, rb, 0, qp)

    def subi(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.SUB, rd, ra, -1, imm, qp)

    def mul(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.MUL, rd, ra, rb, 0, qp)

    def muli(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.MUL, rd, ra, -1, imm, qp)

    def div(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.DIV, rd, ra, rb, 0, qp)

    def divi(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.DIV, rd, ra, -1, imm, qp)

    def mod(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.MOD, rd, ra, rb, 0, qp)

    def modi(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.MOD, rd, ra, -1, imm, qp)

    def and_(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.AND, rd, ra, rb, 0, qp)

    def andi(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.AND, rd, ra, -1, imm, qp)

    def or_(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.OR, rd, ra, rb, 0, qp)

    def ori(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.OR, rd, ra, -1, imm, qp)

    def xor(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.XOR, rd, ra, rb, 0, qp)

    def xori(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.XOR, rd, ra, -1, imm, qp)

    def shl(self, rd, ra, rb, qp=P_TRUE):
        return self._alu(Opcode.SHL, rd, ra, rb, 0, qp)

    def shli(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.SHL, rd, ra, -1, imm, qp)

    def shri(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.SHR, rd, ra, -1, imm, qp)

    def srai(self, rd, ra, imm, qp=P_TRUE):
        return self._alu(Opcode.SRA, rd, ra, -1, imm, qp)

    # -- moves and memory ---------------------------------------------------

    def mov(self, rd, ra, qp=P_TRUE):
        return self.emit(Instruction(op=Opcode.MOV, qp=qp, rd=rd, ra=ra))

    def movi(self, rd, imm, qp=P_TRUE):
        return self.emit(Instruction(op=Opcode.MOV, qp=qp, rd=rd, imm=imm))

    def load(self, rd, ra, imm=0, qp=P_TRUE):
        """``rd = mem[R[ra] + imm]`` (``ra=-1`` for absolute addressing)."""
        return self.emit(
            Instruction(op=Opcode.LOAD, qp=qp, rd=rd, ra=ra, imm=imm)
        )

    def store(self, ra, rb, imm=0, qp=P_TRUE):
        """``mem[R[ra] + imm] = R[rb]``."""
        return self.emit(
            Instruction(op=Opcode.STORE, qp=qp, ra=ra, rb=rb, imm=imm)
        )

    # -- compares, branches, calls ------------------------------------------

    def cmp(
        self,
        rel: Relation,
        pd1: int,
        pd2: int = -1,
        ra: int = -1,
        rb: int = -1,
        imm: int = 0,
        ctype: CmpType = CmpType.NORMAL,
        qp: int = P_TRUE,
        src_id: int = -1,
    ) -> Instruction:
        """Compare ``R[ra]`` with ``R[rb]`` (or ``imm``), writing predicates."""
        return self.emit(
            Instruction(
                op=Opcode.CMP,
                qp=qp,
                ra=ra,
                rb=rb,
                imm=imm,
                pd1=pd1,
                pd2=pd2,
                crel=rel,
                ctype=ctype,
                src_id=src_id,
            )
        )

    def br(
        self,
        target: str,
        qp: int = P_TRUE,
        kind: Optional[BranchKind] = None,
        region: int = -1,
        region_based: bool = False,
        src_id: int = -1,
    ) -> Instruction:
        """Branch to ``target`` iff ``qp`` holds.

        ``kind`` defaults to ``UNCOND`` when ``qp`` is p0 and ``COND``
        otherwise.

        Raises:
            ValueError: if ``region_based`` is set without a region id —
                caught here, at emit time, rather than letting the bad
                branch corrupt per-region statistics during simulation.
        """
        if region_based and region < 0:
            raise ValueError(
                f"region-based branch to {target!r} in "
                f"{self.function.name!r} must carry region >= 0 "
                f"(got {region})"
            )
        if kind is None:
            kind = BranchKind.UNCOND if qp == P_TRUE else BranchKind.COND
        return self.emit(
            Instruction(
                op=Opcode.BR,
                qp=qp,
                target=target,
                kind=kind,
                region=region,
                region_based=region_based,
                src_id=src_id,
            )
        )

    def jmp(self, target: str) -> Instruction:
        """Unconditional jump."""
        return self.br(target, qp=P_TRUE, kind=BranchKind.UNCOND)

    def call(self, rd: int, name: str, nargs: int = 0, qp=P_TRUE):
        """Call ``name``; its return value is written to ``rd``.

        Arguments must already be staged in the argument registers.
        """
        return self.emit(
            Instruction(
                op=Opcode.CALL,
                qp=qp,
                rd=rd,
                target=name,
                nargs=nargs,
                kind=BranchKind.CALL,
            )
        )

    def ret(self, ra: int = -1, imm: int = 0, qp=P_TRUE):
        return self.emit(
            Instruction(
                op=Opcode.RET, qp=qp, ra=ra, imm=imm, kind=BranchKind.RET
            )
        )

    def halt(self):
        return self.emit(Instruction(op=Opcode.HALT))

    def nop(self, qp=P_TRUE):
        return self.emit(Instruction(op=Opcode.NOP, qp=qp))


class ProgramBuilder:
    """Builds a whole :class:`~repro.isa.program.Program`."""

    def __init__(self):
        self.program = Program()
        self._builders = {}

    def function(self, name: str, nparams: int = 0) -> FunctionBuilder:
        """Create (or fetch) the builder for function ``name``."""
        if name in self._builders:
            return self._builders[name]
        builder = FunctionBuilder(name, nparams)
        self.program.add_function(builder.function)
        self._builders[name] = builder
        return builder

    def array(self, name: str, size: int):
        """Declare a global word array."""
        return self.program.add_global(name, size)

    def link(self, entry: str = "main", verify: bool = False):
        """Link into an :class:`~repro.isa.program.Executable`.

        ``verify=True`` additionally runs the predicate-aware static
        verifier (see :meth:`repro.isa.program.Program.link`).
        """
        return self.program.link(entry, verify=verify)
