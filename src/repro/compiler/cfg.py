"""Control-flow graph construction over linear function code.

Used by tests, the compiler-explorer example, and static statistics
(E1's static region characterisation).  Block leaders are label targets,
branch targets and branch fall-throughs, per the classic algorithm.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import BranchKind, Opcode
from repro.isa.registers import P_TRUE
from repro.isa.program import Function


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of instructions."""

    index: int  #: block number in layout order
    start: int  #: first instruction position
    end: int  #: one past the last instruction position
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return self.end - self.start


class CFG:
    """Control-flow graph of one function."""

    def __init__(self, function: Function):
        self.function = function
        self.blocks: List[BasicBlock] = []
        self._block_of: Dict[int, int] = {}
        self._build()

    def _target_pos(self, instr: Instruction) -> Optional[int]:
        target = instr.target
        if isinstance(target, str):
            return self.function.labels.get(target)
        if isinstance(target, int):
            return target
        return None

    def _build(self) -> None:
        code = self.function.code
        n = len(code)
        if n == 0:
            return
        leaders = {0}
        for pos in self.function.labels.values():
            if pos < n:
                leaders.add(pos)
        for pos, instr in enumerate(code):
            if instr.op is Opcode.BR:
                target = self._target_pos(instr)
                if target is not None and target < n:
                    leaders.add(target)
                if pos + 1 < n:
                    leaders.add(pos + 1)
            elif instr.op is Opcode.RET and pos + 1 < n:
                leaders.add(pos + 1)
        starts = sorted(leaders)
        for index, start in enumerate(starts):
            end = starts[index + 1] if index + 1 < len(starts) else n
            block = BasicBlock(index=index, start=start, end=end)
            self.blocks.append(block)
            for pos in range(start, end):
                self._block_of[pos] = index
        for block in self.blocks:
            last = code[block.end - 1]
            succs = []
            if last.op is Opcode.BR:
                target = self._target_pos(last)
                if target is not None and target < n:
                    succs.append(self._block_of[target])
                # A branch falls through unless it is an always-taken jump.
                if not (
                    last.kind is BranchKind.UNCOND and last.qp == P_TRUE
                ) and block.end < n:
                    succs.append(self._block_of[block.end])
            elif last.op is Opcode.RET and last.qp == P_TRUE:
                pass  # unconditional return: no successors
            elif block.end < n:
                succs.append(self._block_of[block.end])
            # Deduplicate while preserving order.
            seen = set()
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    block.successors.append(succ)
        for block in self.blocks:
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.index)

    def block_at(self, pos: int) -> BasicBlock:
        """The block containing instruction position ``pos``."""
        return self.blocks[self._block_of[pos]]

    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def reachable(self) -> List[int]:
        """Block indices reachable from the entry, in DFS preorder."""
        seen = []
        visited = set()
        stack = [0] if self.blocks else []
        while stack:
            index = stack.pop()
            if index in visited:
                continue
            visited.add(index)
            seen.append(index)
            stack.extend(reversed(self.blocks[index].successors))
        return seen

    def back_edges(self) -> List[tuple]:
        """(src, dst) block pairs where dst dominates src (loop edges)."""
        from repro.compiler.dominance import dominators

        dom = dominators(self)
        edges = []
        for block in self.blocks:
            for succ in block.successors:
                if succ in dom.get(block.index, set()):
                    edges.append((block.index, succ))
        return edges
