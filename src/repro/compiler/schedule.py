"""Predicate-computation scheduling inside predicated regions.

Hyperblock formation is only half of what gives the paper's mechanisms
their lead time; the other half is the compiler *hoisting* predicate
computations as early as data dependences allow, while the guarded
branches stay put.  The dynamic distance between a predicate write and
the branch it guards is exactly what the front-end availability model
measures against the pipeline distance ``D``.

Passes:

* :func:`merge_regions` — fuse back-to-back converted regions within a
  straight-line run into one region, IMPACT-style.
* :func:`hoist_slices` — compute, per run, the backward slice of every
  region compare (the compare, the ALU/MOV/LOAD chain feeding it, and
  the compares defining its qualifying predicate), then move each slice
  instruction upward past anything it does not depend on.  Loads move
  speculatively across branches — legal because loads are non-faulting
  (IA-64 ``ld.s``) — but never across stores or calls (no alias
  analysis).  Region predicates are dead outside their region, so a
  compare executed above a side exit it originally followed is harmless.

Run boundaries (labels, unconditional jumps, loop branches, returns) are
never crossed: they are control-flow join/split points where motion
would change semantics.
"""

from typing import List, Set, Tuple

from repro.compiler.lower import TEMP_BASE
from repro.isa.instructions import Instruction
from repro.isa.opcodes import ALU_OPCODES, BranchKind, CmpType, Opcode
from repro.isa.program import Function

#: Opcodes a slice may contain besides the compares themselves.
_HOISTABLE_VALUE_OPS = ALU_OPCODES | {Opcode.MOV, Opcode.LOAD}


def _run_break_positions(function: Function) -> Set[int]:
    """Instruction positions after which a straight-line run ends."""
    breaks = set()
    for pos, instr in enumerate(function.code):
        if instr.op is Opcode.BR and instr.kind in (
            BranchKind.UNCOND,
            BranchKind.LOOP,
        ):
            breaks.add(pos)
        elif instr.op is Opcode.RET:
            breaks.add(pos)
    return breaks


def _runs(function: Function) -> List[Tuple[int, int]]:
    """Straight-line runs as half-open ``(start, end)`` position ranges."""
    label_positions = set(function.labels.values())
    breaks = _run_break_positions(function)
    runs = []
    start = 0
    n = len(function.code)
    for pos in range(n):
        if pos in label_positions and pos > start:
            runs.append((start, pos))
            start = pos
        if pos in breaks:
            runs.append((start, pos + 1))
            start = pos + 1
    if start < n:
        runs.append((start, n))
    return runs


def merge_regions(function: Function) -> Function:
    """Fuse adjacent regions within each straight-line run (in place)."""
    code = function.code
    for start, end in _runs(function):
        region_positions = [
            i for i in range(start, end) if code[i].region >= 0
        ]
        if len(region_positions) < 2:
            continue
        first, last = region_positions[0], region_positions[-1]
        canonical = code[first].region
        for i in range(first, last + 1):
            code[i].region = canonical
    return function


def _collect_slices(function: Function) -> Set[int]:
    """Ids (``id()``) of instructions in some region compare's slice."""
    code = function.code
    slice_ids: Set[int] = set()
    for start, end in _runs(function):
        wanted_regs: Set[int] = set()
        wanted_preds: Set[int] = set()
        for pos in range(end - 1, start - 1, -1):
            instr = code[pos]
            include = False
            if instr.op is Opcode.CMP:
                if instr.region >= 0:
                    include = True
                dests = {instr.pd1, instr.pd2} & wanted_preds
                if dests:
                    include = True
                    # Only an unconditional write fully defines the
                    # predicate; AND/OR accumulators and qp-guarded
                    # normal compares are partial, so keep looking for
                    # the initializing definition above.
                    if instr.ctype is CmpType.UNC or (
                        instr.qp == 0 and instr.ctype is CmpType.NORMAL
                    ):
                        wanted_preds -= dests
            elif (
                instr.op in _HOISTABLE_VALUE_OPS
                and instr.rd in wanted_regs
            ):
                include = True
                # A guarded write may be nullified at run time, so the
                # definition above it is still live-in: keep the register
                # wanted and pull that earlier definition in too.
                if instr.qp == 0:
                    wanted_regs.discard(instr.rd)
            if include:
                slice_ids.add(id(instr))
                for reg in (instr.ra, instr.rb):
                    if reg > 0:  # r0 is constant, never "defined"
                        wanted_regs.add(reg)
                if instr.qp > 0:
                    wanted_preds.add(instr.qp)
            else:
                written = instr.writes_reg()
                if written in wanted_regs and instr.qp == 0:
                    # Chain stops at an unhoistable full definition
                    # (a call result).
                    wanted_regs.discard(written)
                if instr.op is Opcode.CMP and instr.ctype is CmpType.UNC:
                    wanted_preds -= {instr.pd1, instr.pd2}
    return slice_ids


def hoist_slices(function: Function, rounds: int = 3) -> Function:
    """Hoist region-compare slices to their earliest positions (in place).

    Index bookkeeping: a move from ``pos`` to ``insert_at < pos`` shifts
    only positions in ``[insert_at, pos - 1]``, and the barrier rules
    guarantee no label or run break lies in that range, so the label and
    break sets stay valid across moves.
    """
    label_positions = set(function.labels.values())
    breaks = _run_break_positions(function)
    code = function.code

    for _ in range(rounds):
        slice_ids = _collect_slices(function)
        moved = False
        pos = 0
        while pos < len(code):
            instr = code[pos]
            if id(instr) not in slice_ids or pos in label_positions:
                pos += 1
                continue
            insert_at = pos
            k = pos - 1
            while k >= 0:
                if k in label_positions or k in breaks:
                    break
                if not _can_cross(instr, code[k]):
                    break
                insert_at = k
                k -= 1
            if insert_at < pos:
                code.insert(insert_at, code.pop(pos))
                moved = True
            pos += 1
        if not moved:
            break
    return function


def _can_cross(instr: Instruction, other: Instruction) -> bool:
    """May ``instr`` (a slice member) move above ``other``?"""
    # RAW on registers: other defines one of our sources.
    other_writes = other.writes_reg()
    if other_writes >= 0 and other_writes in (instr.ra, instr.rb):
        return False
    # WAR / WAW on our destination register.
    my_dest = instr.writes_reg()
    if my_dest > 0:
        if my_dest in other.reads_regs():
            return False
        if other_writes == my_dest:
            return False
    # Predicates: other consumes or defines what we touch.
    my_dest_preds = (
        {instr.pd1, instr.pd2} - {-1} if instr.op is Opcode.CMP else set()
    )
    if other.qp in my_dest_preds:
        return False  # WAR: other is guarded by a predicate we write
    if other.op is Opcode.CMP:
        other_preds = {other.pd1, other.pd2} - {-1}
        if instr.qp in other_preds:
            return False  # RAW: other defines our guard
        if other_preds & my_dest_preds:
            return False  # WAW on predicates
    # Memory: loads never cross stores or calls (no alias analysis);
    # crossing branches is fine (loads are non-faulting, ld.s-style).
    if instr.op is Opcode.LOAD and other.op in (Opcode.STORE, Opcode.CALL):
        return False
    # Control: moving a register write above a branch makes it execute
    # even when the branch is taken.  That is only safe when the value is
    # dead along the taken path: predicate writes (region predicates are
    # recomputed before any use outside this straight-line run) and
    # expression temporaries (statement-local, never live across a
    # label).  Variable writes must stay put.  Calls return here and
    # returns destroy the frame, so only BR is the hazard.
    if other.op is Opcode.BR and instr.op is not Opcode.CMP:
        if my_dest < TEMP_BASE:
            return False
    return True


def schedule_function(function: Function, merge: bool = True,
                      hoist: bool = True) -> Function:
    """Run the scheduling passes configured for this compile."""
    if merge:
        merge_regions(function)
    if hoist:
        hoist_slices(function)
    return function
