"""Static analysis of compiled programs: region and branch statistics.

Complements the *dynamic* characterisation (E1) with compile-time facts:
how many regions hyperblock formation built, how big they are, how many
guarded branches each contains, and how far each region-based branch's
guard compare sits above it after scheduling — the static counterpart of
the dynamic guard-define distance.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Executable


@dataclass
class RegionInfo:
    """Static facts about one predicated region."""

    region: int
    function: str
    instructions: int = 0
    compares: int = 0
    guarded_instructions: int = 0
    region_branches: int = 0
    #: static distance (instructions) from each region-based branch back
    #: to the compare defining its guard
    guard_distances: List[int] = field(default_factory=list)


@dataclass
class StaticReport:
    """Whole-program static statistics."""

    regions: List[RegionInfo]
    static_branch_sites: int
    region_branch_sites: int
    predicated_instructions: int
    total_instructions: int

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def mean_region_size(self) -> float:
        if not self.regions:
            return 0.0
        return sum(r.instructions for r in self.regions) / len(self.regions)

    @property
    def mean_guard_distance(self) -> float:
        distances = [
            d for region in self.regions for d in region.guard_distances
        ]
        return sum(distances) / len(distances) if distances else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "total_instructions": self.total_instructions,
            "static_branch_sites": self.static_branch_sites,
            "region_branch_sites": self.region_branch_sites,
            "predicated_fraction": (
                self.predicated_instructions
                / max(self.total_instructions, 1)
            ),
            "regions": self.num_regions,
            "mean_region_size": self.mean_region_size,
            "mean_guard_distance": self.mean_guard_distance,
        }


def _guard_distance(code: List[Instruction], pos: int) -> int:
    """Instructions from the branch at ``pos`` back to its guard's
    defining compare, or -1 if not found in straight-line scan."""
    guard = code[pos].qp
    for back in range(pos - 1, max(-1, pos - 200), -1):
        instr = code[back]
        if instr.op is Opcode.CMP and guard in (instr.pd1, instr.pd2):
            return pos - back
    return -1


def analyze_executable(executable: Executable) -> StaticReport:
    """Compute static region/branch statistics for a linked program."""
    code = executable.code
    regions: Dict[tuple, RegionInfo] = {}
    static_branches = 0
    region_branches = 0
    predicated = 0

    for pos, instr in enumerate(code):
        if instr.qp != 0:
            predicated += 1
        if instr.is_branch_event():
            static_branches += 1
        if instr.region >= 0:
            key = (executable.function_at(pos), instr.region)
            info = regions.get(key)
            if info is None:
                info = RegionInfo(region=instr.region, function=key[0])
                regions[key] = info
            info.instructions += 1
            if instr.op is Opcode.CMP:
                info.compares += 1
            if instr.qp != 0:
                info.guarded_instructions += 1
            if instr.region_based and instr.op in (
                Opcode.BR, Opcode.CALL, Opcode.RET
            ):
                info.region_branches += 1
                region_branches += 1
                distance = _guard_distance(code, pos)
                if distance >= 0:
                    info.guard_distances.append(distance)

    return StaticReport(
        regions=sorted(
            regions.values(), key=lambda r: (r.function, r.region)
        ),
        static_branch_sites=static_branches,
        region_branch_sites=region_branches,
        predicated_instructions=predicated,
        total_instructions=len(code),
    )
