"""Linear-scan register allocation with spilling.

Lowered functions use virtual registers (``>= VREG_BASE``).  This pass
assigns them to physical registers ``r1..r52``, spilling the rest to
stack slots addressed off ``R_SP`` and staged through three reserved
scratch registers.

Liveness is computed as linear intervals over the flat instruction list,
then *extended over loops*: for every backward branch ``b -> t``, any
interval overlapping ``[t, b]`` is widened to cover all of it.  This is
conservative (it may over-extend) but always correct, which is what the
predictor study needs — allocation quality only affects instruction
counts, not branch behaviour.

Spill rewriting preserves predication: a reload is unconditional (reading
a slot is always safe), but the store after a *guarded* definition carries
the same qualifying predicate, so a nullified definition does not clobber
the slot.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.compiler.errors import CompileError
from repro.compiler.lower import VREG_BASE
from repro.isa.instructions import Instruction
from repro.isa.opcodes import ALU_OPCODES, Opcode
from repro.isa.program import Function
from repro.isa.registers import R_SP

#: Physical registers handed out by the allocator.
ALLOCATABLE = list(range(1, 53))
#: Scratch registers for spilled operands (two reads + one write).
SCRATCH_READ1 = 53
SCRATCH_READ2 = 54
SCRATCH_WRITE = 55


@dataclass
class Interval:
    vreg: int
    start: int
    end: int


def _operand_fields(instr: Instruction):
    """(reads, writes) field names holding GPR numbers for this opcode."""
    op = instr.op
    if op in ALU_OPCODES:
        return ["ra", "rb"], ["rd"]
    if op is Opcode.MOV:
        return ["ra"], ["rd"]
    if op is Opcode.LOAD:
        return ["ra"], ["rd"]
    if op is Opcode.STORE:
        return ["ra", "rb"], []
    if op is Opcode.CMP:
        return ["ra", "rb"], []
    if op is Opcode.RET:
        return ["ra"], []
    if op is Opcode.CALL:
        return [], ["rd"]
    return [], []


def _collect_intervals(code: List[Instruction]) -> Dict[int, Interval]:
    intervals: Dict[int, Interval] = {}
    for pos, instr in enumerate(code):
        reads, writes = _operand_fields(instr)
        for field in reads + writes:
            reg = getattr(instr, field)
            if reg >= VREG_BASE:
                interval = intervals.get(reg)
                if interval is None:
                    intervals[reg] = Interval(reg, pos, pos)
                else:
                    interval.end = pos
    return intervals


def _extend_over_loops(intervals: Dict[int, Interval],
                       function: Function) -> None:
    code = function.code
    label_pos = function.labels
    backedges = []
    for pos, instr in enumerate(code):
        if instr.op is Opcode.BR:
            target = instr.target
            target_pos = label_pos.get(target) if isinstance(target, str) \
                else target
            if target_pos is not None and target_pos <= pos:
                backedges.append((target_pos, pos))
    changed = True
    while changed:
        changed = False
        for start, end in backedges:
            for interval in intervals.values():
                if interval.start <= end and interval.end >= start:
                    if interval.start > start or interval.end < end:
                        interval.start = min(interval.start, start)
                        interval.end = max(interval.end, end)
                        changed = True


def _linear_scan(intervals: List[Interval]):
    """Assign physical registers; returns (assignment, spilled-vreg set)."""
    assignment: Dict[int, int] = {}
    spilled = set()
    free = set(ALLOCATABLE)
    active: List[Interval] = []
    for interval in sorted(intervals, key=lambda iv: (iv.start, iv.end)):
        for done in [iv for iv in active if iv.end < interval.start]:
            active.remove(done)
            free.add(assignment[done.vreg])
        if free:
            reg = min(free)
            free.remove(reg)
            assignment[interval.vreg] = reg
            active.append(interval)
        else:
            # Spill the active interval that ends last (standard policy).
            victim = max(active, key=lambda iv: iv.end)
            if victim.end > interval.end:
                assignment[interval.vreg] = assignment.pop(victim.vreg)
                spilled.add(victim.vreg)
                active.remove(victim)
                active.append(interval)
            else:
                spilled.add(interval.vreg)
    return assignment, spilled


def allocate_registers(function: Function) -> Function:
    """Rewrite ``function`` in place, replacing virtual registers.

    Sets ``function.frame_slots`` to the number of spill slots used.
    """
    intervals = _collect_intervals(function.code)
    if not intervals:
        function.frame_slots = 0
        return function
    _extend_over_loops(intervals, function)
    assignment, spilled = _linear_scan(list(intervals.values()))
    slot_of = {vreg: slot for slot, vreg in enumerate(sorted(spilled))}

    new_code: List[Instruction] = []
    old_to_new: Dict[int, int] = {}
    for pos, instr in enumerate(function.code):
        old_to_new[pos] = len(new_code)
        reads, writes = _operand_fields(instr)
        scratch_pool = [SCRATCH_READ1, SCRATCH_READ2]
        pending_store = None
        for field in reads:
            reg = getattr(instr, field)
            if reg >= VREG_BASE:
                if reg in slot_of:
                    if not scratch_pool:
                        raise CompileError("too many spilled reads")
                    scratch = scratch_pool.pop(0)
                    new_code.append(
                        Instruction(op=Opcode.LOAD, rd=scratch, ra=R_SP,
                                    imm=slot_of[reg])
                    )
                    setattr(instr, field, scratch)
                else:
                    setattr(instr, field, assignment[reg])
        for field in writes:
            reg = getattr(instr, field)
            if reg >= VREG_BASE:
                if reg in slot_of:
                    setattr(instr, field, SCRATCH_WRITE)
                    pending_store = Instruction(
                        op=Opcode.STORE, qp=instr.qp, ra=R_SP,
                        rb=SCRATCH_WRITE, imm=slot_of[reg],
                    )
                else:
                    setattr(instr, field, assignment[reg])
        new_code.append(instr)
        if pending_store is not None:
            new_code.append(pending_store)

    function.code = new_code
    function.labels = {
        name: old_to_new.get(pos, len(new_code))
        for name, pos in function.labels.items()
    }
    function.frame_slots = len(slot_of)
    return function
