"""Compiler errors."""


class CompileError(Exception):
    """Lowering or allocation failed (resource exhaustion, internal limit)."""
