"""The ``minic`` compiler: lowering, if-conversion, scheduling, regalloc.

Pipeline (see :func:`repro.compiler.pipeline.compile_source`):

1. parse + semantic analysis (:mod:`repro.lang`);
2. lowering to virtual-register predicated IR
   (:mod:`repro.compiler.lower`), with hyperblock formation decided per
   source ``if`` from a profile (:mod:`repro.compiler.profile`) and the
   heuristics in :class:`repro.compiler.config.CompileConfig`;
3. compare hoisting inside predicated regions
   (:mod:`repro.compiler.schedule`) — the scheduling freedom that gives
   predicate defines their lead time over the branches they guard;
4. linear-scan register allocation with spilling
   (:mod:`repro.compiler.regalloc`);
5. linking (:meth:`repro.isa.Program.link`).

:mod:`repro.compiler.cfg` and :mod:`repro.compiler.dominance` provide
control-flow analyses used by tests, statistics and the compiler-explorer
example.
"""

from repro.compiler.analysis import StaticReport, analyze_executable
from repro.compiler.config import CompileConfig
from repro.compiler.errors import CompileError
from repro.compiler.pipeline import (
    CompiledProgram,
    compile_source,
    compile_with_profile,
)
from repro.compiler.profile import ProfileCollector

__all__ = [
    "CompileConfig",
    "StaticReport",
    "analyze_executable",
    "CompileError",
    "CompiledProgram",
    "ProfileCollector",
    "compile_source",
    "compile_with_profile",
]
