"""Top-level compile entry points.

:func:`compile_source` runs the full pipeline for one configuration;
:func:`compile_with_profile` is the paper's two-pass flow — a profiling
compile + run feeds the hyperblock compile of the same source.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler import config as config_mod
from repro.compiler.config import CompileConfig
from repro.compiler.lower import FunctionLowerer
from repro.compiler.optimize import optimize_function
from repro.compiler.profile import ProfileCollector
from repro.compiler.regalloc import allocate_registers
from repro.compiler.schedule import schedule_function
from repro.compiler.verify import verify_executable, verify_function
from repro.engine.interpreter import run as run_program
from repro.isa.program import Executable, Program
from repro.lang import analyze, parse


@dataclass
class CompiledProgram:
    """A linked executable plus the artefacts tests and tools want."""

    executable: Executable
    program: Program
    config: CompileConfig
    profile: Optional[ProfileCollector] = None

    @property
    def num_regions(self) -> int:
        """Distinct predicated regions across all functions."""
        regions = {
            instr.region
            for instr in self.executable.code
            if instr.region >= 0
        }
        return len(regions)


def compile_source(
    source: str,
    config: CompileConfig = config_mod.BASELINE,
    profile: Optional[ProfileCollector] = None,
) -> CompiledProgram:
    """Compile ``minic`` source under ``config``.

    ``profile`` feeds the if-conversion heuristics; without one,
    hyperblock formation treats every branch as unbiased.
    """
    module = parse(source)
    analyze(module)

    program = Program()
    global_bases: Dict[str, int] = {}
    offset = 0
    for decl in module.globals:
        program.add_global(decl.name, decl.size)
        global_bases[decl.name] = offset
        offset += decl.size

    functions = {f.name: len(f.params) for f in module.functions}
    region_counter = [0]
    for func in module.functions:
        lowerer = FunctionLowerer(
            func, global_bases, functions, config, profile, region_counter
        )
        function = lowerer.lower()
        if config.peephole:
            optimize_function(function)
        if config.hyperblocks:
            schedule_function(
                function,
                merge=config.merge_adjacent_regions,
                hoist=config.schedule_compares,
            )
        verify_function(function, allow_vregs=True)
        allocate_registers(function)
        verify_function(function, allow_vregs=False)
        program.add_function(function)

    executable = program.link()
    verify_executable(executable)
    _check_global_layout(executable, global_bases)
    return CompiledProgram(
        executable=executable, program=program, config=config,
        profile=profile,
    )


def _check_global_layout(executable: Executable,
                         expected: Dict[str, int]) -> None:
    """The lowerer bakes global base addresses into immediates; verify the
    linker placed every array exactly where lowering assumed."""
    for name, base in expected.items():
        if executable.global_base(name) != base:
            raise AssertionError(
                f"global {name!r} linked at {executable.global_base(name)}, "
                f"lowered against {base}"
            )


def collect_profile(source: str,
                    max_instructions: int = 200_000_000) -> ProfileCollector:
    """Run the profiling compile and return the collected profile."""
    profile = ProfileCollector()
    compiled = compile_source(source, config_mod.PROFILING)
    run_program(compiled.executable, profile=profile,
                max_instructions=max_instructions)
    return profile


def compile_with_profile(
    source: str,
    config: CompileConfig = config_mod.HYPERBLOCK,
    max_instructions: int = 200_000_000,
) -> CompiledProgram:
    """Two-pass compile: profile with the simple lowering, then apply
    ``config`` (normally the hyperblock configuration) using that profile."""
    profile = collect_profile(source, max_instructions=max_instructions)
    return compile_source(source, config, profile=profile)
