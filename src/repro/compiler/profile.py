"""Edge profiling support.

The profiling compile (``cond_style="simple"``) emits exactly one
conditional branch per source ``if``/loop, tagged with the AST node id.
Running that executable with a :class:`ProfileCollector` attached yields,
per source construct, how often it executed and how often the branch was
taken.  For an ``if`` lowered in simple style the branch jumps to the else
side when the condition is *false*, so the probability that the condition
is true is ``1 - taken_rate``.
"""

from collections import defaultdict
from typing import Dict, Optional, Tuple


class ProfileCollector:
    """Accumulates per-source-construct branch statistics."""

    def __init__(self):
        self._counts: Dict[int, list] = defaultdict(lambda: [0, 0])

    def record_branch(self, src_id: int, taken: bool) -> None:
        """One dynamic branch observation (called by the interpreter)."""
        entry = self._counts[src_id]
        entry[0] += 1
        if taken:
            entry[1] += 1

    def executions(self, src_id: int) -> int:
        """Times the construct's branch executed."""
        return self._counts[src_id][0] if src_id in self._counts else 0

    def taken_rate(self, src_id: int) -> Optional[float]:
        """Fraction taken, or ``None`` if never executed."""
        if src_id not in self._counts or self._counts[src_id][0] == 0:
            return None
        executed, taken = self._counts[src_id]
        return taken / executed

    def cond_true_rate(self, src_id: int) -> Optional[float]:
        """P(condition true) for an ``if`` profiled in simple style."""
        rate = self.taken_rate(src_id)
        return None if rate is None else 1.0 - rate

    def as_dict(self) -> Dict[int, Tuple[int, int]]:
        """Snapshot: src_id -> (executions, taken)."""
        return {k: (v[0], v[1]) for k, v in self._counts.items()}

    def __len__(self) -> int:
        return len(self._counts)
