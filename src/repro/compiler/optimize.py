"""Peephole optimization on virtual-register code.

Runs after lowering, before scheduling and register allocation.  Three
conservative, obviously-safe rewrites that remove the copy/materialize
noise straightforward lowering produces — which real compilers do not
emit, and which matters here beyond aesthetics: shorter def-use chains
give the compare scheduler more freedom, lengthening the predicate lead
times the paper's mechanisms measure.

1. **Immediate folding** — ``mov t = imm`` (unguarded) feeding a single
   ALU/compare second operand becomes that operand's immediate.
2. **Copy coalescing** — ``op t = ...`` immediately followed by
   ``mov v = t`` under the same qualifying predicate, where ``t`` has no
   other readers, becomes ``op v = ...``.  This removes the canonical
   assignment copy (and the call-result copy).
3. **Dead temporary elimination** — side-effect-free definitions of
   expression temporaries that are never read are dropped.

All three reason only about *expression temporaries* (single static
definition by construction) plus the adjacency/sameness conditions
stated above, so no dataflow analysis is needed.  Deleting instructions
renumbers labels, handled by an old-to-new position map.
"""

from typing import Dict, List

from repro.compiler.lower import TEMP_BASE
from repro.isa.instructions import Instruction
from repro.isa.opcodes import ALU_OPCODES, Opcode
from repro.isa.program import Function

#: Definitions pattern 2/3 may rewrite or delete.
_VALUE_OPS = ALU_OPCODES | {Opcode.MOV, Opcode.LOAD}


def _read_fields(instr: Instruction):
    op = instr.op
    if op in ALU_OPCODES or op is Opcode.CMP:
        return ("ra", "rb")
    if op in (Opcode.MOV, Opcode.LOAD, Opcode.RET):
        return ("ra",)
    if op is Opcode.STORE:
        return ("ra", "rb")
    return ()


def _count_reads(code: List[Instruction]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for instr in code:
        for field in _read_fields(instr):
            reg = getattr(instr, field)
            if reg >= 0:
                counts[reg] = counts.get(reg, 0) + 1
    return counts


def _fold_immediates(code: List[Instruction],
                     reads: Dict[int, int]) -> bool:
    """``mov t = imm`` (qp=p0, single reader) into the reader's rb slot."""
    defs: Dict[int, int] = {}
    def_count: Dict[int, int] = {}
    for pos, instr in enumerate(code):
        written = instr.writes_reg()
        if written >= TEMP_BASE:
            defs[written] = pos
            def_count[written] = def_count.get(written, 0) + 1
    changed = False
    for instr in code:
        if instr.op not in ALU_OPCODES and instr.op is not Opcode.CMP:
            continue
        rb = instr.rb
        if rb < TEMP_BASE or reads.get(rb, 0) != 1:
            continue
        if def_count.get(rb, 0) != 1:
            continue
        producer = code[defs[rb]]
        if (
            producer.op is Opcode.MOV
            and producer.qp == 0
            and producer.ra < 0
        ):
            instr.rb = -1
            instr.imm = producer.imm
            reads[rb] = 0  # producer becomes dead; pass 3 removes it
            changed = True
    return changed


def _coalesce_copies(code: List[Instruction],
                     reads: Dict[int, int]) -> bool:
    """``op t = ...; mov v = t`` (adjacent, same qp, sole reader) into
    ``op v = ...``."""
    changed = False
    for pos in range(len(code) - 1):
        producer = code[pos]
        copy = code[pos + 1]
        if copy.op is not Opcode.MOV or copy.ra < TEMP_BASE:
            continue
        temp = copy.ra
        if producer.writes_reg() != temp or reads.get(temp, 0) != 1:
            continue
        if producer.op not in _VALUE_OPS and producer.op is not Opcode.CALL:
            continue
        if producer.qp != copy.qp:
            continue
        if copy.rd == 0:
            continue  # writes to r0 are dropped anyway; keep it simple
        producer.rd = copy.rd
        copy.op = Opcode.NOP
        copy.rd = copy.ra = copy.rb = -1
        reads[temp] = 0
        changed = True
    return changed


def _drop_dead(code: List[Instruction], reads: Dict[int, int]) -> bool:
    """Mark side-effect-free dead temporary definitions as NOPs."""
    changed = False
    for instr in code:
        if instr.op in _VALUE_OPS:
            written = instr.writes_reg()
            if written >= TEMP_BASE and reads.get(written, 0) == 0:
                for field in _read_fields(instr):
                    reg = getattr(instr, field)
                    if reg >= 0:
                        reads[reg] = reads.get(reg, 0) - 1
                instr.op = Opcode.NOP
                instr.rd = instr.ra = instr.rb = -1
                changed = True
    return changed


def _strip_nops(function: Function) -> None:
    """Delete NOPs, remapping labels to the following kept instruction."""
    code = function.code
    old_to_new: Dict[int, int] = {}
    new_code: List[Instruction] = []
    for pos, instr in enumerate(code):
        old_to_new[pos] = len(new_code)
        if instr.op is not Opcode.NOP:
            new_code.append(instr)
    old_to_new[len(code)] = len(new_code)
    function.code = new_code
    function.labels = {
        name: old_to_new[pos] for name, pos in function.labels.items()
    }


def optimize_function(function: Function, rounds: int = 4) -> Function:
    """Run the peephole passes to a fixed point (in place)."""
    for _ in range(rounds):
        reads = _count_reads(function.code)
        changed = _fold_immediates(function.code, reads)
        changed |= _coalesce_copies(function.code, reads)
        changed |= _drop_dead(function.code, reads)
        _strip_nops(function)
        if not changed:
            break
    return function
