"""Compilation configuration: if-conversion heuristics and lowering style."""

from dataclasses import dataclass

#: Bump whenever a compiler change alters generated code, so cached
#: traces regenerate.
CODEGEN_REVISION = 8


@dataclass(frozen=True)
class CompileConfig:
    """Knobs controlling lowering and hyperblock formation.

    The defaults model the IMPACT-style policy the paper assumes: convert
    hammocks/diamonds whose arms are small and not overwhelmingly biased;
    keep a cold arm out of the region behind a guarded side exit (the
    *region-based branch*); never predicate loops.

    Attributes:
        hyperblocks: master switch — False gives the baseline compile.
        cond_style: ``"ladder"`` lowers ``&&``/``||`` conditions to branch
            ladders (realistic baseline); ``"simple"`` emits one compare
            and one branch per ``if`` (used by the profiling pass so the
            profile directly gives each ``if``'s bias).
        max_arm_stmts: an arm larger than this (AST statements, counted
            recursively) is never predicated.
        max_region_stmts: a full (both-arm) conversion must fit this total.
        cold_threshold: if an arm executes with probability below this, it
            is left out of the region behind a side exit instead of being
            predicated.
        tiny_arm_stmts: arms at most this size are predicated regardless
            of bias (a branch costs more than a couple of nullified ops).
        schedule_compares: hoist predicate defines inside regions (the
            compare scheduler); disabling it is an ablation — with no lead
            time, SFP has nothing to squash.
        merge_adjacent_regions: fuse back-to-back converted regions so
            compare hoisting works across them, IMPACT-style.
        unroll: unroll factor for innermost loops in hyperblock compiles
            (1 disables).  Unrolled copies merge into one region, so a
            later copy's guard computations hoist above the earlier
            copy's code — the main source of predicate lead time in
            IMPACT-style hyperblocks.
        max_unroll_stmts: only loops with bodies at most this large
            (AST statements, recursive) are unrolled.
        peephole: run the copy-coalescing / immediate-folding / dead-temp
            peephole pass (see :mod:`repro.compiler.optimize`).
    """

    hyperblocks: bool = False
    cond_style: str = "ladder"
    max_arm_stmts: int = 12
    max_region_stmts: int = 20
    cold_threshold: float = 0.12
    tiny_arm_stmts: int = 3
    schedule_compares: bool = True
    merge_adjacent_regions: bool = True
    unroll: int = 2
    max_unroll_stmts: int = 24
    peephole: bool = True

    def cache_key(self) -> str:
        """A stable string identifying this configuration (plus the
        code-generator revision, so cached traces invalidate when the
        compiler's output changes)."""
        return (
            f"rev={CODEGEN_REVISION};"
            f"hb={int(self.hyperblocks)};style={self.cond_style};"
            f"arm={self.max_arm_stmts};region={self.max_region_stmts};"
            f"cold={self.cold_threshold};tiny={self.tiny_arm_stmts};"
            f"sched={int(self.schedule_compares)};"
            f"merge={int(self.merge_adjacent_regions)};"
            f"unroll={self.unroll}/{self.max_unroll_stmts};"
            f"peep={int(self.peephole)}"
        )


#: Baseline: branch ladders, no predication.
BASELINE = CompileConfig(hyperblocks=False, cond_style="ladder")

#: Profiling pass: one branch per source ``if`` so bias maps 1:1.
PROFILING = CompileConfig(hyperblocks=False, cond_style="simple")

#: Hyperblock compile with default heuristics.
HYPERBLOCK = CompileConfig(hyperblocks=True, cond_style="ladder")
