"""Dominator analysis over the CFG (iterative dataflow formulation)."""

from typing import Dict, Optional, Set

from repro.compiler.cfg import CFG


def dominators(cfg: CFG) -> Dict[int, Set[int]]:
    """Map each reachable block to the set of blocks dominating it.

    Uses the classic iterative algorithm: ``dom(entry) = {entry}``;
    ``dom(b) = {b} ∪ ⋂ dom(p) for predecessors p``, iterated to a fixed
    point.  Unreachable blocks are absent from the result.
    """
    reachable = cfg.reachable()
    if not reachable:
        return {}
    reachable_set = set(reachable)
    entry = reachable[0]
    dom: Dict[int, Set[int]] = {
        index: set(reachable) for index in reachable
    }
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for index in reachable:
            if index == entry:
                continue
            preds = [
                p
                for p in cfg.blocks[index].predecessors
                if p in reachable_set
            ]
            if preds:
                new = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()
            new = new | {index}
            if new != dom[index]:
                dom[index] = new
                changed = True
    return dom


def immediate_dominators(cfg: CFG) -> Dict[int, Optional[int]]:
    """Map each reachable block to its immediate dominator (entry -> None).

    The immediate dominator is the unique strict dominator that is
    dominated by every other strict dominator.
    """
    dom = dominators(cfg)
    idom: Dict[int, Optional[int]] = {}
    for block, doms in dom.items():
        strict = doms - {block}
        if not strict:
            idom[block] = None
            continue
        candidate = None
        for d in strict:
            if all(d in dom[other] for other in strict):
                candidate = d
                break
        idom[block] = candidate
    return idom


def dominates(dom: Dict[int, Set[int]], a: int, b: int) -> bool:
    """True if block ``a`` dominates block ``b``."""
    return a in dom.get(b, set())
