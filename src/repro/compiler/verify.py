"""IR verifier: structural well-formedness checks for compiled code.

Run by tests after every compiler pass (and available to users via
:func:`verify_executable`).  Checks are purely static:

* every branch target resolves inside the function (pre-link) or the
  executable (post-link); call targets name real functions;
* operand fields match the opcode (no dangling register numbers, no
  predicate destinations on non-compares);
* qualifying predicates and predicate destinations are in range;
* post-regalloc code contains no virtual registers and only writes
  allocatable/scratch/argument registers;
* every region-based branch is guarded (``qp != p0``) and carries a
  region id.
"""

from typing import List

from repro.compiler.lower import VREG_BASE
from repro.compiler.regalloc import (
    ALLOCATABLE,
    SCRATCH_READ1,
    SCRATCH_READ2,
    SCRATCH_WRITE,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import ALU_OPCODES, Opcode
from repro.isa.program import Executable, Function
from repro.isa.registers import ARG_BASE, MAX_ARGS, NUM_GPR, NUM_PRED, R_SP


class VerificationError(Exception):
    """The IR violates a structural invariant."""


def _check_instruction(instr: Instruction, where: str,
                       allow_vregs: bool) -> List[str]:
    problems = []
    if not 0 <= instr.qp < NUM_PRED:
        problems.append(f"{where}: qp {instr.qp} out of range")
    for field in ("pd1", "pd2"):
        value = getattr(instr, field)
        if value != -1 and not 0 < value < NUM_PRED:
            problems.append(f"{where}: {field} {value} out of range")
    if instr.op is not Opcode.CMP and (instr.pd1 != -1 or instr.pd2 != -1):
        problems.append(f"{where}: predicate dests on non-compare")
    max_reg = 10**9 if allow_vregs else NUM_GPR
    for field in ("rd", "ra", "rb"):
        value = getattr(instr, field)
        if value != -1 and not 0 <= value < max_reg:
            problems.append(f"{where}: {field} {value} out of range")
    if instr.op in ALU_OPCODES and instr.ra < 0:
        problems.append(f"{where}: ALU op without first source")
    if instr.op is Opcode.STORE and (instr.rb < 0):
        problems.append(f"{where}: store without value register")
    if instr.op is Opcode.CALL and not 0 <= instr.nargs <= MAX_ARGS:
        problems.append(f"{where}: call with {instr.nargs} args")
    if instr.region_based:
        if instr.qp == 0:
            problems.append(f"{where}: region-based but unguarded")
        if instr.op is Opcode.BR and instr.region < 0:
            problems.append(f"{where}: region-based branch without region")
    if not allow_vregs:
        written = instr.writes_reg()
        legal_writes = set(ALLOCATABLE) | {
            0, SCRATCH_READ1, SCRATCH_READ2, SCRATCH_WRITE, R_SP,
        } | set(range(ARG_BASE, ARG_BASE + MAX_ARGS))
        if written >= 0 and written not in legal_writes:
            problems.append(
                f"{where}: write to non-allocatable r{written}"
            )
    return problems


def verify_function(function: Function, allow_vregs: bool = True) -> None:
    """Verify one (possibly pre-regalloc) function; raises on problems."""
    problems = []
    n = len(function.code)
    for name, pos in function.labels.items():
        if not 0 <= pos <= n:
            problems.append(f"label {name!r} points outside the function")
    for pos, instr in enumerate(function.code):
        where = f"{function.name}+{pos}"
        problems.extend(_check_instruction(instr, where, allow_vregs))
        if instr.op is Opcode.BR:
            target = instr.target
            if isinstance(target, str):
                if target not in function.labels:
                    problems.append(f"{where}: unknown label {target!r}")
            elif not isinstance(target, int):
                problems.append(f"{where}: branch without target")
        if not allow_vregs:
            for field in ("rd", "ra", "rb"):
                if getattr(instr, field) >= VREG_BASE:
                    problems.append(
                        f"{where}: virtual register survived regalloc"
                    )
    if problems:
        raise VerificationError("; ".join(problems[:20]))


def verify_executable(executable: Executable) -> None:
    """Verify a linked executable; raises on problems."""
    problems = []
    n = len(executable.code)
    entries = set(executable.function_entries.values())
    for pos, instr in enumerate(executable.code):
        where = f"@{pos}"
        problems.extend(_check_instruction(instr, where, allow_vregs=False))
        if instr.op is Opcode.BR:
            if not isinstance(instr.target, int) or not (
                0 <= instr.target < n
            ):
                problems.append(f"{where}: bad branch target {instr.target}")
        elif instr.op is Opcode.CALL:
            if instr.target not in entries:
                problems.append(f"{where}: call to non-entry {instr.target}")
    if problems:
        raise VerificationError("; ".join(problems[:20]))
