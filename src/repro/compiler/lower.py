"""Lowering ``minic`` ASTs to predicated IR, including if-conversion.

The lowerer produces code over *virtual* registers (numbered from
:data:`VREG_BASE`); :mod:`repro.compiler.regalloc` maps them to physical
registers afterwards.  Physical registers appear directly only for the
argument-staging convention and r0.

If-conversion happens here, structurally: each source ``if`` is lowered in
one of four modes decided by :meth:`FunctionLowerer._decide_if`:

* ``BRANCH`` — classic control flow (the only mode in baseline compiles);
* ``FULL`` — both arms predicated under a complementary pair; no branch
  remains at all;
* ``THEN_PRED`` — the then-arm is predicated inside the region, the else
  arm is kept outside behind a guarded *side exit* branch (a region-based
  branch, taken when the else path is needed);
* ``ELSE_PRED`` — the mirror image.

Inside a predicated arm, ``break``/``continue``/``return`` become guarded
region-based exits, calls become predicated calls, and nested ``if``s are
converted recursively (a nested arm that cannot be predicated falls back
to a side exit).  Loops are never predicated: an arm containing a loop is
not predicable, which forces the side-exit form around it — exactly the
acyclic-region constraint of hyperblock formation.

Correctness invariant (exercised heavily by the differential tests): for
call-free-``&&``/``||`` programs, every mode computes identical results,
because predication merely nullifies the instructions of the untaken arm.
"""

from collections import deque
from typing import Dict, List, Optional

from repro.compiler.config import CompileConfig
from repro.compiler.errors import CompileError
from repro.compiler.profile import ProfileCollector
from repro.isa.builder import FunctionBuilder
from repro.isa.instructions import Instruction
from repro.isa.opcodes import BranchKind, CmpType, Opcode, Relation
from repro.isa.registers import ARG_BASE, MAX_ARGS, P_TRUE
from repro.lang import ast

#: First virtual register number (physical registers are 0..63).
VREG_BASE = 100

#: Virtual registers at or above this number are *expression temporaries*:
#: they never live across a statement, hence never across a label, so the
#: scheduler may move their definitions across branches (the value is dead
#: along the taken path).  Variable registers live in [VREG_BASE,
#: TEMP_BASE) and must not cross branches.
TEMP_BASE = 1_000_000

#: Maps source comparison operators to CMP relations.
_RELATIONS = {
    "==": Relation.EQ,
    "!=": Relation.NE,
    "<": Relation.LT,
    "<=": Relation.LE,
    ">": Relation.GT,
    ">=": Relation.GE,
}

_ARITH_OPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SRA,  #: ``>>`` is arithmetic shift on signed words
}

# if-lowering modes
BRANCH, FULL, THEN_PRED, ELSE_PRED = "branch", "full", "then_pred", "else_pred"


class PredAllocator:
    """Allocates predicate registers p1..p63, rotating through the file.

    Predicates are physical from the start (there are only 63 and their
    live ranges nest with region structure).  Allocation is FIFO — a
    released register goes to the *back* of the free queue — so
    consecutive regions use different predicates.  LIFO reuse would put
    the same pair on back-to-back compares, and the write-after-read
    hazard on the reused registers would pin the second compare below
    everything the first region guards, starving the scheduler of
    exactly the hoisting freedom the paper's mechanisms feed on (real
    predicate allocators rotate for the same reason).
    """

    def __init__(self):
        self._free = deque(range(1, 64))

    def alloc(self) -> int:
        if not self._free:
            raise CompileError(
                "out of predicate registers (region nesting too deep)"
            )
        return self._free.popleft()

    def alloc_pair(self):
        return self.alloc(), self.alloc()

    def release(self, *preds: int) -> None:
        for pred in preds:
            if pred > 0:
                self._free.append(pred)


class FunctionLowerer:
    """Lowers one function body to virtual-register predicated IR."""

    def __init__(
        self,
        func: ast.FuncDecl,
        global_bases: Dict[str, int],
        functions: Dict[str, int],
        config: CompileConfig,
        profile: Optional[ProfileCollector],
        region_counter: List[int],
    ):
        self.func = func
        self.global_bases = global_bases
        self.functions = functions
        self.config = config
        self.profile = profile
        self.region_counter = region_counter
        self.fb = FunctionBuilder(func.name, nparams=len(func.params))
        self.preds = PredAllocator()
        self.vars: Dict[str, int] = {}
        self._next_var = VREG_BASE
        self._next_temp = TEMP_BASE
        self._next_label = 0
        #: stack of (break_label, continue_label)
        self._loops: List[tuple] = []

    # -- small helpers ---------------------------------------------------------

    def temp(self) -> int:
        """A fresh expression temporary (statement-local lifetime)."""
        reg = self._next_temp
        self._next_temp += 1
        return reg

    def var_reg(self) -> int:
        """A fresh register for a source variable or parameter."""
        reg = self._next_var
        self._next_var += 1
        if reg >= TEMP_BASE:
            raise CompileError("too many variables in one function")
        return reg

    def new_label(self, hint: str) -> str:
        self._next_label += 1
        return f".{hint}{self._next_label}"

    def _bias(self, node: ast.If) -> Optional[float]:
        if self.profile is None:
            return None
        return self.profile.cond_true_rate(node.node_id)

    @staticmethod
    def _stmt_weight(stmts) -> int:
        """Recursive statement count: the size proxy for heuristics."""
        total = 0
        for stmt in stmts:
            total += 1
            if isinstance(stmt, ast.If):
                total += FunctionLowerer._stmt_weight(stmt.then_body)
                total += FunctionLowerer._stmt_weight(stmt.else_body)
            elif isinstance(stmt, ast.While):
                total += FunctionLowerer._stmt_weight(stmt.body)
            elif isinstance(stmt, ast.For):
                total += FunctionLowerer._stmt_weight(stmt.body) + 2
        return total

    @classmethod
    def _arm_predicable(cls, stmts, budget: int) -> bool:
        """Can this arm be fully predicated (acyclic, within budget)?"""
        if cls._stmt_weight(stmts) > budget:
            return False
        for stmt in stmts:
            if isinstance(stmt, (ast.While, ast.For)):
                return False
            if isinstance(stmt, ast.If):
                # A nested if needs at least one predicable arm: the other
                # can always leave the region through a side exit.
                if not (
                    cls._arm_predicable(stmt.then_body, budget)
                    or cls._arm_predicable(stmt.else_body, budget)
                ):
                    return False
        return True

    # -- entry point -----------------------------------------------------------

    def lower(self):
        """Lower the function; returns the builder's Function (with vregs)."""
        for index, param in enumerate(self.func.params):
            reg = self.var_reg()
            self.vars[param] = reg
            self.fb.mov(reg, ARG_BASE + index)
        # Variables are function-scoped; pre-register every declaration so
        # lowering order (side-exit forms lower the arms out of source
        # order) cannot matter.  Zero-initialize each one in the prologue:
        # the language defines an unwritten variable to read 0 (a nullified
        # predicated declaration must leave the architected zero, and after
        # register allocation the physical register would otherwise hold
        # whatever interval lived there before).
        for stmt in ast.walk_stmts(self.func.body):
            if isinstance(stmt, ast.VarDecl) and stmt.name not in self.vars:
                reg = self.var_reg()
                self.vars[stmt.name] = reg
                self.fb.movi(reg, 0)
        self.lower_stmts(self.func.body, P_TRUE, -1)
        self.fb.ret(imm=0)
        return self.fb.function

    # -- statements --------------------------------------------------------------

    def lower_stmts(self, stmts, qp: int, region: int) -> None:
        for stmt in stmts:
            self.lower_stmt(stmt, qp, region)

    def lower_stmt(self, stmt, qp: int, region: int) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name not in self.vars:
                self.vars[stmt.name] = self.var_reg()
            if stmt.init is not None:
                value = self.lower_expr(stmt.init, qp, region)
                self._mark(self.fb.mov(self.vars[stmt.name], value, qp=qp),
                           region)
        elif isinstance(stmt, ast.Assign):
            value = self.lower_expr(stmt.value, qp, region)
            self._mark(self.fb.mov(self.vars[stmt.target], value, qp=qp),
                       region)
        elif isinstance(stmt, ast.ArrayAssign):
            index = self.lower_expr(stmt.index, qp, region)
            value = self.lower_expr(stmt.value, qp, region)
            base = self.global_bases[stmt.name]
            self._mark(self.fb.store(index, value, imm=base, qp=qp), region)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt, qp, region)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            self._lower_jump_out(self._loops[-1][0], qp, region, stmt.node_id)
        elif isinstance(stmt, ast.Continue):
            self._lower_jump_out(self._loops[-1][1], qp, region, stmt.node_id)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.lower_expr(stmt.value, qp, region)
                instr = self.fb.ret(ra=value, qp=qp)
            else:
                instr = self.fb.ret(imm=0, qp=qp)
            self._mark(instr, region)
            if qp != P_TRUE:
                instr.region_based = True
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr, qp, region)
        else:  # pragma: no cover
            raise CompileError(f"cannot lower {type(stmt).__name__}")

    def _lower_jump_out(self, label: str, qp: int, region: int,
                        src_id: int) -> None:
        """break/continue: unconditional outside regions, guarded inside."""
        if qp == P_TRUE:
            self.fb.jmp(label)
        else:
            instr = self.fb.br(
                label,
                qp=qp,
                kind=BranchKind.EXIT,
                region=region,
                region_based=True,
                src_id=src_id,
            )
            self._mark(instr, region)

    def _mark(self, instr: Instruction, region: int) -> None:
        if region >= 0:
            instr.region = region

    # -- loops ---------------------------------------------------------------------

    def _synth_id(self) -> int:
        """Fresh node id for compiler-synthesized AST (unrolling guards);
        offset far above anything the parser hands out."""
        self._next_synth = getattr(self, "_next_synth", 1_000_000) + 1
        return self._next_synth

    def _unroll_factor(self, body) -> int:
        """How many copies to emit for this loop body (1 = no unroll).

        Only innermost, reasonably small bodies are unrolled, and only in
        hyperblock compiles: the point is to merge several iterations
        into one predicated region so guard computations gain lead time
        over the branches they feed.
        """
        config = self.config
        if not config.hyperblocks or config.unroll <= 1:
            return 1
        if self._stmt_weight(body) > config.max_unroll_stmts:
            return 1
        for stmt in ast.walk_stmts(body):
            if isinstance(stmt, (ast.While, ast.For)):
                return 1
        return config.unroll

    def _exit_test(self, cond) -> ast.If:
        """``if (!(cond)) break;`` — the between-copies exit test."""
        line = cond.line
        negated = ast.Unary(self._synth_id(), line, "!", cond)
        brk = ast.Break(self._synth_id(), line)
        return ast.If(self._synth_id(), line, negated, [brk], [])

    def lower_while(self, stmt: ast.While) -> None:
        top = self.new_label("while")
        exit_label = self.new_label("wend")
        body = list(stmt.body)
        for _ in range(self._unroll_factor(stmt.body) - 1):
            body.append(self._exit_test(stmt.cond))
            body.extend(stmt.body)
        self.fb.label(top)
        self.lower_cond_branch(
            stmt.cond, exit_label, BranchKind.LOOP, stmt.node_id
        )
        self._loops.append((exit_label, top))
        self.lower_stmts(body, P_TRUE, -1)
        self._loops.pop()
        self.fb.jmp(top)
        self.fb.label(exit_label)

    def lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init, P_TRUE, -1)
        top = self.new_label("for")
        step_label = self.new_label("fstep")
        exit_label = self.new_label("fend")
        body = list(stmt.body)
        if stmt.cond is not None:
            for _ in range(self._unroll_factor(stmt.body) - 1):
                if stmt.step is not None:
                    body.append(stmt.step)
                body.append(self._exit_test(stmt.cond))
                body.extend(stmt.body)
        self.fb.label(top)
        if stmt.cond is not None:
            self.lower_cond_branch(
                stmt.cond, exit_label, BranchKind.LOOP, stmt.node_id
            )
        self._loops.append((exit_label, step_label))
        self.lower_stmts(body, P_TRUE, -1)
        self._loops.pop()
        self.fb.label(step_label)
        if stmt.step is not None:
            self.lower_stmt(stmt.step, P_TRUE, -1)
        self.fb.jmp(top)
        self.fb.label(exit_label)

    # -- if lowering ------------------------------------------------------------------

    def _decide_if(self, stmt: ast.If, qp: int):
        """Pick the lowering mode for one source ``if``."""
        config = self.config
        if not config.hyperblocks:
            return BRANCH
        budget = config.max_arm_stmts
        then_ok = self._arm_predicable(stmt.then_body, budget)
        else_ok = self._arm_predicable(stmt.else_body, budget)
        in_region = qp != P_TRUE

        if not then_ok and not else_ok:
            if in_region:  # pragma: no cover - prevented by _arm_predicable
                raise CompileError("unpredicable if inside a region")
            return BRANCH

        bias = self._bias(stmt)  # P(cond true); None if never executed
        weight_then = self._stmt_weight(stmt.then_body)
        weight_else = self._stmt_weight(stmt.else_body)
        tiny = (
            weight_then <= config.tiny_arm_stmts
            and weight_else <= config.tiny_arm_stmts
        )
        both_fit = (
            then_ok
            and else_ok
            and weight_then + weight_else <= config.max_region_stmts
        )

        cold = config.cold_threshold
        then_cold = bias is not None and bias < cold
        else_cold = bias is not None and bias > 1.0 - cold

        if both_fit and tiny:
            return FULL
        if both_fit and not then_cold and not else_cold:
            return FULL
        # One side is cold, too big, or unpredicable: keep it out of the
        # region behind a side exit, predicating the other side.
        if then_ok and not then_cold and (else_cold or not else_ok
                                          or not both_fit):
            return THEN_PRED
        if else_ok and not else_cold:
            return ELSE_PRED
        if in_region:
            # Must predicate something; prefer the predicable arm.
            return THEN_PRED if then_ok else ELSE_PRED
        return BRANCH

    def lower_if(self, stmt: ast.If, qp: int, region: int) -> None:
        mode = self._decide_if(stmt, qp)
        if mode == BRANCH:
            self._lower_if_branching(stmt)
            return
        if region < 0:
            self.region_counter[0] += 1
            region = self.region_counter[0]
        p_true, p_false = self.preds.alloc_pair()
        self.lower_cond_pred(stmt.cond, p_true, p_false, qp, region,
                             stmt.node_id)
        if mode == FULL:
            self.lower_stmts(stmt.then_body, p_true, region)
            if stmt.else_body:
                self.lower_stmts(stmt.else_body, p_false, region)
        elif mode == THEN_PRED:
            join = self.new_label("join")
            if stmt.else_body:
                else_label = self.new_label("else")
                self.fb.br(
                    else_label,
                    qp=p_false,
                    kind=BranchKind.EXIT,
                    region=region,
                    region_based=True,
                    src_id=stmt.node_id,
                )
                self.lower_stmts(stmt.then_body, p_true, region)
                self.fb.jmp(join)
                self.fb.label(else_label)
                self.lower_stmts(stmt.else_body, P_TRUE, -1)
            else:
                self.lower_stmts(stmt.then_body, p_true, region)
            self.fb.label(join)
        else:  # ELSE_PRED: side exit to the then-arm, else stays inline
            join = self.new_label("join")
            then_label = self.new_label("then")
            self.fb.br(
                then_label,
                qp=p_true,
                kind=BranchKind.EXIT,
                region=region,
                region_based=True,
                src_id=stmt.node_id,
            )
            if stmt.else_body:
                self.lower_stmts(stmt.else_body, p_false, region)
            self.fb.jmp(join)
            self.fb.label(then_label)
            self.lower_stmts(stmt.then_body, P_TRUE, -1)
            self.fb.label(join)
        self.preds.release(p_true, p_false)

    def _lower_if_branching(self, stmt: ast.If) -> None:
        """Classic lowering: condition ladder plus explicit arms."""
        join = self.new_label("join")
        else_label = self.new_label("else") if stmt.else_body else join
        self.lower_cond_branch(
            stmt.cond, else_label, BranchKind.COND, stmt.node_id
        )
        self.lower_stmts(stmt.then_body, P_TRUE, -1)
        if stmt.else_body:
            self.fb.jmp(join)
            self.fb.label(else_label)
            self.lower_stmts(stmt.else_body, P_TRUE, -1)
        self.fb.label(join)

    # -- conditions ----------------------------------------------------------------------

    def lower_cond_branch(self, cond, false_label: str, kind: BranchKind,
                          src_id: int) -> None:
        """Emit code that falls through when ``cond`` is true and branches
        to ``false_label`` otherwise.

        ``cond_style="ladder"`` expands ``&&``/``||``/``!`` structurally
        (several branches, a realistic if-ladder); ``"simple"`` evaluates
        the condition as a value and emits exactly one branch, which the
        profiling pass relies on.
        """
        if self.config.cond_style == "ladder":
            self._ladder(cond, None, false_label, kind, src_id)
        else:
            value = self.lower_expr(cond, P_TRUE, -1)
            p_true, p_false = self.preds.alloc_pair()
            self.fb.cmp(Relation.NE, p_true, p_false, ra=value, imm=0,
                        ctype=CmpType.UNC)
            self.fb.br(false_label, qp=p_false, kind=kind, src_id=src_id)
            self.preds.release(p_true, p_false)

    def _ladder(self, cond, true_label: Optional[str],
                false_label: Optional[str], kind: BranchKind,
                src_id: int) -> None:
        """Short-circuit lowering; exactly one of the labels is ``None``,
        meaning "fall through on that outcome"."""
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self._ladder(cond.operand, false_label, true_label, kind, src_id)
            return
        if isinstance(cond, ast.Logical) and cond.op == "&&":
            if false_label is None:
                # Fall through when false: a&&b false -> skip to a local
                # label after the true-jump.
                local_false = self.new_label("and")
                self._ladder(cond.left, None, local_false, kind, src_id)
                self._ladder(cond.right, true_label, None, kind, src_id)
                self.fb.label(local_false)
            else:
                self._ladder(cond.left, None, false_label, kind, src_id)
                self._ladder(cond.right, true_label, false_label, kind,
                             src_id)
            return
        if isinstance(cond, ast.Logical) and cond.op == "||":
            if true_label is None:
                local_true = self.new_label("or")
                self._ladder(cond.left, local_true, None, kind, src_id)
                self._ladder(cond.right, None, false_label, kind, src_id)
                self.fb.label(local_true)
            else:
                self._ladder(cond.left, true_label, None, kind, src_id)
                self._ladder(cond.right, true_label, false_label, kind,
                             src_id)
            return
        # Leaf: comparison or arbitrary expression.
        if isinstance(cond, ast.Binary) and cond.op in _RELATIONS:
            rel = _RELATIONS[cond.op]
            left = self.lower_expr(cond.left, P_TRUE, -1)
            right_reg, right_imm = self._reg_or_imm(cond.right)
        else:
            rel = Relation.NE
            left = self.lower_expr(cond, P_TRUE, -1)
            right_reg, right_imm = -1, 0
        p_true, p_false = self.preds.alloc_pair()
        self.fb.cmp(rel, p_true, p_false, ra=left, rb=right_reg,
                    imm=right_imm)
        if true_label is not None and false_label is not None:
            raise CompileError("ladder leaf needs a fallthrough side")
        if false_label is not None:
            self.fb.br(false_label, qp=p_false, kind=kind, src_id=src_id)
        elif true_label is not None:
            self.fb.br(true_label, qp=p_true, kind=kind, src_id=src_id)
        self.preds.release(p_true, p_false)

    def _reg_or_imm(self, expr):
        """Use the immediate form for literal right-hand sides."""
        if isinstance(expr, ast.IntLit):
            return -1, expr.value
        return self.lower_expr(expr, P_TRUE, -1), 0

    def lower_cond_pred(self, cond, p_true: int, p_false: int, qp: int,
                        region: int, src_id: int) -> None:
        """Evaluate ``cond`` into the predicate pair (``p_true``,
        ``p_false``) under ``qp``, unconditionally-typed so both targets
        read false whenever ``qp`` is false (nested regions)."""
        if isinstance(cond, ast.Binary) and cond.op in _RELATIONS:
            left = self.lower_expr(cond.left, qp, region)
            if isinstance(cond.right, ast.IntLit):
                right_reg, right_imm = -1, cond.right.value
            else:
                right_reg = self.lower_expr(cond.right, qp, region)
                right_imm = 0
            instr = self.fb.cmp(
                _RELATIONS[cond.op],
                p_true,
                p_false,
                ra=left,
                rb=right_reg,
                imm=right_imm,
                ctype=CmpType.UNC,
                qp=qp,
                src_id=src_id,
            )
        elif isinstance(cond, ast.Unary) and cond.op == "!":
            self.lower_cond_pred(cond.operand, p_false, p_true, qp, region,
                                 src_id)
            return
        else:
            value = self.lower_expr(cond, qp, region)
            instr = self.fb.cmp(
                Relation.NE,
                p_true,
                p_false,
                ra=value,
                imm=0,
                ctype=CmpType.UNC,
                qp=qp,
                src_id=src_id,
            )
        self._mark(instr, region)

    # -- expressions ----------------------------------------------------------------------

    def lower_expr(self, expr, qp: int, region: int) -> int:
        """Lower an expression to a register holding its value.

        Everything emitted is guarded by ``qp``: inside a predicated arm
        the whole computation is nullified when the arm is off, which is
        safe because consumers are nullified too.
        """
        if isinstance(expr, ast.IntLit):
            reg = self.temp()
            self._mark(self.fb.movi(reg, expr.value, qp=qp), region)
            return reg
        if isinstance(expr, ast.VarRef):
            return self.vars[expr.name]
        if isinstance(expr, ast.ArrayRef):
            index = self.lower_expr(expr.index, qp, region)
            reg = self.temp()
            base = self.global_bases[expr.name]
            self._mark(self.fb.load(reg, index, imm=base, qp=qp), region)
            return reg
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr, qp, region)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr, qp, region)
        if isinstance(expr, ast.Logical):
            return self._lower_logical(expr, qp, region)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, qp, region)
        raise CompileError(  # pragma: no cover
            f"cannot lower {type(expr).__name__}"
        )

    def _lower_unary(self, expr: ast.Unary, qp: int, region: int) -> int:
        reg = self.temp()
        if expr.op == "-":
            operand = self.lower_expr(expr.operand, qp, region)
            instr = self.fb.sub(reg, 0, operand, qp=qp)  # 0 - x via r0
        elif expr.op == "~":
            operand = self.lower_expr(expr.operand, qp, region)
            instr = self.fb.xori(reg, operand, -1, qp=qp)
        else:  # '!'
            operand = self.lower_expr(expr.operand, qp, region)
            pred = self.preds.alloc()
            cmp_instr = self.fb.cmp(
                Relation.EQ, pred, -1, ra=operand, imm=0,
                ctype=CmpType.UNC, qp=qp,
            )
            self._mark(cmp_instr, region)
            self._mark(self.fb.movi(reg, 0, qp=qp), region)
            instr = self.fb.movi(reg, 1, qp=pred)
            self.preds.release(pred)
        self._mark(instr, region)
        return reg

    def _lower_binary(self, expr: ast.Binary, qp: int, region: int) -> int:
        # Fold literal-literal arithmetic so workload constants are cheap.
        if expr.op in _RELATIONS:
            return self._lower_comparison(expr, qp, region)
        opcode = _ARITH_OPS[expr.op]
        left = self.lower_expr(expr.left, qp, region)
        reg = self.temp()
        if isinstance(expr.right, ast.IntLit):
            instr = self.fb.emit(
                Instruction(op=opcode, qp=qp, rd=reg, ra=left, rb=-1,
                            imm=expr.right.value)
            )
        else:
            right = self.lower_expr(expr.right, qp, region)
            instr = self.fb.emit(
                Instruction(op=opcode, qp=qp, rd=reg, ra=left, rb=right)
            )
        self._mark(instr, region)
        return reg

    def _lower_comparison(self, expr: ast.Binary, qp: int,
                          region: int) -> int:
        left = self.lower_expr(expr.left, qp, region)
        if isinstance(expr.right, ast.IntLit):
            right_reg, right_imm = -1, expr.right.value
        else:
            right_reg = self.lower_expr(expr.right, qp, region)
            right_imm = 0
        pred = self.preds.alloc()
        reg = self.temp()
        self._mark(
            self.fb.cmp(
                _RELATIONS[expr.op], pred, -1, ra=left, rb=right_reg,
                imm=right_imm, ctype=CmpType.UNC, qp=qp,
            ),
            region,
        )
        self._mark(self.fb.movi(reg, 0, qp=qp), region)
        self._mark(self.fb.movi(reg, 1, qp=pred), region)
        self.preds.release(pred)
        return reg

    def _lower_logical(self, expr: ast.Logical, qp: int, region: int) -> int:
        """Eager logical and/or via AND/OR-type compares (no branches).

        Safe because sema bans calls inside the operands.
        """
        left = self.lower_expr(expr.left, qp, region)
        pred = self.preds.alloc()
        self._mark(
            self.fb.cmp(Relation.NE, pred, -1, ra=left, imm=0,
                        ctype=CmpType.UNC, qp=qp),
            region,
        )
        right = self.lower_expr(expr.right, qp, region)
        ctype = CmpType.AND if expr.op == "&&" else CmpType.OR
        self._mark(
            self.fb.cmp(Relation.NE, pred, -1, ra=right, imm=0,
                        ctype=ctype, qp=qp),
            region,
        )
        reg = self.temp()
        self._mark(self.fb.movi(reg, 0, qp=qp), region)
        self._mark(self.fb.movi(reg, 1, qp=pred), region)
        self.preds.release(pred)
        return reg

    def _lower_call(self, expr: ast.Call, qp: int, region: int) -> int:
        if len(expr.args) > MAX_ARGS:
            raise CompileError(
                f"{expr.name!r} called with more than {MAX_ARGS} arguments"
            )
        arg_regs = [self.lower_expr(arg, qp, region) for arg in expr.args]
        for index, reg in enumerate(arg_regs):
            self._mark(self.fb.mov(ARG_BASE + index, reg, qp=qp), region)
        result = self.temp()
        instr = self.fb.call(result, expr.name, nargs=len(expr.args), qp=qp)
        self._mark(instr, region)
        if qp != P_TRUE:
            instr.region_based = True
        return result
