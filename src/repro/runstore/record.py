"""RunRecord: one JSON document per measured harness invocation.

A record has two layers with different determinism guarantees:

* the **payload** — kind, label, scale, compile config, the
  predictor/workload matrix and the flat ``metrics`` dict of headline
  numbers.  Everything in the payload is a pure function of the code and
  the invocation, so recording the same sweep serially or over N worker
  processes produces *byte-identical* canonical payloads (the
  determinism the sweep engine already guarantees for its results).
  :meth:`RunRecord.content_hash` hashes exactly this layer, and the
  run id is that hash — the store is content-addressed.
* the **envelope** — run id, UTC timestamp, git SHA + dirty flag,
  harness version, wall-time, sweep throughput and the telemetry
  registry snapshot.  These vary run to run (timings, machine, tree
  state) and are explicitly excluded from the hash; the comparison
  engine never gates on them.

``repro history`` and the CI regression gate consume these records; see
``docs/run-history.md`` for the schema and the baseline workflow.
"""

import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bump when the record layout changes; the checker and loader enforce it.
SCHEMA_VERSION = 1

#: Record kinds the harness emits today.
KINDS = ("experiment", "simulate", "sweep", "benchmark", "profile")


def canonical_json(payload: dict) -> str:
    """The byte-stable serialisation content hashes are computed over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def payload_hash(payload: dict) -> str:
    """sha256 (hex) of the canonical payload serialisation."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def request_payload(payload: dict) -> dict:
    """The *request* layer of a payload: identity minus measured numbers.

    A run's ``run_id`` covers the full payload including ``metrics``, so
    it cannot be computed before the run executes.  Everything else in
    the payload — kind, label, scale, compile config, matrix — is a pure
    function of the *request*, and because simulation is deterministic,
    equal request layers imply equal metrics and hence equal run ids.
    ``repro.serve`` memoizes on exactly this layer: canonicalize the
    incoming request into the payload the run *would* record, hash it
    without metrics, and an identical request becomes a store lookup.
    """
    return {key: value for key, value in payload.items()
            if key != "metrics"}


def request_key(payload: dict) -> str:
    """sha256 prefix (16 hex chars) of the request layer of ``payload``.

    Accepts either a full payload (metrics are excluded before hashing)
    or an already-stripped request payload; both hash identically.
    """
    return payload_hash(request_payload(payload))[:16]


def git_state(cwd=None) -> dict:
    """``{"sha": ..., "dirty": ...}`` of the enclosing git tree.

    Degrades to ``{"sha": "", "dirty": False}`` outside a repository or
    without a git binary — records must be writable anywhere.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.TimeoutExpired):
        return {"sha": "", "dirty": False}
    if not sha or " " in sha:
        return {"sha": "", "dirty": False}
    return {"sha": sha, "dirty": bool(status)}


def utc_timestamp(epoch: Optional[float] = None) -> str:
    """Compact sortable UTC stamp (``YYYYmmddTHHMMSS.ffffffZ``)."""
    epoch = time.time() if epoch is None else epoch
    base = time.strftime("%Y%m%dT%H%M%S", time.gmtime(epoch))
    return f"{base}.{int((epoch % 1) * 1e6):06d}Z"


@dataclass
class RunRecord:
    """One measured invocation, ready to serialise into the store."""

    kind: str
    label: str
    scale: str = ""
    compile_config: str = "hyperblock"
    #: predictor/workload/option matrix (identity of what was measured)
    matrix: dict = field(default_factory=dict)
    #: flat ``name -> number`` headline metrics; the diffable surface
    metrics: Dict[str, float] = field(default_factory=dict)
    # -- envelope (excluded from the content hash) ------------------------
    run_id: str = ""
    timestamp: str = ""
    git: dict = field(default_factory=dict)
    version: str = ""
    command: str = ""
    wall_seconds: float = 0.0
    #: sweep grid points per second, 0.0 when no sweep ran
    throughput: float = 0.0
    #: simulation core the run used ("object"/"fast"/"numpy", "" =
    #: unrecorded).  Envelope, not payload: the cores are bit-identical
    #: by contract, so the same measurement gets the same run id
    #: whichever core produced it.
    sim_core: str = ""
    telemetry: dict = field(default_factory=dict)

    def payload(self) -> dict:
        """The deterministic layer (what the content hash covers)."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "label": self.label,
            "scale": self.scale,
            "compile_config": self.compile_config,
            "matrix": self.matrix,
            "metrics": self.metrics,
        }

    def content_hash(self) -> str:
        return payload_hash(self.payload())

    def request_key(self) -> str:
        """Memoization key: hash of the payload minus ``metrics``."""
        return request_key(self.payload())

    def seal(self, *, epoch: Optional[float] = None,
             cwd=None) -> "RunRecord":
        """Stamp the envelope: run id, timestamp, git state, version.

        Idempotent for the run id (always recomputed from the payload);
        timestamp/git/version are only filled when still empty, so tests
        can pin them before sealing.
        """
        from repro import repro_version

        self.run_id = self.content_hash()[:12]
        if not self.timestamp:
            self.timestamp = utc_timestamp(epoch)
        if not self.git:
            self.git = git_state(cwd)
        if not self.version:
            self.version = repro_version()
        return self

    def to_dict(self) -> dict:
        document = self.payload()
        document.update({
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "git": self.git,
            "version": self.version,
            "command": self.command,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "sim_core": self.sim_core,
            "telemetry": self.telemetry,
        })
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "RunRecord":
        schema = document.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"run record schema {schema!r} not supported "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            kind=document["kind"],
            label=document["label"],
            scale=document.get("scale", ""),
            compile_config=document.get("compile_config", "hyperblock"),
            matrix=document.get("matrix", {}),
            metrics=document.get("metrics", {}),
            run_id=document.get("run_id", ""),
            timestamp=document.get("timestamp", ""),
            git=document.get("git", {}),
            version=document.get("version", ""),
            command=document.get("command", ""),
            wall_seconds=document.get("wall_seconds", 0.0),
            throughput=document.get("throughput", 0.0),
            sim_core=document.get("sim_core", ""),
            telemetry=document.get("telemetry", {}),
        )


# -- headline-metric extraction ------------------------------------------------


def _round(value: float) -> float:
    """Clamp float noise: metric payloads compare across processes.

    The simulation counters are integers and their derived rates are
    exact IEEE quotients, so 12 significant-digit rounding changes
    nothing today — it exists so a future metric computed through an
    accumulation order that *can* vary cannot silently break the
    byte-identical payload guarantee.
    """
    return float(f"{value:.12g}")


def metrics_from_sim_result(result, prefix: str = "") -> Dict[str, float]:
    """One :class:`~repro.sim.driver.SimResult`, prefixed and rounded."""
    head = f"{prefix}." if prefix else ""
    return {
        f"{head}{name}": _round(value)
        for name, value in result.headline_metrics().items()
    }


def metrics_from_experiment(result) -> Dict[str, float]:
    """An ``ExperimentResult`` flattened to ``<id>.<row>.<column>``."""
    exp_id = result.spec.id
    return {
        f"{exp_id}.{name}": _round(value)
        for name, value in result.numeric_metrics().items()
    }


def sweep_throughput(telemetry_snapshot: dict,
                     wall_seconds: float) -> float:
    """Grid points per second, from the merged counter snapshot."""
    points = telemetry_snapshot.get("counters", {}).get(
        "sweep.points_completed", 0
    )
    if not points or wall_seconds <= 0.0:
        return 0.0
    return points / wall_seconds


class RunRecorder:
    """Accumulates one invocation's numbers into a sealed RunRecord.

    Usage (what the CLI's ``--record`` flag does)::

        recorder = RunRecorder("experiment", "E2", scale="small")
        with recorder.timed():
            result = run_experiment(...)
        recorder.add_experiment(result)
        record = recorder.finish(registry)   # sealed, ready to store
    """

    def __init__(self, kind: str, label: str, scale: str = "",
                 compile_config: str = "hyperblock",
                 command: str = "", matrix: Optional[dict] = None):
        if kind not in KINDS:
            raise ValueError(f"unknown record kind {kind!r}")
        self.record = RunRecord(
            kind=kind, label=label, scale=scale,
            compile_config=compile_config, command=command,
            matrix=dict(matrix or {}),
        )
        self._started: Optional[float] = None

    def timed(self):
        return _RecorderTimer(self)

    def add_metrics(self, metrics: Dict[str, float]) -> None:
        self.record.metrics.update(metrics)

    def add_experiment(self, result) -> None:
        self.add_metrics(metrics_from_experiment(result))
        labels: List[str] = self.record.matrix.setdefault(
            "experiments", []
        )
        if result.spec.id not in labels:
            labels.append(result.spec.id)

    def add_sim_result(self, result, prefix: str = "") -> None:
        self.add_metrics(metrics_from_sim_result(result, prefix=prefix))

    def finish(self, registry=None) -> RunRecord:
        """Seal the record, snapshotting ``registry`` into the envelope."""
        if registry is not None:
            self.record.telemetry = registry.snapshot()
        self.record.throughput = _round(sweep_throughput(
            self.record.telemetry, self.record.wall_seconds
        ))
        return self.record.seal()


class _RecorderTimer:
    def __init__(self, recorder: RunRecorder):
        self._recorder = recorder

    def __enter__(self):
        self._start = time.perf_counter()
        return self._recorder

    def __exit__(self, *exc):
        self._recorder.record.wall_seconds += (
            time.perf_counter() - self._start
        )
        return False
