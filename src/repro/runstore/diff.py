"""Run comparison: pairwise diffs, regression gating and a noise model.

Two modes, both deterministic (metrics are walked in sorted-name
order, so reports and exit decisions never depend on dict layout):

* **pairwise** — :func:`diff_runs` compares a current record against an
  explicit baseline (another stored run, or a committed golden file).
  A metric regresses when it moved in its *worse* direction by more
  than both the absolute and relative thresholds.
* **rolling** — :func:`diff_against_history` seeds a
  :class:`NoiseModel` from the last N stored runs of the same
  kind/label and flags the current run only where it falls outside
  ``mean ± k·sigma`` (and past the absolute floor) — the per-metric
  noise band replaces a hand-tuned relative threshold once enough
  history exists.

Direction handling: most headline metrics are *worse when higher*
(misprediction rates, mpki, wall times); a small suffix list marks the
better-when-higher family (accuracy, coverage, IPC, speedup,
throughput).  Improvements are reported but never gate.
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.runstore.record import RunRecord

#: Metric-name suffixes where a *higher* value is an improvement.
HIGHER_IS_BETTER_SUFFIXES = (
    "accuracy", "coverage", "ipc", "speedup", "throughput",
    "branch_reduction", "benefit",
)

#: Default gate: both must be exceeded for a pairwise regression.
DEFAULT_ABS_THRESHOLD = 0.0005
DEFAULT_REL_THRESHOLD = 0.02

#: Rolling mode: flag beyond mean + k·sigma of the seeded noise model.
DEFAULT_SIGMA = 3.0

#: Rolling mode: runs seeding the noise model.
DEFAULT_WINDOW = 10


def higher_is_better(name: str) -> bool:
    short = name.rsplit(".", 1)[-1]
    return short.endswith(HIGHER_IS_BETTER_SUFFIXES)


@dataclass(frozen=True)
class Thresholds:
    """Pairwise gate: a regression must clear both bounds."""

    absolute: float = DEFAULT_ABS_THRESHOLD
    relative: float = DEFAULT_REL_THRESHOLD


@dataclass
class MetricDelta:
    """One metric's movement between baseline and current."""

    name: str
    baseline: Optional[float]  #: None when the metric is new
    current: Optional[float]  #: None when the metric disappeared
    delta: float = 0.0
    relative: float = 0.0  #: delta / |baseline| (0 for a zero baseline)
    #: positive when the metric moved in its worse direction
    worsening: float = 0.0
    regression: bool = False
    #: noise-model context, rolling mode only
    mean: Optional[float] = None
    sigma: Optional[float] = None


@dataclass
class RunDiff:
    """The full comparison of one run against its baseline."""

    baseline_id: str
    current_id: str
    mode: str  #: "pairwise" or "rolling"
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def changed(self) -> List[MetricDelta]:
        return [
            d for d in self.deltas
            if d.baseline is not None and d.current is not None
            and d.delta != 0.0
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline_id,
            "current": self.current_id,
            "mode": self.mode,
            "ok": self.ok,
            "regressions": [d.name for d in self.regressions],
            "deltas": [
                {
                    "metric": d.name,
                    "baseline": d.baseline,
                    "current": d.current,
                    "delta": d.delta,
                    "relative": d.relative,
                    "regression": d.regression,
                    **(
                        {"mean": d.mean, "sigma": d.sigma}
                        if d.mean is not None
                        else {}
                    ),
                }
                for d in self.deltas
                if d.regression or d.delta != 0.0
                or d.baseline is None or d.current is None
            ],
        }


def _worsening(name: str, delta: float) -> float:
    return -delta if higher_is_better(name) else delta


def diff_runs(
    current: RunRecord,
    baseline: RunRecord,
    thresholds: Thresholds = Thresholds(),
) -> RunDiff:
    """Pairwise comparison; regressions must clear both thresholds."""
    diff = RunDiff(
        baseline_id=baseline.run_id or "<baseline>",
        current_id=current.run_id or "<current>",
        mode="pairwise",
    )
    names = sorted(set(baseline.metrics) | set(current.metrics))
    for name in names:
        base = baseline.metrics.get(name)
        cur = current.metrics.get(name)
        delta = MetricDelta(name=name, baseline=base, current=cur)
        if base is not None and cur is not None:
            delta.delta = cur - base
            delta.relative = (
                delta.delta / abs(base) if base else 0.0
            )
            delta.worsening = _worsening(name, delta.delta)
            delta.regression = (
                delta.worsening > thresholds.absolute
                and abs(delta.relative) > thresholds.relative
            ) if base else delta.worsening > thresholds.absolute
        diff.deltas.append(delta)
    return diff


# -- rolling baseline ----------------------------------------------------------


@dataclass(frozen=True)
class MetricNoise:
    """Per-metric statistics over the seeding window."""

    mean: float
    sigma: float  #: population standard deviation
    samples: int


class NoiseModel:
    """``mean ± sigma`` per metric, seeded from recent stored runs."""

    def __init__(self, stats: Dict[str, MetricNoise]):
        self.stats = stats

    @classmethod
    def from_records(cls, records: Sequence[RunRecord]) -> "NoiseModel":
        """Seed from ``records`` (typically the last N of one series)."""
        samples: Dict[str, List[float]] = {}
        for record in records:
            for name, value in record.metrics.items():
                samples.setdefault(name, []).append(value)
        stats = {}
        for name in sorted(samples):
            values = samples[name]
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            stats[name] = MetricNoise(
                mean=mean, sigma=math.sqrt(variance), samples=len(values)
            )
        return cls(stats)


def diff_against_history(
    current: RunRecord,
    history: Sequence[RunRecord],
    sigma: float = DEFAULT_SIGMA,
    absolute_floor: float = DEFAULT_ABS_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> RunDiff:
    """Compare ``current`` against a noise model of recent history.

    ``history`` is oldest-first and must not include ``current``; only
    the trailing ``window`` records seed the model.  A metric regresses
    when it sits more than ``k·sigma`` beyond the window mean in its
    worse direction *and* more than ``absolute_floor`` away — the floor
    keeps a zero-variance window (deterministic metrics never move)
    from flagging sub-threshold wobble.
    """
    seed = list(history)[-window:] if window else list(history)
    model = NoiseModel.from_records(seed)
    diff = RunDiff(
        baseline_id=f"rolling({len(seed)})",
        current_id=current.run_id or "<current>",
        mode="rolling",
    )
    names = sorted(set(model.stats) | set(current.metrics))
    for name in names:
        noise = model.stats.get(name)
        cur = current.metrics.get(name)
        delta = MetricDelta(
            name=name,
            baseline=noise.mean if noise else None,
            current=cur,
        )
        if noise is not None and cur is not None:
            delta.mean = noise.mean
            delta.sigma = noise.sigma
            delta.delta = cur - noise.mean
            delta.relative = (
                delta.delta / abs(noise.mean) if noise.mean else 0.0
            )
            delta.worsening = _worsening(name, delta.delta)
            delta.regression = (
                delta.worsening > sigma * noise.sigma
                and delta.worsening > absolute_floor
            )
        diff.deltas.append(delta)
    return diff


# -- rendering -----------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6f}"


def render_diff(diff: RunDiff, verbose: bool = False) -> str:
    """Plain-text comparison report (stable ordering)."""
    lines = [
        f"baseline : {diff.baseline_id}",
        f"current  : {diff.current_id}",
        f"mode     : {diff.mode}",
    ]
    regressions = diff.regressions
    shown = diff.deltas if verbose else [
        d for d in diff.deltas
        if d.regression or d.delta != 0.0
        or d.baseline is None or d.current is None
    ]
    if shown:
        lines.append("")
        width = max(len(d.name) for d in shown)
        for d in shown:
            if d.baseline is None:
                note = "new metric"
            elif d.current is None:
                note = "metric disappeared"
            else:
                note = (
                    f"{_fmt(d.baseline)} -> {_fmt(d.current)} "
                    f"({d.delta:+.6f}, {100 * d.relative:+.2f}%)"
                )
                if d.sigma is not None:
                    note += f" [sigma {d.sigma:.6f}]"
            flag = "REGRESSION " if d.regression else "           "
            lines.append(f"  {flag}{d.name:<{width}}  {note}")
    lines.append("")
    if regressions:
        names = ", ".join(d.name for d in regressions)
        lines.append(
            f"FAIL: {len(regressions)} regressed metric(s): {names}"
        )
    else:
        lines.append(
            f"ok: no regressions across {len(diff.deltas)} metric(s)"
        )
    return "\n".join(lines)
