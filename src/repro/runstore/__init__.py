"""Run-history store: persistent RunRecords with regression detection.

The longitudinal complement to :mod:`repro.telemetry` (one run, in
depth): every ``--record``-ed experiment, simulation or benchmark run
appends one schema-versioned JSON document to an append-only,
content-addressed store (default ``.repro/runs/``), capturing the
headline metrics, the merged telemetry snapshot and the envelope
(timestamp, git SHA, harness version, wall time, sweep throughput).

On top of the store sit a comparison engine — pairwise diffs against a
committed golden baseline, or a rolling ``mean ± k·sigma`` noise model
seeded from recent runs — and trend renderers that turn the history
into markdown/JSON timelines.  Surfaced as ``repro history
list|show|diff|trend|gc`` and the ``--record`` flag on ``run``,
``run-all`` and ``simulate``; see ``docs/run-history.md``.
"""

from repro.runstore.diff import (
    DEFAULT_ABS_THRESHOLD,
    DEFAULT_REL_THRESHOLD,
    DEFAULT_SIGMA,
    DEFAULT_WINDOW,
    MetricDelta,
    MetricNoise,
    NoiseModel,
    RunDiff,
    Thresholds,
    diff_against_history,
    diff_runs,
    higher_is_better,
    render_diff,
)
from repro.runstore.record import (
    KINDS,
    SCHEMA_VERSION,
    RunRecord,
    RunRecorder,
    canonical_json,
    git_state,
    metrics_from_experiment,
    metrics_from_sim_result,
    payload_hash,
    request_key,
    request_payload,
    sweep_throughput,
    utc_timestamp,
)
from repro.runstore.store import (
    DEFAULT_ROOT,
    IF_EXISTS,
    STORE_ENV,
    RunStore,
    load_record,
    resolve_root,
)
from repro.runstore.trend import (
    render_trend_json,
    render_trend_markdown,
    sparkline,
    trend_series,
)

__all__ = [
    "DEFAULT_ABS_THRESHOLD",
    "DEFAULT_REL_THRESHOLD",
    "DEFAULT_ROOT",
    "DEFAULT_SIGMA",
    "DEFAULT_WINDOW",
    "IF_EXISTS",
    "KINDS",
    "MetricDelta",
    "MetricNoise",
    "NoiseModel",
    "RunDiff",
    "RunRecord",
    "RunRecorder",
    "RunStore",
    "SCHEMA_VERSION",
    "STORE_ENV",
    "Thresholds",
    "canonical_json",
    "diff_against_history",
    "diff_runs",
    "git_state",
    "higher_is_better",
    "load_record",
    "metrics_from_experiment",
    "metrics_from_sim_result",
    "payload_hash",
    "render_diff",
    "request_key",
    "request_payload",
    "render_trend_json",
    "render_trend_markdown",
    "resolve_root",
    "sparkline",
    "sweep_throughput",
    "trend_series",
    "utc_timestamp",
]
