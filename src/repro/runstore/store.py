"""The on-disk run-history store.

Layout: one JSON document per run under the store root (default
``.repro/runs/``, overridable with ``$REPRO_RUNSTORE`` or the CLI's
``--store``), named ``<timestamp>-<run_id>.json`` — the timestamp prefix
makes a plain directory listing chronological, the run-id suffix is the
content hash of the record's deterministic payload (see
:mod:`repro.runstore.record`).

The store is append-only: records are written once, atomically (unique
temp file + ``os.replace`` in the same directory, the same publish
pattern the trace cache uses), and never mutated.  ``gc`` is the only
deletion path and only ever drops whole records, oldest first.
"""

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from repro.runstore.record import RunRecord

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Environment variable overriding the default store root.
STORE_ENV = "REPRO_RUNSTORE"

#: Accepted ``RunStore.add`` collision policies.
IF_EXISTS = ("append", "skip", "replace")

#: Default store root, relative to the working directory.
DEFAULT_ROOT = ".repro/runs"


def resolve_root(root=None) -> Path:
    """Store root: argument > ``$REPRO_RUNSTORE`` > ``.repro/runs``."""
    if root is not None:
        return Path(root)
    env = os.environ.get(STORE_ENV, "").strip()
    return Path(env) if env else Path(DEFAULT_ROOT)


class RunStore:
    """Append-only, content-addressed collection of RunRecords."""

    def __init__(self, root=None):
        self.root = resolve_root(root)

    # -- writing ----------------------------------------------------------

    def add(self, record: RunRecord, if_exists: str = "append") -> Path:
        """Atomically publish a sealed record; returns its path.

        ``if_exists`` decides what happens when the store already holds
        a record with the same ``run_id`` (same content, earlier
        timestamp — e.g. two daemon workers finishing the same memoized
        job, or a re-recorded identical run):

        * ``"append"`` — the historical behaviour: every invocation gets
          its own timestamped file, duplicates included.  Right for the
          run-*history* reading of the store.
        * ``"skip"`` — first writer wins: if any record with this run id
          exists, nothing is written and the existing (newest) path is
          returned.  Right for the result-*cache* reading: N racing
          writers of identical content perform exactly one write.
        * ``"replace"`` — last writer wins: the new file is published
          and any older files with the same run id are removed, so at
          most one record per run id survives.

        The ``skip``/``replace`` paths serialise racing writers of the
        *same* run id with a per-run-id advisory file lock (the same
        pattern the trace cache uses per key); the publish itself stays
        the atomic temp-file + ``os.replace`` it always was, so readers
        never observe a partial record under any policy.
        """
        if if_exists not in IF_EXISTS:
            raise ValueError(
                f"if_exists must be one of {IF_EXISTS}, got {if_exists!r}"
            )
        if not record.run_id or not record.timestamp:
            record.seal()
        self.root.mkdir(parents=True, exist_ok=True)
        if if_exists == "append":
            return self._publish(record)
        with self._run_id_lock(record.run_id):
            existing = self.paths_for(record.run_id)
            if existing and if_exists == "skip":
                return existing[-1]
            path = self._publish(record)
            for victim in existing:
                if victim != path:
                    victim.unlink(missing_ok=True)
            return path

    def _publish(self, record: RunRecord) -> Path:
        path = self.root / f"{record.timestamp}-{record.run_id}.json"
        document = json.dumps(record.to_dict(), indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(document + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @contextmanager
    def _run_id_lock(self, run_id: str):
        """Exclusive per-run-id advisory lock (no-op where unsupported)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.root / f".lock-{run_id}"
        with open(lock_path, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- reading ----------------------------------------------------------

    def paths(self) -> List[Path]:
        """Record files, oldest first (filenames sort chronologically)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p for p in self.root.iterdir()
            if p.suffix == ".json" and not p.name.startswith(".")
        )

    def paths_for(self, run_id: str) -> List[Path]:
        """Record files holding ``run_id`` exactly, oldest first."""
        suffix = f"-{run_id}"
        return [p for p in self.paths() if p.stem.endswith(suffix)]

    def contains(self, run_id: str) -> bool:
        """Whether any stored record has exactly this run id."""
        return bool(self.paths_for(run_id))

    def find(self, run_id: str) -> Optional[RunRecord]:
        """The newest stored record with exactly this run id, if any."""
        paths = self.paths_for(run_id)
        return load_record(paths[-1]) if paths else None

    def records(self, kind: Optional[str] = None,
                label: Optional[str] = None) -> List[RunRecord]:
        """Load records, oldest first, optionally filtered."""
        out = []
        for path in self.paths():
            record = load_record(path)
            if kind is not None and record.kind != kind:
                continue
            if label is not None and record.label != label:
                continue
            out.append(record)
        return out

    def resolve(self, selector: str, kind: Optional[str] = None,
                label: Optional[str] = None) -> RunRecord:
        """Resolve a run selector to one record.

        Accepted forms, tried in order:

        * a path to a record JSON file (e.g. a committed baseline);
        * ``HEAD`` / ``HEAD~N`` — the latest / N-th-latest stored run
          (after the kind/label filter);
        * a run-id prefix — the latest stored run whose id matches.
        """
        candidate = Path(selector)
        if candidate.is_file():
            return load_record(candidate)
        records = self.records(kind=kind, label=label)
        if selector.upper() == "HEAD" or selector.upper().startswith(
            "HEAD~"
        ):
            back = 0
            if "~" in selector:
                tail = selector.split("~", 1)[1]
                try:
                    back = int(tail)
                except ValueError:
                    raise KeyError(
                        f"bad HEAD offset in selector {selector!r}"
                    ) from None
            if back >= len(records):
                raise KeyError(
                    f"selector {selector!r}: only {len(records)} "
                    "matching run(s) in the store"
                )
            return records[-1 - back]
        matches = [r for r in records if r.run_id.startswith(selector)]
        if not matches:
            raise KeyError(
                f"no stored run matches {selector!r} "
                f"(store: {self.root})"
            )
        return matches[-1]  # newest run with that content

    # -- retention --------------------------------------------------------

    def gc(self, keep: int = 50, dry_run: bool = False) -> List[Path]:
        """Drop the oldest records beyond ``keep``; returns their paths."""
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        paths = self.paths()
        victims = paths[: max(0, len(paths) - keep)]
        if not dry_run:
            for path in victims:
                path.unlink()
        return victims


def load_record(path) -> RunRecord:
    """Load and validate one record file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from None
    record = RunRecord.from_dict(document)
    expected = record.content_hash()[:12]
    if record.run_id and record.run_id != expected:
        raise ValueError(
            f"{path}: run_id {record.run_id} does not match the payload "
            f"content hash {expected} — record corrupted or hand-edited"
        )
    return record
