"""Trend reports: per-metric timelines over the stored run history.

``repro history trend`` renders how each headline metric evolved across
the records in the store (oldest first), as markdown — one table row
per metric with first/last/best/worst, a relative change, and a unicode
sparkline — or as JSON timelines for plotting tooling.  Rendering is
deterministic: metrics sort by name, runs by store order.
"""

import fnmatch
import json
from typing import Dict, List, Optional, Sequence

from repro.runstore.diff import higher_is_better
from repro.runstore.record import RunRecord

#: Sparkline glyphs, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Map a series onto eight block-glyph levels (flat series → mid)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return SPARK_LEVELS[3] * len(values)
    span = hi - lo
    out = []
    for value in values:
        level = int((value - lo) / span * (len(SPARK_LEVELS) - 1))
        out.append(SPARK_LEVELS[level])
    return "".join(out)


def trend_series(
    records: Sequence[RunRecord],
    pattern: Optional[str] = None,
) -> Dict[str, List[Optional[float]]]:
    """Per-metric value series across ``records`` (oldest first).

    A run that lacks a metric contributes ``None`` at its position, so
    every series has one slot per record.  ``pattern`` is an
    ``fnmatch``-style filter over metric names.
    """
    names = sorted({
        name for record in records for name in record.metrics
    })
    if pattern:
        names = [n for n in names if fnmatch.fnmatch(n, pattern)]
    return {
        name: [record.metrics.get(name) for record in records]
        for name in names
    }


def render_trend_markdown(
    records: Sequence[RunRecord],
    pattern: Optional[str] = None,
    title: str = "Run-history trends",
) -> str:
    """Markdown timeline: one summary row + sparkline per metric."""
    records = list(records)
    lines = [f"# {title}", ""]
    if not records:
        lines.append("(no runs in the store)")
        return "\n".join(lines) + "\n"
    first, last = records[0], records[-1]
    lines.append(
        f"- runs: {len(records)} "
        f"({first.timestamp or '?'} → {last.timestamp or '?'})"
    )
    labels = sorted({r.label for r in records if r.label})
    if labels:
        lines.append(f"- series: {', '.join(labels)}")
    lines.append("")
    series = trend_series(records, pattern)
    if not series:
        lines.append("(no metrics matched)")
        return "\n".join(lines) + "\n"
    lines.append(
        "| metric | first | last | change | best | worst | trend |"
    )
    lines.append("|---|---|---|---|---|---|---|")
    for name, values in series.items():
        present = [v for v in values if v is not None]
        if not present:
            continue
        first_v, last_v = present[0], present[-1]
        change = (
            f"{100 * (last_v - first_v) / abs(first_v):+.2f}%"
            if first_v else f"{last_v - first_v:+.6g}"
        )
        best, worst = (
            (max(present), min(present))
            if higher_is_better(name)
            else (min(present), max(present))
        )
        lines.append(
            f"| {name} | {first_v:.6g} | {last_v:.6g} | {change} "
            f"| {best:.6g} | {worst:.6g} | {sparkline(present)} |"
        )
    return "\n".join(lines) + "\n"


def render_trend_json(
    records: Sequence[RunRecord],
    pattern: Optional[str] = None,
) -> str:
    """JSON timelines: run envelopes plus one series per metric."""
    records = list(records)
    payload = {
        "runs": [
            {
                "run_id": r.run_id,
                "timestamp": r.timestamp,
                "kind": r.kind,
                "label": r.label,
                "scale": r.scale,
                "git_sha": r.git.get("sha", ""),
                "version": r.version,
            }
            for r in records
        ],
        "metrics": trend_series(records, pattern),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
