"""Prediction events: the per-dynamic-branch record the profiler traces.

One :class:`PredictionEvent` describes everything the front end knew (and
decided) about a single dynamic branch: where it sits statically (pc,
function, region), how long its qualifying predicate had been resolved by
fetch, what the squash false-path filter did with it, whether predicate
global update had freshly inserted history bits, and how the prediction
compared with the outcome.  The simulation driver emits these into an
:class:`~repro.profiler.collector.EventCollector`; the stream is the raw
material for misprediction attribution
(:class:`~repro.profiler.attribution.AttributionAggregator`).

Events are deliberately flat and enum-coded so they serialise to one
small JSON object per line (``repro profile --events out.jsonl``) and
reconstruct losslessly with :func:`PredictionEvent.from_dict`.
"""

import enum
from typing import Dict

#: Version of the on-disk event schema (bumped on incompatible change).
EVENT_SCHEMA_VERSION = 1

#: ``conf`` value meaning "no confidence estimate was attached".
CONF_UNKNOWN = -1
#: ``conf`` value for squash-filtered branches: the direction was certain.
CONF_PERFECT = 100

#: ``avail`` value meaning "guard never architecturally written (or p0)".
AVAIL_NEVER = -1


class SFPDecision(enum.IntEnum):
    """What the squash false-path filter did with a branch."""

    NOT_FILTERED = 0  #: filter off, or the guard was not resolved by fetch
    FILTERED_CORRECT = 1  #: squashed, and the asserted direction was right
    FILTERED_WRONG = 2  #: squashed, but the asserted direction was wrong


class PGUPath(enum.IntEnum):
    """How predicate global update shaped the history this branch saw."""

    OFF = 0  #: PGU disabled — history holds branch outcomes only
    UPDATE = 1  #: no predicate define entered history since the previous
    #: branch: the prediction rode on outcome-update bits alone
    INSERT = 2  #: >=1 predicate define was freshly inserted before fetch


class PredictionEvent:
    """One dynamic branch through the predict/squash machinery.

    Attributes:
        seq: index of this event in the trace's dynamic branch stream
            (the profiler's deterministic sampling key).
        pc: static instruction index of the branch.
        function: containing function name (``""`` until annotated from a
            :class:`~repro.profiler.collector.SiteTable`).
        region_id: hyperblock/region id, ``-1`` outside any region (or
            until annotated).
        branch_class: :class:`~repro.trace.container.BranchClass` value.
        region_based: branch left inside a predicated region.
        guard: qualifying predicate register (0 = p0, unguarded).
        avail: dynamic-instruction distance between the guard's defining
            write and this branch's fetch (``AVAIL_NEVER`` if the guard
            was never written).  The guard is *visible* at fetch iff
            ``avail >= D``.
        sfp: :class:`SFPDecision` value.
        pgu: :class:`PGUPath` value.
        pgu_bits: predicate-define bits inserted into global history
            between the previous branch event and this one.
        predicted: direction the front end asserted (squash) or the
            predictor produced.
        taken: actual outcome.
        conf: confidence attached to the prediction (``CONF_PERFECT`` for
            squashes, ``CONF_UNKNOWN`` when no estimator ran).
    """

    __slots__ = (
        "seq", "pc", "function", "region_id", "branch_class",
        "region_based", "guard", "avail", "sfp", "pgu", "pgu_bits",
        "predicted", "taken", "conf",
    )

    def __init__(self, seq, pc, branch_class, region_based, guard, avail,
                 sfp, pgu, pgu_bits, predicted, taken,
                 function="", region_id=-1, conf=CONF_UNKNOWN):
        self.seq = seq
        self.pc = pc
        self.function = function
        self.region_id = region_id
        self.branch_class = branch_class
        self.region_based = region_based
        self.guard = guard
        self.avail = avail
        self.sfp = sfp
        self.pgu = pgu
        self.pgu_bits = pgu_bits
        self.predicted = predicted
        self.taken = taken
        self.conf = conf

    @property
    def correct(self) -> bool:
        """Did the asserted direction match the outcome?"""
        return self.predicted == self.taken

    @property
    def filtered(self) -> bool:
        """Was the branch handled by the squash filter?"""
        return self.sfp != SFPDecision.NOT_FILTERED

    def to_dict(self) -> Dict:
        """Flat JSON-serialisable form (one JSONL record)."""
        return {
            "event": "prediction",
            "seq": self.seq,
            "pc": self.pc,
            "function": self.function,
            "region_id": self.region_id,
            "class": int(self.branch_class),
            "region": bool(self.region_based),
            "guard": self.guard,
            "avail": self.avail,
            "sfp": int(self.sfp),
            "pgu": int(self.pgu),
            "pgu_bits": self.pgu_bits,
            "predicted": bool(self.predicted),
            "taken": bool(self.taken),
            "conf": self.conf,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PredictionEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            seq=int(data["seq"]),
            pc=int(data["pc"]),
            function=data.get("function", ""),
            region_id=int(data.get("region_id", -1)),
            branch_class=int(data["class"]),
            region_based=bool(data["region"]),
            guard=int(data["guard"]),
            avail=int(data["avail"]),
            sfp=SFPDecision(data["sfp"]),
            pgu=PGUPath(data["pgu"]),
            pgu_bits=int(data["pgu_bits"]),
            predicted=bool(data["predicted"]),
            taken=bool(data["taken"]),
            conf=int(data.get("conf", CONF_UNKNOWN)),
        )

    def __eq__(self, other):
        if not isinstance(other, PredictionEvent):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self.__slots__
        )

    def __repr__(self):
        return (
            f"PredictionEvent(seq={self.seq}, pc={self.pc}, "
            f"predicted={self.predicted}, taken={self.taken}, "
            f"sfp={SFPDecision(self.sfp).name}, "
            f"pgu={PGUPath(self.pgu).name})"
        )


#: Field names and JSON types of one ``"prediction"`` JSONL record —
#: the contract CI's schema check validates against.
EVENT_FIELDS = {
    "event": str,
    "seq": int,
    "pc": int,
    "function": str,
    "region_id": int,
    "class": int,
    "region": bool,
    "guard": int,
    "avail": int,
    "sfp": int,
    "pgu": int,
    "pgu_bits": int,
    "predicted": bool,
    "taken": bool,
    "conf": int,
}
