"""Misprediction attribution over a prediction-event stream.

An :class:`AttributionAggregator` folds
:class:`~repro.profiler.events.PredictionEvent` records into the views an
architect actually reads:

* **per-static-branch attribution** with H2P ranking — the handful of
  hard-to-predict sites covering most mispredictions (Lin & Tarsa 2019's
  observation, measured here per workload and compile config);
* **per-region and per-class breakdowns** — where region-based branches
  inside hyperblocks stand relative to normal and loop branches;
* **per-mechanism breakdowns** — squash-filter accuracy
  (filtered-correct vs filtered-wrong), PGU insert-vs-update path
  accuracy, and predicate-availability-at-fetch histograms;
* **a phase timeline** — branches/mispredictions per fixed interval of
  the dynamic branch stream.

Aggregators pickle and :meth:`~AttributionAggregator.merge`, exactly like
:class:`~repro.telemetry.MetricsRegistry`: sweep workers profile their
points under private aggregators and the parent folds them in canonical
point order, so a 4-worker sweep's merged attribution is bit-identical
to a serial one.
"""

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.profiler.events import (
    AVAIL_NEVER,
    PGUPath,
    PredictionEvent,
    SFPDecision,
)
from repro.profiler.spec import ProfileSpec
from repro.trace.container import BranchClass

#: Report/JSON schema version for :meth:`AttributionAggregator.to_dict`.
REPORT_SCHEMA_VERSION = 1

#: Inclusive upper bounds of the availability-distance histogram; one
#: extra overflow bucket catches larger distances, and guards that were
#: never written are counted separately (``AVAIL_NEVER``).
AVAIL_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64)


def avail_bucket_labels() -> List[str]:
    """Human-readable labels for :data:`AVAIL_BUCKETS` (+ overflow)."""
    labels = []
    lower = None
    for bound in AVAIL_BUCKETS:
        if lower is None or bound == lower + 1:
            labels.append(str(bound))
        else:
            labels.append(f"{lower + 1}-{bound}")
        lower = bound
    labels.append(f">{AVAIL_BUCKETS[-1]}")
    return labels


@dataclass
class BranchRecord:
    """Attribution counts for one static branch site."""

    workload: str
    pc: int
    function: str = ""
    region_id: int = -1
    region_based: bool = False
    branch_class: int = int(BranchClass.NORMAL)
    executions: int = 0
    taken: int = 0
    mispredictions: int = 0
    filtered: int = 0
    filtered_wrong: int = 0

    @property
    def misprediction_rate(self) -> float:
        return (
            self.mispredictions / self.executions if self.executions else 0.0
        )

    @property
    def taken_rate(self) -> float:
        return self.taken / self.executions if self.executions else 0.0

    def merge(self, other: "BranchRecord") -> None:
        self.executions += other.executions
        self.taken += other.taken
        self.mispredictions += other.mispredictions
        self.filtered += other.filtered
        self.filtered_wrong += other.filtered_wrong
        if not self.function and other.function:
            self.function = other.function
        if self.region_id < 0 <= other.region_id:
            self.region_id = other.region_id

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "pc": self.pc,
            "function": self.function,
            "region_id": self.region_id,
            "region": self.region_based,
            "class": int(self.branch_class),
            "executions": self.executions,
            "taken": self.taken,
            "mispredictions": self.mispredictions,
            "filtered": self.filtered,
            "filtered_wrong": self.filtered_wrong,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BranchRecord":
        return cls(
            workload=data["workload"],
            pc=int(data["pc"]),
            function=data.get("function", ""),
            region_id=int(data.get("region_id", -1)),
            region_based=bool(data["region"]),
            branch_class=int(data["class"]),
            executions=int(data["executions"]),
            taken=int(data["taken"]),
            mispredictions=int(data["mispredictions"]),
            filtered=int(data["filtered"]),
            filtered_wrong=int(data["filtered_wrong"]),
        )


@dataclass
class _Bucketed:
    """One availability histogram: fixed buckets + a "never" slot."""

    counts: List[int] = field(
        default_factory=lambda: [0] * (len(AVAIL_BUCKETS) + 1)
    )
    never: int = 0

    def observe(self, avail: int) -> None:
        if avail == AVAIL_NEVER:
            self.never += 1
        else:
            self.counts[bisect_left(AVAIL_BUCKETS, avail)] += 1

    def merge(self, other: "_Bucketed") -> None:
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.never += other.never

    def to_dict(self) -> dict:
        return {"counts": list(self.counts), "never": self.never}


class AttributionAggregator:
    """Streaming attribution state; picklable and mergeable.

    ``workload`` labels every site record this aggregator creates, so
    merging aggregators from different traces keeps their static pcs
    apart (pc 12 of ``crc`` is not pc 12 of ``grep``).
    """

    def __init__(self, spec: ProfileSpec = ProfileSpec(),
                 workload: str = ""):
        self.spec = spec
        self.workload = workload
        self.events = 0
        self.sites: Dict[Tuple[str, int], BranchRecord] = {}
        #: per-BranchClass [branches, mispredictions, filtered]
        self.classes: Dict[int, List[int]] = {}
        #: SFPDecision value -> event count
        self.sfp: Dict[int, int] = {}
        #: PGUPath value -> [events, correct]
        self.pgu: Dict[int, List[int]] = {}
        self.avail_all = _Bucketed()
        self.avail_region = _Bucketed()
        #: timeline interval index -> [branches, mispredictions, filtered]
        self.timeline: Dict[int, List[int]] = {}

    # -- ingestion ---------------------------------------------------------

    def add(self, event: PredictionEvent) -> None:
        """Fold one event into every view."""
        self.events += 1
        key = (self.workload, event.pc)
        record = self.sites.get(key)
        if record is None:
            record = self.sites[key] = BranchRecord(
                workload=self.workload,
                pc=event.pc,
                function=event.function,
                region_id=event.region_id,
                region_based=event.region_based,
                branch_class=int(event.branch_class),
            )
        correct = event.predicted == event.taken
        filtered = event.sfp != SFPDecision.NOT_FILTERED
        record.executions += 1
        record.taken += int(event.taken)
        if filtered:
            record.filtered += 1
            if not correct:
                record.filtered_wrong += 1
        elif not correct:
            record.mispredictions += 1

        cls = self.classes.get(int(event.branch_class))
        if cls is None:
            cls = self.classes[int(event.branch_class)] = [0, 0, 0]
        cls[0] += 1
        cls[1] += int(not correct and not filtered)
        cls[2] += int(filtered)

        self.sfp[int(event.sfp)] = self.sfp.get(int(event.sfp), 0) + 1
        path = self.pgu.get(int(event.pgu))
        if path is None:
            path = self.pgu[int(event.pgu)] = [0, 0]
        path[0] += 1
        path[1] += int(correct)

        self.avail_all.observe(event.avail)
        if event.region_based:
            self.avail_region.observe(event.avail)

        slot = event.seq // self.spec.interval
        point = self.timeline.get(slot)
        if point is None:
            point = self.timeline[slot] = [0, 0, 0]
        point[0] += 1
        point[1] += int(not correct and not filtered)
        point[2] += int(filtered)

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "AttributionAggregator") -> None:
        """Fold ``other`` into this aggregator.

        Requires identical specs — merging streams sampled differently
        would silently mix incomparable populations.
        """
        if self.spec != other.spec:
            raise ValueError(
                "cannot merge attribution aggregators with different "
                f"profile specs ({self.spec} vs {other.spec})"
            )
        self.events += other.events
        for key, record in other.sites.items():
            mine = self.sites.get(key)
            if mine is None:
                self.sites[key] = BranchRecord.from_dict(record.to_dict())
            else:
                mine.merge(record)
        for cls, counts in other.classes.items():
            mine = self.classes.setdefault(cls, [0, 0, 0])
            for i, count in enumerate(counts):
                mine[i] += count
        for decision, count in other.sfp.items():
            self.sfp[decision] = self.sfp.get(decision, 0) + count
        for path, counts in other.pgu.items():
            mine = self.pgu.setdefault(path, [0, 0])
            mine[0] += counts[0]
            mine[1] += counts[1]
        self.avail_all.merge(other.avail_all)
        self.avail_region.merge(other.avail_region)
        for slot, counts in other.timeline.items():
            mine = self.timeline.setdefault(slot, [0, 0, 0])
            for i, count in enumerate(counts):
                mine[i] += count

    def annotate(self, sites: "SiteTable") -> None:
        """Back-fill function/region info from a static site table."""
        for record in self.sites.values():
            if not record.function:
                record.function = sites.function(record.pc)
            if record.region_id < 0:
                record.region_id = sites.region(record.pc)

    # -- views -------------------------------------------------------------

    @property
    def branches(self) -> int:
        return self.events

    @property
    def mispredictions(self) -> int:
        return sum(r.mispredictions for r in self.sites.values())

    @property
    def filtered(self) -> int:
        return sum(r.filtered for r in self.sites.values())

    def totals(self) -> dict:
        """Headline counts (reconcile with ``SimResult`` at rate 1)."""
        return {
            "events": self.events,
            "branches": self.events,
            "mispredictions": self.mispredictions,
            "filtered": self.filtered,
            "filtered_wrong": sum(
                r.filtered_wrong for r in self.sites.values()
            ),
            "taken": sum(r.taken for r in self.sites.values()),
            "static_sites": len(self.sites),
        }

    def records(self) -> List[BranchRecord]:
        """Site records in first-seen (dynamic stream) order."""
        return list(self.sites.values())

    def ranked(self) -> List[BranchRecord]:
        """Canonically ordered attribution: worst sites first.

        Total order — (mispredictions desc, workload, pc) — so the
        ranking is identical however the aggregator was assembled.
        """
        return sorted(
            self.sites.values(),
            key=lambda r: (-r.mispredictions, r.workload, r.pc),
        )

    def top_branches(self, k: int) -> List[BranchRecord]:
        """The ``k`` worst static branches by absolute mispredictions."""
        return self.ranked()[:k]

    def coverage(self, k: int) -> float:
        """Fraction of all mispredictions the top ``k`` sites explain."""
        total = self.mispredictions
        if not total:
            return 0.0
        covered = sum(r.mispredictions for r in self.top_branches(k))
        return covered / total

    def h2p_count(self, fraction: float = 0.9) -> int:
        """How many sites cover ``fraction`` of mispredictions."""
        total = self.mispredictions
        if not total:
            return 0
        covered = 0
        for i, record in enumerate(self.ranked(), start=1):
            covered += record.mispredictions
            if covered >= fraction * total:
                return i
        return len(self.sites)

    def region_breakdown(self) -> List[dict]:
        """Counts grouped by (workload, function, region id).

        Region ids are static properties of a site, so grouping the
        per-site records is exact; sites outside any region land in the
        ``region_id == -1`` row of their function.
        """
        groups: Dict[Tuple[str, str, int], List[int]] = {}
        for record in self.sites.values():
            key = (record.workload, record.function, record.region_id)
            group = groups.setdefault(key, [0, 0, 0, 0])
            group[0] += 1
            group[1] += record.executions
            group[2] += record.mispredictions
            group[3] += record.filtered
        return [
            {
                "workload": workload,
                "function": function,
                "region_id": region_id,
                "sites": counts[0],
                "branches": counts[1],
                "mispredictions": counts[2],
                "filtered": counts[3],
            }
            for (workload, function, region_id), counts in sorted(
                groups.items()
            )
        ]

    def sfp_breakdown(self) -> dict:
        """Squash-filter decisions and the resulting squash accuracy."""
        not_filtered = self.sfp.get(int(SFPDecision.NOT_FILTERED), 0)
        correct = self.sfp.get(int(SFPDecision.FILTERED_CORRECT), 0)
        wrong = self.sfp.get(int(SFPDecision.FILTERED_WRONG), 0)
        squashes = correct + wrong
        return {
            "not_filtered": not_filtered,
            "filtered_correct": correct,
            "filtered_wrong": wrong,
            "squash_accuracy": correct / squashes if squashes else 0.0,
            "squash_coverage": (
                squashes / self.events if self.events else 0.0
            ),
        }

    def pgu_breakdown(self) -> dict:
        """Per-path prediction accuracy under predicate global update."""
        breakdown = {}
        for path in PGUPath:
            events, correct = self.pgu.get(int(path), (0, 0))
            breakdown[path.name.lower()] = {
                "events": events,
                "correct": correct,
                "accuracy": correct / events if events else 0.0,
            }
        return breakdown

    def availability(self) -> dict:
        """Predicate-available-at-fetch distance histograms."""
        return {
            "buckets": list(AVAIL_BUCKETS),
            "all": self.avail_all.to_dict(),
            "region": self.avail_region.to_dict(),
        }

    def timeline_points(self) -> List[dict]:
        """Interval timeline rows, in stream order."""
        return [
            {
                "interval": slot,
                "first_seq": slot * self.spec.interval,
                "branches": counts[0],
                "mispredictions": counts[1],
                "filtered": counts[2],
            }
            for slot, counts in sorted(self.timeline.items())
        ]

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-serialisable report (deterministic ordering)."""
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "rate": self.spec.rate,
            "seed": self.spec.seed,
            "interval": self.spec.interval,
            "workload": self.workload,
            "totals": self.totals(),
            "classes": {
                BranchClass(cls).name.lower(): {
                    "branches": counts[0],
                    "mispredictions": counts[1],
                    "filtered": counts[2],
                }
                for cls, counts in sorted(self.classes.items())
            },
            "sfp": self.sfp_breakdown(),
            "pgu": self.pgu_breakdown(),
            "availability": self.availability(),
            "regions": self.region_breakdown(),
            "timeline": self.timeline_points(),
            "sites": [record.to_dict() for record in self.ranked()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttributionAggregator":
        """Rebuild the per-site/mechanism state from :meth:`to_dict`.

        Timeline and availability views are restored too; ``classes``
        keys come back as :class:`BranchClass` values.
        """
        spec = ProfileSpec(
            rate=int(data["rate"]),
            seed=int(data["seed"]),
            interval=int(data["interval"]),
        )
        aggregator = cls(spec, workload=data.get("workload", ""))
        aggregator.events = int(data["totals"]["events"])
        for site in data["sites"]:
            record = BranchRecord.from_dict(site)
            aggregator.sites[(record.workload, record.pc)] = record
        for name, counts in data.get("classes", {}).items():
            aggregator.classes[int(BranchClass[name.upper()])] = [
                counts["branches"],
                counts["mispredictions"],
                counts["filtered"],
            ]
        sfp = data.get("sfp", {})
        for decision, key in (
            (SFPDecision.NOT_FILTERED, "not_filtered"),
            (SFPDecision.FILTERED_CORRECT, "filtered_correct"),
            (SFPDecision.FILTERED_WRONG, "filtered_wrong"),
        ):
            if sfp.get(key):
                aggregator.sfp[int(decision)] = sfp[key]
        for name, counts in data.get("pgu", {}).items():
            if counts["events"]:
                aggregator.pgu[int(PGUPath[name.upper()])] = [
                    counts["events"], counts["correct"],
                ]
        avail = data.get("availability", {})
        if avail:
            aggregator.avail_all.counts = list(avail["all"]["counts"])
            aggregator.avail_all.never = avail["all"]["never"]
            aggregator.avail_region.counts = list(avail["region"]["counts"])
            aggregator.avail_region.never = avail["region"]["never"]
        for point in data.get("timeline", []):
            aggregator.timeline[int(point["interval"])] = [
                point["branches"],
                point["mispredictions"],
                point["filtered"],
            ]
        return aggregator

    def __repr__(self):
        return (
            f"AttributionAggregator(workload={self.workload!r}, "
            f"events={self.events}, sites={len(self.sites)}, "
            f"spec={self.spec.describe()})"
        )


def join_static_facts(
    records: List[BranchRecord],
    predflow,
    distance: Optional[int] = None,
) -> List[dict]:
    """Join ranked H2P records onto their static predicate-flow facts.

    ``predflow`` is a :class:`repro.analysis.predflow.PredflowReport`
    for the *same* compiled executable (duck-typed here to keep the
    profiler importable without the analysis package).  Each returned
    dict is ``record.to_dict()`` plus a ``"static"`` key holding the
    :class:`~repro.analysis.predflow.BranchFacts` payload at the
    record's pc — guard value, availability bounds, SFP verdict —
    or ``None`` for a site the analysis never reached (itself a signal:
    see the contract checker's ``unknown-branch-site``).
    """
    by_pc = predflow.by_pc()
    if distance is None:
        distance = predflow.distance
    joined = []
    for record in records:
        payload = record.to_dict()
        facts = by_pc.get(record.pc)
        payload["static"] = (
            facts.to_dict(distance) if facts is not None else None
        )
        joined.append(payload)
    return joined


def merge_attributions(
    aggregators: List[Optional[AttributionAggregator]],
) -> Optional[AttributionAggregator]:
    """Fold aggregators (canonical order) into one combined report.

    ``None`` entries (unprofiled points) are skipped; returns ``None``
    when nothing was profiled.  Callers pass sweep results in canonical
    point order, which makes the merged site ordering deterministic.
    """
    merged: Optional[AttributionAggregator] = None
    for aggregator in aggregators:
        if aggregator is None:
            continue
        if merged is None:
            merged = AttributionAggregator(
                aggregator.spec, workload=aggregator.workload
            )
        merged.merge(aggregator)
    return merged
