"""Prediction-event tracing and misprediction attribution.

The profiler is the event-level lens over the simulation driver: every
dynamic branch can emit a :class:`PredictionEvent` describing what the
front end knew and decided, a pluggable :class:`EventCollector` samples
the stream deterministically, and an :class:`AttributionAggregator`
turns it into per-branch H2P rankings, per-region/per-mechanism
breakdowns and phase timelines.  Aggregators pickle and merge like
:class:`~repro.telemetry.MetricsRegistry`, so sweeps combine worker
profiles into one report.

Entry points: ``repro profile <workload>`` on the CLI, or::

    from repro.profiler import AggregatingCollector, ProfileSpec
    from repro.sim import simulate

    collector = AggregatingCollector(ProfileSpec(rate=64), workload="crc")
    simulate(trace, predictor, options, collector=collector)
    report = collector.aggregator.to_dict()

See ``docs/observability.md`` for the event schema and sampling
semantics.
"""

from repro.profiler.attribution import (
    AVAIL_BUCKETS,
    REPORT_SCHEMA_VERSION,
    AttributionAggregator,
    BranchRecord,
    avail_bucket_labels,
    join_static_facts,
    merge_attributions,
)
from repro.profiler.collector import (
    AggregatingCollector,
    EventCollector,
    JsonlEventCollector,
    RingBufferCollector,
    SiteTable,
    TeeCollector,
    aggregate_event_stream,
    header_record,
    read_event_stream,
)
from repro.profiler.events import (
    AVAIL_NEVER,
    CONF_PERFECT,
    CONF_UNKNOWN,
    EVENT_FIELDS,
    EVENT_SCHEMA_VERSION,
    PGUPath,
    PredictionEvent,
    SFPDecision,
)
from repro.profiler.spec import DEFAULT_INTERVAL, ProfileSpec

__all__ = [
    "AVAIL_BUCKETS",
    "AVAIL_NEVER",
    "AggregatingCollector",
    "AttributionAggregator",
    "BranchRecord",
    "CONF_PERFECT",
    "CONF_UNKNOWN",
    "DEFAULT_INTERVAL",
    "EVENT_FIELDS",
    "EVENT_SCHEMA_VERSION",
    "EventCollector",
    "JsonlEventCollector",
    "PGUPath",
    "PredictionEvent",
    "ProfileSpec",
    "REPORT_SCHEMA_VERSION",
    "RingBufferCollector",
    "SFPDecision",
    "SiteTable",
    "TeeCollector",
    "aggregate_event_stream",
    "avail_bucket_labels",
    "header_record",
    "join_static_facts",
    "merge_attributions",
    "read_event_stream",
]
