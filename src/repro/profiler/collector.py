"""Event collectors: where the driver's prediction events go.

:func:`repro.sim.driver.simulate` takes an optional collector; when none
is installed the per-branch event machinery is skipped entirely (a
sentinel comparison per branch — the profiler benchmark gate holds the
disabled path under 3% overhead).  Collectors own the deterministic
sampling parameters (via :class:`~repro.profiler.spec.ProfileSpec`) and
whatever storage policy fits the consumer:

* :class:`AggregatingCollector` — streams events straight into an
  :class:`~repro.profiler.attribution.AttributionAggregator`; memory is
  bounded by static footprint, not trace length.  Picklable, so sweep
  workers use it and ship the aggregator back with the point's result.
* :class:`RingBufferCollector` — keeps the last ``capacity`` sampled
  events for inspection; the bound keeps overhead and memory negligible
  on long traces.
* :class:`JsonlEventCollector` — appends each sampled event to a JSONL
  file (``repro profile --events out.jsonl``), prefixed with a header
  record carrying the spec so readers can validate and replay.
* :class:`TeeCollector` — fans one stream out to several collectors
  that share a spec.
"""

from collections import deque
from typing import Dict, Iterable, List, Optional

from repro.profiler.attribution import AttributionAggregator
from repro.profiler.events import (
    EVENT_SCHEMA_VERSION,
    PredictionEvent,
)
from repro.profiler.spec import ProfileSpec


class SiteTable:
    """Static ``pc -> (function, region id)`` map for event annotation.

    Plain dicts, so it pickles cheaply and survives the sweep boundary.
    Unknown pcs resolve to ``("", -1)``.
    """

    def __init__(self, functions: Optional[Dict[int, str]] = None,
                 regions: Optional[Dict[int, int]] = None):
        self.functions = functions or {}
        self.regions = regions or {}

    @classmethod
    def from_executable(cls, executable) -> "SiteTable":
        """Index every static branch site of a linked executable."""
        functions = {}
        regions = {}
        for pc in executable.static_branch_sites():
            functions[pc] = executable.function_at(pc)
            regions[pc] = executable.code[pc].region
        return cls(functions, regions)

    def function(self, pc: int) -> str:
        return self.functions.get(pc, "")

    def region(self, pc: int) -> int:
        return self.regions.get(pc, -1)

    def __len__(self) -> int:
        return len(self.functions)


class EventCollector:
    """Base collector: sampling parameters plus the receive hook.

    The driver reads :attr:`rate` and :attr:`seed` once per simulation
    and calls :meth:`collect` only for sampled events, so subclasses
    never re-check the sampling decision.
    """

    def __init__(self, spec: ProfileSpec = ProfileSpec(),
                 sites: Optional[SiteTable] = None):
        self.spec = spec
        self.rate = spec.rate
        self.seed = spec.seed
        self.sites = sites

    def _annotate(self, event: PredictionEvent) -> None:
        """Fill static site info in place, when a table is available."""
        sites = self.sites
        if sites is not None:
            event.function = sites.function(event.pc)
            event.region_id = sites.region(event.pc)

    def collect(self, event: PredictionEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class AggregatingCollector(EventCollector):
    """Folds events into an :class:`AttributionAggregator` as they land."""

    def __init__(self, spec: ProfileSpec = ProfileSpec(),
                 sites: Optional[SiteTable] = None, workload: str = ""):
        super().__init__(spec, sites)
        self.aggregator = AttributionAggregator(spec, workload=workload)

    def collect(self, event: PredictionEvent) -> None:
        self._annotate(event)
        self.aggregator.add(event)


class RingBufferCollector(EventCollector):
    """Retains the most recent ``capacity`` sampled events."""

    def __init__(self, spec: ProfileSpec = ProfileSpec(),
                 sites: Optional[SiteTable] = None,
                 capacity: int = 65536):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(spec, sites)
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.collected = 0  #: sampled events seen (including evicted)

    def collect(self, event: PredictionEvent) -> None:
        self._annotate(event)
        self._buffer.append(event)
        self.collected += 1

    @property
    def events(self) -> List[PredictionEvent]:
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.collected = 0


class JsonlEventCollector(EventCollector):
    """Streams sampled events to a JSONL file via a buffered sink.

    The first record is a ``profile-header`` carrying the schema version
    and spec, so a reader can validate compatibility and rebuild an
    aggregator (:func:`read_event_stream`) without guessing parameters.
    Always close (or use as a context manager) — the underlying sink
    buffers for throughput and flushes on close, including the
    exception exit path.
    """

    def __init__(self, path, spec: ProfileSpec = ProfileSpec(),
                 sites: Optional[SiteTable] = None, workload: str = ""):
        # Imported here: sinks live in repro.telemetry, which is
        # import-cycle-sensitive during package init.
        from repro.telemetry.sinks import JsonlSink

        super().__init__(spec, sites)
        self.path = path
        self.workload = workload
        self._sink = JsonlSink(path)
        self._sink.emit(header_record(spec, workload=workload))

    def collect(self, event: PredictionEvent) -> None:
        self._annotate(event)
        self._sink.emit(event.to_dict())

    def close(self) -> None:
        self._sink.close()


class TeeCollector(EventCollector):
    """Duplicates one event stream to several collectors.

    All children must share the same sampling spec — a tee with mixed
    rates would silently under-sample some outputs.
    """

    def __init__(self, collectors: Iterable[EventCollector]):
        self.collectors = list(collectors)
        if not self.collectors:
            raise ValueError("TeeCollector needs at least one collector")
        spec = self.collectors[0].spec
        for collector in self.collectors[1:]:
            if collector.spec != spec:
                raise ValueError(
                    "TeeCollector children disagree on profile spec: "
                    f"{spec} vs {collector.spec}"
                )
        super().__init__(spec, sites=None)

    def collect(self, event: PredictionEvent) -> None:
        for collector in self.collectors:
            collector.collect(event)

    def close(self) -> None:
        for collector in self.collectors:
            collector.close()

    @property
    def aggregator(self):
        """The first child aggregator, if any (duck-typing hook used by
        :func:`repro.sim.driver.simulate` to attach attribution)."""
        for collector in self.collectors:
            aggregator = getattr(collector, "aggregator", None)
            if aggregator is not None:
                return aggregator
        return None


# -- JSONL event-stream helpers -----------------------------------------------


def header_record(spec: ProfileSpec, workload: str = "") -> dict:
    """The ``profile-header`` JSONL record for an event stream."""
    from repro import repro_version

    return {
        "event": "profile-header",
        "schema": EVENT_SCHEMA_VERSION,
        "version": repro_version(),
        "rate": spec.rate,
        "seed": spec.seed,
        "interval": spec.interval,
        "workload": workload,
    }


def read_event_stream(path):
    """Parse a profiler events JSONL file.

    Returns ``(spec, workload, events)``.  Raises ``ValueError`` for a
    missing/incompatible header or malformed records; non-prediction
    records after the header (e.g. interleaved telemetry) are skipped.
    """
    from repro.telemetry.sinks import read_events

    records = read_events(path)
    if not records or records[0].get("event") != "profile-header":
        raise ValueError(
            f"{path}: not a profiler event stream (missing "
            "profile-header record)"
        )
    header = records[0]
    if header.get("schema") != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: event schema {header.get('schema')!r} not supported "
            f"(expected {EVENT_SCHEMA_VERSION})"
        )
    spec = ProfileSpec(
        rate=int(header["rate"]),
        seed=int(header["seed"]),
        interval=int(header["interval"]),
    )
    events = [
        PredictionEvent.from_dict(record)
        for record in records[1:]
        if record.get("event") == "prediction"
    ]
    return spec, header.get("workload", ""), events


def aggregate_event_stream(path) -> AttributionAggregator:
    """Replay a JSONL event stream into a fresh aggregator."""
    spec, workload, events = read_event_stream(path)
    aggregator = AttributionAggregator(spec, workload=workload)
    for event in events:
        aggregator.add(event)
    return aggregator
