"""Profiling configuration shared by collectors and aggregators.

A :class:`ProfileSpec` pins down the two things every consumer of an
event stream must agree on for results to be comparable and mergeable:
the deterministic sampling decision and the timeline interval width.

Sampling is 1-in-``rate`` by dynamic branch index: event ``seq`` is kept
iff ``(seq + seed) % rate == 0``.  The decision depends only on the
trace position, never on wall clock or process layout, so the same
(trace, rate, seed) always yields the identical sampled stream — across
reruns *and* across sweep worker counts.
"""

from dataclasses import dataclass

#: Default timeline interval, in dynamic branch events.
DEFAULT_INTERVAL = 4096


@dataclass(frozen=True)
class ProfileSpec:
    """Sampling and bucketing parameters for one profiling run.

    Attributes:
        rate: keep one event in ``rate`` (1 = every branch).  Attribution
            totals reconcile exactly with ``SimResult`` only at rate 1.
        seed: phase offset of the deterministic sampler; distinct seeds
            select distinct (but individually reproducible) subsets.
        interval: width of one timeline bucket, in branch events.
    """

    rate: int = 1
    seed: int = 0
    interval: int = DEFAULT_INTERVAL

    def __post_init__(self):
        if self.rate < 1:
            raise ValueError(f"sampling rate must be >= 1, got {self.rate}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")
        if self.interval < 1:
            raise ValueError(
                f"interval must be >= 1, got {self.interval}"
            )

    def wants(self, seq: int) -> bool:
        """Deterministic sampling decision for branch event ``seq``."""
        return (seq + self.seed) % self.rate == 0

    def describe(self) -> str:
        return f"profile(1/{self.rate},seed={self.seed})"
