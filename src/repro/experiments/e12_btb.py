"""E12 — branch target buffer interplay (extension beyond the paper).

Direction prediction is only useful if the target arrives in time.
This experiment sweeps BTB capacity and asks two questions the paper's
setting raises naturally:

* does if-converted code, having fewer (but more distinct) branches,
  put more or less pressure on the BTB than the baseline compile?
* do the predicate techniques still pay off once misfetches are
  charged in the cycle model?
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_workloads,
)
from repro.pipeline import BTBConfig, CostModel
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate

SPEC = ExperimentSpec(
    id="E12",
    title="Branch target buffer interplay (extension)",
    paper_artifact="Extension: target pressure under if-conversion",
    description="misfetch rates and cycle impact across BTB sizes",
)

DEFAULT_GEOMETRIES = ((64, 1), (256, 2), (1024, 2))
FAST_GEOMETRIES = ((64, 1), (256, 2))


def run(scale: str = "small", workloads=None, fast: bool = False,
        entries: int = 1024, geometries=None) -> ExperimentResult:
    geometries = geometries or (
        FAST_GEOMETRIES if fast else DEFAULT_GEOMETRIES
    )
    model = CostModel()
    both = {"sfp": SFPConfig(), "pgu": PGUConfig()}
    rows = []
    for sets, ways in geometries:
        btb = BTBConfig(sets=sets, ways=ways)
        totals = {
            "base_misfetch": [0, 0],
            "hyper_misfetch": [0, 0],
            "hyper_both_misfetch": [0, 0],
        }
        base_cycles = hyper_cycles = 0.0
        for workload in suite_workloads(workloads):
            base_trace = workload.trace(scale=scale, hyperblocks=False)
            hyper_trace = workload.trace(scale=scale, hyperblocks=True)
            base = simulate(
                base_trace,
                make_predictor("gshare", entries=entries),
                SimOptions(btb=btb),
            )
            hyper = simulate(
                hyper_trace,
                make_predictor("gshare", entries=entries),
                SimOptions(btb=btb),
            )
            treated = simulate(
                hyper_trace,
                make_predictor("gshare", entries=entries),
                SimOptions(btb=btb, **both),
            )
            totals["base_misfetch"][0] += base.misfetches
            totals["base_misfetch"][1] += base.branches
            totals["hyper_misfetch"][0] += hyper.misfetches
            totals["hyper_misfetch"][1] += hyper.branches
            totals["hyper_both_misfetch"][0] += treated.misfetches
            totals["hyper_both_misfetch"][1] += treated.branches
            base_cycles += model.cycles(
                base.instructions, base.mispredictions, base.misfetches
            )
            hyper_cycles += model.cycles(
                treated.instructions, treated.mispredictions,
                treated.misfetches,
            )
        row = {"btb": f"{sets}x{ways}"}
        for key, (misfetches, branches) in totals.items():
            row[key] = misfetches / branches if branches else 0.0
        row["techniques_speedup"] = (
            base_cycles / hyper_cycles if hyper_cycles else 0.0
        )
        rows.append(row)
    return ExperimentResult(
        spec=SPEC,
        columns=["btb", "base_misfetch", "hyper_misfetch",
                 "hyper_both_misfetch", "techniques_speedup"],
        rows=rows,
        notes=(
            "Misfetch = direction right, target missing at fetch. "
            "techniques_speedup: cycles(baseline+gshare+BTB) / "
            "cycles(hyperblocks+both+BTB), misfetches charged "
            f"{model.misfetch_penalty} cycles."
        ),
    )
