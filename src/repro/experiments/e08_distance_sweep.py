"""E8 — sensitivity to the front-end distance D.

Both mechanisms live off predicate lead time: as the pipeline gets
deeper/wider (D grows), SFP coverage decays toward zero and PGU's bits
arrive too late to help the nearest branches.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_option_aggregates,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions

SPEC = ExperimentSpec(
    id="E8",
    title="Sensitivity to predicate-resolve distance",
    paper_artifact="Figure: technique benefit vs pipeline distance",
    description="suite-total misprediction of sfp/pgu/both as D grows",
)

DISTANCES = (0, 2, 4, 6, 8, 12, 16, 24, 32)
FAST_DISTANCES = (0, 4, 16)


VARIANTS = ("base", "sfp", "pgu", "both")


def _variant_options(distance: int):
    return {
        "base": SimOptions(distance=distance),
        "sfp": SimOptions(distance=distance, sfp=SFPConfig()),
        "pgu": SimOptions(distance=distance, pgu=PGUConfig()),
        "both": SimOptions(
            distance=distance, sfp=SFPConfig(), pgu=PGUConfig()
        ),
    }


def run(scale: str = "small", workloads=None, fast: bool = False,
        entries: int = 1024, distances=None,
        workers=None) -> ExperimentResult:
    distances = distances or (FAST_DISTANCES if fast else DISTANCES)
    traces = suite_traces(scale=scale, workloads=workloads)
    labeled = {}
    for distance in distances:
        for label, options in _variant_options(distance).items():
            labeled[f"{distance}/{label}"] = options
    aggregates = suite_option_aggregates(
        traces,
        labeled,
        lambda: make_predictor("gshare", entries=entries),
        workers=workers,
    )
    rows = []
    for distance in distances:
        row = {"distance": distance}
        for label in VARIANTS:
            row[label] = aggregates[f"{distance}/{label}"].rate
        row["squash_coverage"] = aggregates[
            f"{distance}/sfp"
        ].squash_coverage
        rows.append(row)
    return ExperimentResult(
        spec=SPEC,
        columns=["distance", "base", "sfp", "pgu", "both",
                 "squash_coverage"],
        rows=rows,
        notes=(
            "Suite-total misprediction rate. D=0 is perfect predicate "
            "knowledge; benefits decay monotonically with D."
        ),
    )
