"""E8 — sensitivity to the front-end distance D.

Both mechanisms live off predicate lead time: as the pipeline gets
deeper/wider (D grows), SFP coverage decays toward zero and PGU's bits
arrive too late to help the nearest branches.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate

SPEC = ExperimentSpec(
    id="E8",
    title="Sensitivity to predicate-resolve distance",
    paper_artifact="Figure: technique benefit vs pipeline distance",
    description="suite-total misprediction of sfp/pgu/both as D grows",
)

DISTANCES = (0, 2, 4, 6, 8, 12, 16, 24, 32)
FAST_DISTANCES = (0, 4, 16)


def run(scale: str = "small", workloads=None, fast: bool = False,
        entries: int = 1024, distances=None) -> ExperimentResult:
    distances = distances or (FAST_DISTANCES if fast else DISTANCES)
    traces = suite_traces(scale=scale, workloads=workloads)
    rows = []
    for distance in distances:
        counts = {"base": [0, 0], "sfp": [0, 0], "pgu": [0, 0],
                  "both": [0, 0]}
        squashed = 0
        total = 0
        for trace in traces.values():
            options = {
                "base": SimOptions(distance=distance),
                "sfp": SimOptions(distance=distance, sfp=SFPConfig()),
                "pgu": SimOptions(distance=distance, pgu=PGUConfig()),
                "both": SimOptions(
                    distance=distance, sfp=SFPConfig(), pgu=PGUConfig()
                ),
            }
            for label, opts in options.items():
                result = simulate(
                    trace, make_predictor("gshare", entries=entries), opts
                )
                counts[label][0] += result.mispredictions
                counts[label][1] += result.branches
                if label == "sfp":
                    squashed += result.squashed
                    total += result.branches
        row = {"distance": distance}
        for label, (misp, branches) in counts.items():
            row[label] = misp / branches if branches else 0.0
        row["squash_coverage"] = squashed / total if total else 0.0
        rows.append(row)
    return ExperimentResult(
        spec=SPEC,
        columns=["distance", "base", "sfp", "pgu", "both",
                 "squash_coverage"],
        rows=rows,
        notes=(
            "Suite-total misprediction rate. D=0 is perfect predicate "
            "knowledge; benefits decay monotonically with D."
        ),
    )
