"""E1 — benchmark characterisation (the paper's Table 1 role).

Per workload: dynamic instructions and branches for the baseline and
hyperblock compiles, how much of the dynamic branch stream if-conversion
removed, what fraction of the remaining branches are region-based, and
the predicate-define density the PGU mechanism feeds on.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_workloads,
)

SPEC = ExperimentSpec(
    id="E1",
    title="Benchmark characterisation",
    paper_artifact="Table 1: benchmark statistics under if-conversion",
    description=(
        "Dynamic instruction/branch counts per compile, branch removal by "
        "if-conversion, region-based branch fraction, predicate-define "
        "density"
    ),
)

COLUMNS = [
    "workload",
    "base_instrs",
    "hyper_instrs",
    "instr_overhead",
    "base_branches",
    "hyper_branches",
    "branch_reduction",
    "region_frac",
    "pdefs_per_100",
]


def run(scale: str = "small", workloads=None) -> ExperimentResult:
    rows = []
    for workload in suite_workloads(workloads):
        base = workload.trace(scale=scale, hyperblocks=False)
        hyper = workload.trace(scale=scale, hyperblocks=True)
        base_branches = max(base.num_branches, 1)
        hyper_summary = hyper.summary()
        rows.append(
            {
                "workload": workload.name,
                "base_instrs": base.meta.instructions,
                "hyper_instrs": hyper.meta.instructions,
                "instr_overhead": (
                    hyper.meta.instructions / max(base.meta.instructions, 1)
                ),
                "base_branches": base.num_branches,
                "hyper_branches": hyper.num_branches,
                "branch_reduction": 1.0
                - hyper.num_branches / base_branches,
                "region_frac": hyper_summary["region_fraction"],
                "pdefs_per_100": hyper_summary["pdefs_per_100_instrs"],
            }
        )
    return ExperimentResult(
        spec=SPEC,
        columns=COLUMNS,
        rows=rows,
        notes=(
            "instr_overhead: hyperblock/baseline dynamic instructions "
            "(both-path execution cost). branch_reduction: fraction of "
            "dynamic branches eliminated by if-conversion."
        ),
    )
