"""E6 — the paper's headline: base vs +SFP vs +PGU vs both."""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    arithmetic_mean,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate

SPEC = ExperimentSpec(
    id="E6",
    title="Combined techniques",
    paper_artifact="Figure: per-benchmark misprediction, all four configs",
    description="gshare alone, +SFP, +PGU, +both",
)

CONFIGS = {
    "base": SimOptions(),
    "sfp": SimOptions(sfp=SFPConfig()),
    "pgu": SimOptions(pgu=PGUConfig()),
    "both": SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
}


def run(scale: str = "small", workloads=None,
        entries: int = 1024) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    rows = []
    for name, trace in traces.items():
        row = {"workload": name}
        for label, options in CONFIGS.items():
            result = simulate(
                trace, make_predictor("gshare", entries=entries), options
            )
            row[label] = result.misprediction_rate
        row["improvement"] = (
            (row["base"] - row["both"]) / row["base"] if row["base"] else 0.0
        )
        rows.append(row)
    mean = {"workload": "MEAN"}
    for label in CONFIGS:
        mean[label] = arithmetic_mean([r[label] for r in rows])
    mean["improvement"] = (
        (mean["base"] - mean["both"]) / mean["base"] if mean["base"] else 0.0
    )
    rows.append(mean)
    return ExperimentResult(
        spec=SPEC,
        columns=["workload", "base", "sfp", "pgu", "both", "improvement"],
        rows=rows,
        notes="improvement: relative misprediction reduction of both vs base.",
    )
