"""E6 — the paper's headline: base vs +SFP vs +PGU vs both."""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    arithmetic_mean,
    run_sweep,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions

SPEC = ExperimentSpec(
    id="E6",
    title="Combined techniques",
    paper_artifact="Figure: per-benchmark misprediction, all four configs",
    description="gshare alone, +SFP, +PGU, +both",
)

CONFIGS = {
    "base": SimOptions(),
    "sfp": SimOptions(sfp=SFPConfig()),
    "pgu": SimOptions(pgu=PGUConfig()),
    "both": SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
}


def run(scale: str = "small", workloads=None, entries: int = 1024,
        workers=None) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    labels = list(CONFIGS)
    factories = {
        "gshare": lambda: make_predictor("gshare", entries=entries)
    }
    results = run_sweep(
        traces, factories, list(CONFIGS.values()), workers=workers
    )
    rows = []
    # One factory: results nest (trace, option), period len(CONFIGS).
    for i, name in enumerate(traces):
        row = {"workload": name}
        for k, label in enumerate(labels):
            row[label] = results[i * len(labels) + k].misprediction_rate
        row["improvement"] = (
            (row["base"] - row["both"]) / row["base"] if row["base"] else 0.0
        )
        rows.append(row)
    mean = {"workload": "MEAN"}
    for label in labels:
        mean[label] = arithmetic_mean([r[label] for r in rows])
    mean["improvement"] = (
        (mean["base"] - mean["both"]) / mean["base"] if mean["base"] else 0.0
    )
    rows.append(mean)
    return ExperimentResult(
        spec=SPEC,
        columns=["workload", "base", "sfp", "pgu", "both", "improvement"],
        rows=rows,
        notes="improvement: relative misprediction reduction of both vs base.",
    )
