"""E10 — design-choice ablations (DESIGN.md's ablation index).

Four sub-studies, one table:

* ``sfp/*`` — what a squashed branch does to the PHT and the GHR;
* ``pgu/*`` — insertion delay (0 = idealized, D = realistic, 2D = late)
  and the oracle guards-only filter;
* ``hist/*`` — global history length with and without PGU (predicate
  bits consume history capacity — is the information worth the dilution?);
* ``sched/*`` — recompile with compare scheduling / region merging /
  unrolling disabled: with no predicate lead time the techniques starve.
"""

from repro.compiler.config import HYPERBLOCK
from dataclasses import replace

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_option_aggregates,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions

SPEC = ExperimentSpec(
    id="E10",
    title="Design-choice ablations",
    paper_artifact="Ablations of the mechanisms' design space",
    description=(
        "SFP update policies, PGU insertion delay/filter, history "
        "length, compiler scheduling"
    ),
)

#: Workloads where the techniques are most active: a representative,
#: cheap subset for the recompile-based scheduling ablation.
SCHED_WORKLOADS = ("compress", "grep", "nbody")


def run(scale: str = "small", workloads=None, fast: bool = False,
        entries: int = 1024, workers=None) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    factory = lambda: make_predictor("gshare", entries=entries)  # noqa: E731

    labeled = {
        "none": SimOptions(),
        # SFP policy space.
        "sfp/filter+shift": SimOptions(sfp=SFPConfig()),
        "sfp/train-pht": SimOptions(sfp=SFPConfig(update_pht=True)),
        "sfp/skip-history": SimOptions(sfp=SFPConfig(update_history=False)),
        # Extension: squash both directions once the guard is resolved.
        "sfp/both-dirs": SimOptions(sfp=SFPConfig(squash_known_true=True)),
        # Trainer latency: tables update at resolve, not at predict.
        "train/delayed": SimOptions(delayed_update=True),
        "train/delayed+both": SimOptions(
            delayed_update=True, sfp=SFPConfig(), pgu=PGUConfig()
        ),
        # PGU insertion policy.
        "pgu/delay=D": SimOptions(pgu=PGUConfig()),
        "pgu/delay=0": SimOptions(pgu=PGUConfig(delay=0)),
        "pgu/delay=2D": SimOptions(pgu=PGUConfig(delay=8)),
        "pgu/guards-only": SimOptions(pgu=PGUConfig(which="guards_only")),
    }
    # History length with/without predicate bits.
    for bits in (8, 16, 32):
        labeled[f"hist{bits}/plain"] = SimOptions(history_bits=bits)
        labeled[f"hist{bits}/pgu"] = SimOptions(
            history_bits=bits, pgu=PGUConfig()
        )
    aggregates = suite_option_aggregates(
        traces, labeled, factory, workers=workers
    )
    rows = [
        {"config": config, "misprediction": aggregates[config].rate}
        for config in labeled
    ]
    if not fast:
        # Compiler scheduling ablation: recompile a subset without the
        # passes that create predicate lead time.
        subset = [w for w in SCHED_WORKLOADS
                  if workloads is None or w in workloads]
        no_sched = replace(
            HYPERBLOCK,
            schedule_compares=False,
            merge_adjacent_regions=False,
            unroll=1,
        )
        sched_traces = suite_traces(scale=scale, workloads=subset)
        flat_traces = suite_traces(
            scale=scale, workloads=subset, config=no_sched
        )
        both = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())
        sched_on = suite_option_aggregates(
            sched_traces, {"both": both}, factory, workers=workers
        )
        sched_off = suite_option_aggregates(
            flat_traces,
            {"both": both, "none": SimOptions()},
            factory,
            workers=workers,
        )
        rows.append(
            {"config": "sched/on+both",
             "misprediction": sched_on["both"].rate}
        )
        rows.append(
            {"config": "sched/off+both",
             "misprediction": sched_off["both"].rate}
        )
        rows.append(
            {"config": "sched/off+none",
             "misprediction": sched_off["none"].rate}
        )
    return ExperimentResult(
        spec=SPEC,
        columns=["config", "misprediction"],
        rows=rows,
        notes=(
            "Suite-total misprediction rate, gshare-"
            f"{entries}. sched/* rows cover only "
            f"{', '.join(SCHED_WORKLOADS)} (recompile required)."
        ),
    )
