"""E10 — design-choice ablations (DESIGN.md's ablation index).

Four sub-studies, one table:

* ``sfp/*`` — what a squashed branch does to the PHT and the GHR;
* ``pgu/*`` — insertion delay (0 = idealized, D = realistic, 2D = late)
  and the oracle guards-only filter;
* ``hist/*`` — global history length with and without PGU (predicate
  bits consume history capacity — is the information worth the dilution?);
* ``sched/*`` — recompile with compare scheduling / region merging /
  unrolling disabled: with no predicate lead time the techniques starve.
"""

from repro.compiler.config import HYPERBLOCK
from dataclasses import replace

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_traces,
    suite_workloads,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate

SPEC = ExperimentSpec(
    id="E10",
    title="Design-choice ablations",
    paper_artifact="Ablations of the mechanisms' design space",
    description=(
        "SFP update policies, PGU insertion delay/filter, history "
        "length, compiler scheduling"
    ),
)

#: Workloads where the techniques are most active: a representative,
#: cheap subset for the recompile-based scheduling ablation.
SCHED_WORKLOADS = ("compress", "grep", "nbody")


def _suite_rate(traces, entries, options):
    mispredictions = branches = 0
    for trace in traces.values():
        result = simulate(
            trace, make_predictor("gshare", entries=entries), options
        )
        mispredictions += result.mispredictions
        branches += result.branches
    return mispredictions / branches if branches else 0.0


def run(scale: str = "small", workloads=None, fast: bool = False,
        entries: int = 1024) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    rows = []

    def add(config, options):
        rows.append(
            {"config": config,
             "misprediction": _suite_rate(traces, entries, options)}
        )

    add("none", SimOptions())
    # SFP policy space.
    add("sfp/filter+shift", SimOptions(sfp=SFPConfig()))
    add("sfp/train-pht", SimOptions(sfp=SFPConfig(update_pht=True)))
    add(
        "sfp/skip-history",
        SimOptions(sfp=SFPConfig(update_history=False)),
    )
    # Extension: squash both directions once the guard is resolved.
    add(
        "sfp/both-dirs",
        SimOptions(sfp=SFPConfig(squash_known_true=True)),
    )
    # Trainer latency: tables update at resolve, not at predict.
    add("train/delayed", SimOptions(delayed_update=True))
    add(
        "train/delayed+both",
        SimOptions(delayed_update=True, sfp=SFPConfig(), pgu=PGUConfig()),
    )
    # PGU insertion policy.
    add("pgu/delay=D", SimOptions(pgu=PGUConfig()))
    add("pgu/delay=0", SimOptions(pgu=PGUConfig(delay=0)))
    add("pgu/delay=2D", SimOptions(pgu=PGUConfig(delay=8)))
    add("pgu/guards-only", SimOptions(pgu=PGUConfig(which="guards_only")))
    # History length with/without predicate bits.
    for bits in (8, 16, 32):
        add(f"hist{bits}/plain", SimOptions(history_bits=bits))
        add(
            f"hist{bits}/pgu",
            SimOptions(history_bits=bits, pgu=PGUConfig()),
        )
    if not fast:
        # Compiler scheduling ablation: recompile a subset without the
        # passes that create predicate lead time.
        subset = [w for w in SCHED_WORKLOADS
                  if workloads is None or w in workloads]
        no_sched = replace(
            HYPERBLOCK,
            schedule_compares=False,
            merge_adjacent_regions=False,
            unroll=1,
        )
        sched_traces = suite_traces(scale=scale, workloads=subset)
        flat_traces = suite_traces(
            scale=scale, workloads=subset, config=no_sched
        )
        both = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())
        rows.append(
            {"config": "sched/on+both",
             "misprediction": _suite_rate(sched_traces, entries, both)}
        )
        rows.append(
            {"config": "sched/off+both",
             "misprediction": _suite_rate(flat_traces, entries, both)}
        )
        rows.append(
            {"config": "sched/off+none",
             "misprediction": _suite_rate(flat_traces, entries,
                                          SimOptions())}
        )
    return ExperimentResult(
        spec=SPEC,
        columns=["config", "misprediction"],
        rows=rows,
        notes=(
            "Suite-total misprediction rate, gshare-"
            f"{entries}. sched/* rows cover only "
            f"{', '.join(SCHED_WORKLOADS)} (recompile required)."
        ),
    )
