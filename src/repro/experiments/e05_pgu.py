"""E5 — predicate global update benefit (paper's second result figure).

gshare with and without predicate-define bits in the global history,
across table sizes: the mechanism should help at every size because it
adds *information*, not capacity.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    arithmetic_mean,
    run_sweep,
    suite_traces,
)
from repro.predictors import PGUConfig, make_predictor
from repro.sim import SimOptions

SPEC = ExperimentSpec(
    id="E5",
    title="Predicate global update",
    paper_artifact="Figure: misprediction with/without predicate history",
    description="gshare vs gshare+PGU per workload and across sizes",
)

DEFAULT_SIZES = (1024, 4096)
FAST_SIZES = (1024,)


def run(scale: str = "small", workloads=None, fast: bool = False,
        sizes=None, workers=None) -> ExperimentResult:
    sizes = sizes or (FAST_SIZES if fast else DEFAULT_SIZES)
    traces = suite_traces(scale=scale, workloads=workloads)
    factories = {
        f"gshare_{size}": (
            lambda size=size: make_predictor("gshare", entries=size)
        )
        for size in sizes
    }
    grid = [SimOptions(), SimOptions(pgu=PGUConfig())]
    results = run_sweep(traces, factories, grid, workers=workers)
    rows = []
    # Results nest (trace, size, option): base and pgu alternate.
    for i, name in enumerate(traces):
        row = {"workload": name}
        for j, size in enumerate(sizes):
            base_index = (i * len(sizes) + j) * len(grid)
            row[f"base_{size}"] = results[base_index].misprediction_rate
            row[f"pgu_{size}"] = results[base_index + 1].misprediction_rate
        rows.append(row)
    mean_row = {"workload": "MEAN"}
    for size in sizes:
        for kind in ("base", "pgu"):
            mean_row[f"{kind}_{size}"] = arithmetic_mean(
                [row[f"{kind}_{size}"] for row in rows]
            )
    rows.append(mean_row)
    columns = ["workload"]
    for size in sizes:
        columns += [f"base_{size}", f"pgu_{size}"]
    return ExperimentResult(
        spec=SPEC,
        columns=columns,
        rows=rows,
        notes=(
            "PGU shifts each visible predicate define into the GHR; "
            "correlated region branches gain context."
        ),
    )
