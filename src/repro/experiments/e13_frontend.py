"""E13 — front-end-limited IPC under the discrete fetch model
(extension beyond the paper).

The analytic model (E9) prices mispredictions only; this replays the
fetch stream, also charging fragmentation at taken branches and redirect
bubbles.  That surfaces the *other* half of the EPIC argument:
if-conversion removes taken branches from the fetch stream, and the
predicate techniques then recover prediction on what remains.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    geometric_mean,
    suite_workloads,
)
from repro.pipeline import BTBConfig
from repro.pipeline.fetchsim import FetchModel, simulate_frontend
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate

SPEC = ExperimentSpec(
    id="E13",
    title="Front-end fetch simulation (extension)",
    paper_artifact="Extension: fetch-limited IPC with fragmentation",
    description=(
        "Discrete fetch replay: baseline vs hyperblocks vs "
        "hyperblocks+techniques, with a real BTB"
    ),
)


def _frontend(trace, entries, options, model):
    result = simulate(
        trace, make_predictor("gshare", entries=entries), options
    )
    return simulate_frontend(trace, result.flags, model)


def run(scale: str = "small", workloads=None, entries: int = 1024,
        fetch_width: int = 6) -> ExperimentResult:
    model = FetchModel(width=fetch_width)
    btb = BTBConfig(sets=256, ways=2)
    plain = SimOptions(record_flags=True, btb=btb)
    both = SimOptions(
        record_flags=True, btb=btb, sfp=SFPConfig(), pgu=PGUConfig()
    )
    rows = []
    for workload in suite_workloads(workloads):
        base_trace = workload.trace(scale=scale, hyperblocks=False)
        hyper_trace = workload.trace(scale=scale, hyperblocks=True)
        base = _frontend(base_trace, entries, plain, model)
        hyper = _frontend(hyper_trace, entries, plain, model)
        treated = _frontend(hyper_trace, entries, both, model)
        rows.append(
            {
                "workload": workload.name,
                "base_ipc": base.ipc,
                "hyper_ipc": hyper.ipc,
                "both_ipc": treated.ipc,
                "hyper_speedup": base.cycles / hyper.cycles,
                "both_speedup": base.cycles / treated.cycles,
            }
        )
    rows.append(
        {
            "workload": "GEOMEAN",
            "base_ipc": geometric_mean([r["base_ipc"] for r in rows]),
            "hyper_ipc": geometric_mean([r["hyper_ipc"] for r in rows]),
            "both_ipc": geometric_mean([r["both_ipc"] for r in rows]),
            "hyper_speedup": geometric_mean(
                [r["hyper_speedup"] for r in rows]
            ),
            "both_speedup": geometric_mean(
                [r["both_speedup"] for r in rows]
            ),
        }
    )
    return ExperimentResult(
        spec=SPEC,
        columns=["workload", "base_ipc", "hyper_ipc", "both_ipc",
                 "hyper_speedup", "both_speedup"],
        rows=rows,
        notes=(
            f"FetchModel(width={fetch_width}, mispredict=10, misfetch=2, "
            "taken-bubble=1), BTB 256x2. Speedups: cycles(baseline) / "
            "cycles(config), same source program."
        ),
    )
