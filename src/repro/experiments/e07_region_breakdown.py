"""E7 — region-based branch breakdown.

The paper's target population: how do region-based branches mispredict
compared with ordinary and loop branches, and how much do the techniques
close the gap?
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate
from repro.trace.container import BranchClass

SPEC = ExperimentSpec(
    id="E7",
    title="Region-based branch breakdown",
    paper_artifact="Figure: misprediction by branch class",
    description=(
        "Per workload: region-based vs normal vs loop branch "
        "misprediction, base and with both techniques"
    ),
)


def run(scale: str = "small", workloads=None,
        entries: int = 1024) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    both = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())
    rows = []
    for name, trace in traces.items():
        base = simulate(
            trace, make_predictor("gshare", entries=entries), SimOptions()
        )
        treated = simulate(
            trace, make_predictor("gshare", entries=entries), both
        )
        region = base.class_stats(BranchClass.REGION)
        rows.append(
            {
                "workload": name,
                "region_share": (
                    region.branches / base.branches if base.branches else 0.0
                ),
                "region_base": region.misprediction_rate,
                "region_both": treated.class_stats(
                    BranchClass.REGION
                ).misprediction_rate,
                "normal_base": base.class_stats(
                    BranchClass.NORMAL
                ).misprediction_rate,
                "normal_both": treated.class_stats(
                    BranchClass.NORMAL
                ).misprediction_rate,
                "loop_base": base.class_stats(
                    BranchClass.LOOP
                ).misprediction_rate,
            }
        )
    return ExperimentResult(
        spec=SPEC,
        columns=[
            "workload",
            "region_share",
            "region_base",
            "region_both",
            "normal_base",
            "normal_both",
            "loop_base",
        ],
        rows=rows,
        notes=(
            "Region-based branches mispredict worse than average at base "
            "and improve most under the predicate techniques."
        ),
    )
