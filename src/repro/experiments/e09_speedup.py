"""E9 — speedup under the analytic cycle model.

Three machine points per workload, all running the same source:

* baseline code + gshare (the non-predicated machine),
* hyperblock code + gshare (if-conversion alone: more instructions,
  fewer mispredicted branches),
* hyperblock code + gshare + SFP + PGU (the paper's proposal).
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    geometric_mean,
    suite_workloads,
)
from repro.pipeline import CostModel
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate

SPEC = ExperimentSpec(
    id="E9",
    title="Speedup (analytic cycle model)",
    paper_artifact="Table/Figure: speedup of the techniques",
    description=(
        "Cycle-model speedup of hyperblocks and hyperblocks+techniques "
        "over the baseline compile with plain gshare"
    ),
)


def run(scale: str = "small", workloads=None, entries: int = 1024,
        fetch_width: int = 6, penalty: int = 10) -> ExperimentResult:
    model = CostModel(fetch_width=fetch_width,
                      misprediction_penalty=penalty)
    both = SimOptions(sfp=SFPConfig(), pgu=PGUConfig())
    rows = []
    for workload in suite_workloads(workloads):
        base_trace = workload.trace(scale=scale, hyperblocks=False)
        hyper_trace = workload.trace(scale=scale, hyperblocks=True)
        base = simulate(
            base_trace, make_predictor("gshare", entries=entries),
            SimOptions(),
        )
        hyper = simulate(
            hyper_trace, make_predictor("gshare", entries=entries),
            SimOptions(),
        )
        treated = simulate(
            hyper_trace, make_predictor("gshare", entries=entries), both
        )
        base_cycles = model.cycles(base.instructions, base.mispredictions)
        rows.append(
            {
                "workload": workload.name,
                "base_ipc": model.ipc(base.instructions,
                                      base.mispredictions),
                "hyper_speedup": base_cycles
                / model.cycles(hyper.instructions, hyper.mispredictions),
                "techniques_speedup": base_cycles
                / model.cycles(treated.instructions,
                               treated.mispredictions),
            }
        )
    rows.append(
        {
            "workload": "GEOMEAN",
            "base_ipc": geometric_mean([r["base_ipc"] for r in rows]),
            "hyper_speedup": geometric_mean(
                [r["hyper_speedup"] for r in rows]
            ),
            "techniques_speedup": geometric_mean(
                [r["techniques_speedup"] for r in rows]
            ),
        }
    )
    return ExperimentResult(
        spec=SPEC,
        columns=["workload", "base_ipc", "hyper_speedup",
                 "techniques_speedup"],
        rows=rows,
        notes=(
            f"CostModel(fetch_width={fetch_width}, penalty={penalty}). "
            "Speedups are cycles(baseline+gshare)/cycles(config): "
            "if-conversion trades instructions for mispredictions; the "
            "predicate techniques claw back prediction on what remains."
        ),
    )
