"""E2 — baseline misprediction vs predictor size (paper's baseline figure).

gshare over a range of pattern-history-table sizes, on hyperblock code:
the starting point both paper mechanisms improve on.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    arithmetic_mean,
    run_sweep,
    suite_traces,
)
from repro.predictors import make_predictor
from repro.sim import SimOptions

SPEC = ExperimentSpec(
    id="E2",
    title="Baseline gshare misprediction vs table size",
    paper_artifact="Figure: misprediction rate across predictor budgets",
    description="gshare with 256..16384 entries on hyperblock traces",
)

DEFAULT_SIZES = (256, 1024, 4096, 16384)
FAST_SIZES = (256, 1024)


def run(scale: str = "small", workloads=None, fast: bool = False,
        sizes=None, workers=None) -> ExperimentResult:
    sizes = sizes or (FAST_SIZES if fast else DEFAULT_SIZES)
    traces = suite_traces(scale=scale, workloads=workloads)
    factories = {
        f"gshare_{size}": (
            lambda size=size: make_predictor("gshare", entries=size)
        )
        for size in sizes
    }
    results = run_sweep(traces, factories, [SimOptions()], workers=workers)
    rows = []
    for i, name in enumerate(traces):
        row = {"workload": name}
        for j, size in enumerate(sizes):
            result = results[i * len(sizes) + j]
            row[f"gshare_{size}"] = result.misprediction_rate
        rows.append(row)
    mean_row = {"workload": "MEAN"}
    for size in sizes:
        mean_row[f"gshare_{size}"] = arithmetic_mean(
            [row[f"gshare_{size}"] for row in rows]
        )
    rows.append(mean_row)
    return ExperimentResult(
        spec=SPEC,
        columns=["workload"] + [f"gshare_{s}" for s in sizes],
        rows=rows,
        notes="Misprediction rate; larger tables reduce aliasing.",
    )
