"""E11 — predictor-family comparison.

Do the predicate techniques help beyond gshare?  Every family gets the
same front end; history consumers (gshare/gselect/gag/tournament/
perceptron) can exploit PGU, history-free ones (bimodal/local) only
benefit from SFP's certain squashes.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    run_sweep,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions

SPEC = ExperimentSpec(
    id="E11",
    title="Predictor families with and without predicate techniques",
    paper_artifact="Figure: techniques across predictor organisations",
    description="bimodal/gshare/gselect/gag/local/tournament/perceptron",
)

FAMILIES = {
    "bimodal": lambda entries: make_predictor("bimodal", entries=entries),
    "gshare": lambda entries: make_predictor("gshare", entries=entries),
    "gselect": lambda entries: make_predictor("gselect", entries=entries),
    "gag": lambda entries: make_predictor("gag", entries=entries),
    "local": lambda entries: make_predictor("local", entries=entries),
    "tournament": lambda entries: make_predictor(
        "tournament", entries=entries
    ),
    "perceptron": lambda entries: make_predictor(
        "perceptron", entries=max(64, entries // 16)
    ),
    "tage": lambda entries: make_predictor(
        "tage", base_entries=entries, table_entries=max(64, entries // 4)
    ),
}

FAST_FAMILIES = ("bimodal", "gshare", "local")


def run(scale: str = "small", workloads=None, fast: bool = False,
        entries: int = 1024, workers=None) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    names = FAST_FAMILIES if fast else tuple(FAMILIES)
    factories = {
        family: (lambda family=family: FAMILIES[family](entries))
        for family in names
    }
    grid = [SimOptions(), SimOptions(sfp=SFPConfig(), pgu=PGUConfig())]
    results = run_sweep(traces, factories, grid, workers=workers)
    rows = []
    # Results nest (trace, family, option); fold the trace axis into
    # suite totals per family.
    for j, family in enumerate(names):
        plain = [0, 0]
        treated = [0, 0]
        for i in range(len(traces)):
            base_index = (i * len(names) + j) * len(grid)
            p = results[base_index]
            t = results[base_index + 1]
            plain[0] += p.mispredictions
            plain[1] += p.branches
            treated[0] += t.mispredictions
            treated[1] += t.branches
        base_rate = plain[0] / plain[1] if plain[1] else 0.0
        both_rate = treated[0] / treated[1] if treated[1] else 0.0
        rows.append(
            {
                "predictor": family,
                "base": base_rate,
                "with_techniques": both_rate,
                "improvement": (
                    (base_rate - both_rate) / base_rate if base_rate else 0.0
                ),
            }
        )
    return ExperimentResult(
        spec=SPEC,
        columns=["predictor", "base", "with_techniques", "improvement"],
        rows=rows,
        notes=(
            "Suite-total rates. History consumers gain from PGU; "
            "history-free predictors gain only SFP's squashes."
        ),
    )
