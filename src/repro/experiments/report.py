"""Experiment result export: CSV and JSON.

The text tables are for humans; these writers feed plotting scripts and
regression tooling.  Used by ``repro run-experiment --format csv|json``
and ``repro run-all --output DIR``.
"""

import csv
import io
import json
from pathlib import Path

from repro.experiments.common import ExperimentResult


def to_csv(result: ExperimentResult) -> str:
    """Render one experiment's rows as CSV (header included)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=result.columns, extrasaction="ignore"
    )
    writer.writeheader()
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()


def to_json(result: ExperimentResult) -> str:
    """Render one experiment (spec + rows) as pretty JSON."""
    payload = {
        "id": result.spec.id,
        "title": result.spec.title,
        "paper_artifact": result.spec.paper_artifact,
        "description": result.spec.description,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
    }
    return json.dumps(payload, indent=2, default=str)


def render(result: ExperimentResult, fmt: str = "table") -> str:
    """Render in the requested format: ``table`` / ``csv`` / ``json``."""
    if fmt == "table":
        return result.format()
    if fmt == "csv":
        return to_csv(result)
    if fmt == "json":
        return to_json(result)
    raise ValueError(f"unknown format {fmt!r} (table/csv/json)")


def write_result(result: ExperimentResult, directory,
                 fmt: str = "csv") -> Path:
    """Write one experiment's export into ``directory``; returns path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = {"csv": "csv", "json": "json", "table": "txt"}[fmt]
    path = directory / f"{result.spec.id.lower()}.{suffix}"
    path.write_text(render(result, fmt))
    return path
