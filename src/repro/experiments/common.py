"""Shared experiment infrastructure."""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.stats import format_result_table
from repro.trace.container import Trace
from repro.workloads import all_workloads, get_workload


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity and provenance of one reproduced artefact."""

    id: str
    title: str
    paper_artifact: str  #: what this reconstructs (table/figure role)
    description: str


@dataclass
class ExperimentResult:
    """Rows regenerating one table/figure."""

    spec: ExperimentSpec
    columns: List[str]
    rows: List[dict]
    notes: str = ""

    def format(self) -> str:
        text = format_result_table(
            self.rows, self.columns,
            title=f"[{self.spec.id}] {self.spec.title}",
        )
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]


def suite_workloads(workloads: Optional[List[str]] = None):
    """The workloads an experiment runs over (default: whole suite)."""
    if workloads is None:
        return all_workloads()
    return [get_workload(name) for name in workloads]


def suite_traces(
    scale: str = "small",
    hyperblocks: bool = True,
    workloads: Optional[List[str]] = None,
    config=None,
) -> Dict[str, Trace]:
    """Traces for the suite, via the on-disk cache."""
    return {
        w.name: w.trace(scale=scale, hyperblocks=hyperblocks, config=config)
        for w in suite_workloads(workloads)
    }


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, tolerating zeros by flooring at 1e-6."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-6)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
