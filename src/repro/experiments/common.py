"""Shared experiment infrastructure."""

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.sim.driver import SimOptions, SimResult
from repro.sim.stats import format_result_table
from repro.sim.sweep import ProgressCallback, sweep
from repro.telemetry import span
from repro.trace.container import Trace
from repro.workloads import all_workloads, get_workload


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity and provenance of one reproduced artefact."""

    id: str
    title: str
    paper_artifact: str  #: what this reconstructs (table/figure role)
    description: str


@dataclass
class ExperimentResult:
    """Rows regenerating one table/figure."""

    spec: ExperimentSpec
    columns: List[str]
    rows: List[dict]
    notes: str = ""

    def format(self) -> str:
        text = format_result_table(
            self.rows, self.columns,
            title=f"[{self.spec.id}] {self.spec.title}",
        )
        if self.notes:
            text += f"\n\n{self.notes}"
        return text

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]

    def numeric_metrics(self) -> Dict[str, float]:
        """Flatten numeric cells into ``<row-key>.<column>`` metrics.

        The row key is the first column's value (workload name, config
        label, ...); non-numeric, boolean and NaN cells are dropped.
        This is the diffable surface the run-history store records for
        an experiment — key stability matters more than completeness.
        """
        metrics: Dict[str, float] = {}
        key_column = self.columns[0] if self.columns else None
        for index, row in enumerate(self.rows):
            row_key = (
                str(row.get(key_column, index)) if key_column else index
            )
            for column in self.columns[1:]:
                value = row.get(column)
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                if value != value:  # NaN
                    continue
                metrics[f"{row_key}.{column}"] = float(value)
        return metrics


def suite_workloads(workloads: Optional[List[str]] = None):
    """The workloads an experiment runs over (default: whole suite)."""
    if workloads is None:
        return all_workloads()
    return [get_workload(name) for name in workloads]


def suite_traces(
    scale: str = "small",
    hyperblocks: bool = True,
    workloads: Optional[List[str]] = None,
    config=None,
) -> Dict[str, Trace]:
    """Traces for the suite, via the on-disk cache."""
    with span("traces", scale=scale):
        return {
            w.name: w.trace(
                scale=scale, hyperblocks=hyperblocks, config=config
            )
            for w in suite_workloads(workloads)
        }


def run_sweep(
    traces: Dict[str, Trace],
    predictor_factories: Dict[str, Callable],
    options_grid: Iterable[SimOptions],
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    profile=None,
    core: Optional[str] = None,
) -> List[SimResult]:
    """Run a sweep grid for an experiment (parallel when ``workers``>1).

    Thin façade over :func:`repro.sim.sweep.sweep` so experiments share
    one entry point for worker-count and progress plumbing.  ``profile``
    (a :class:`~repro.profiler.ProfileSpec`) additionally attaches a
    misprediction-attribution aggregator to every point's result;
    ``core`` selects the simulation core (default: ambient context /
    ``$REPRO_SIM_CORE`` / object).
    """
    return sweep(
        traces,
        predictor_factories,
        options_grid,
        workers=workers,
        progress=progress,
        profile=profile,
        core=core,
    )


@dataclass
class SuiteAggregate:
    """Suite-total counters accumulated across one option's results."""

    mispredictions: int = 0
    branches: int = 0
    squashed: int = 0

    def add(self, result: SimResult) -> None:
        self.mispredictions += result.mispredictions
        self.branches += result.branches
        self.squashed += result.squashed

    @property
    def rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def squash_coverage(self) -> float:
        return self.squashed / self.branches if self.branches else 0.0


def suite_option_aggregates(
    traces: Dict[str, Trace],
    labeled_options: Dict[str, SimOptions],
    factory: Callable,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, SuiteAggregate]:
    """Suite-total stats per labeled option, via one (parallel) sweep.

    Runs ``factory`` (a fresh predictor per point) over every trace for
    every option in ``labeled_options`` and folds the per-trace results
    into one :class:`SuiteAggregate` per label.
    """
    labels = list(labeled_options)
    options_list = [labeled_options[label] for label in labels]
    results = run_sweep(
        traces,
        {"p": factory},
        options_list,
        workers=workers,
        progress=progress,
    )
    with span("aggregate"):
        aggregates = {label: SuiteAggregate() for label in labels}
        # Results come back trace-major with one factory, so the option
        # (and hence label) cycles with period len(options_list).
        for i, result in enumerate(results):
            aggregates[labels[i % len(options_list)]].add(result)
    return aggregates


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, tolerating zeros by flooring at 1e-6."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-6)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0
