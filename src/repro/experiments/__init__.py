"""Experiment registry: one module per reproduced table/figure.

Each experiment module exposes ``SPEC`` (an
:class:`~repro.experiments.common.ExperimentSpec`) and ``run(...)``
returning an :class:`~repro.experiments.common.ExperimentResult` whose
rows regenerate the corresponding paper artefact.  EXPERIMENTS.md records
the paper-vs-measured comparison for every entry here.
"""

from typing import Dict, List

from repro.experiments import (
    e01_characterisation,
    e02_baseline_sizes,
    e03_sfp_coverage,
    e04_sfp,
    e05_pgu,
    e06_combined,
    e07_region_breakdown,
    e08_distance_sweep,
    e09_speedup,
    e10_ablations,
    e11_families,
    e12_btb,
    e13_frontend,
    e14_confidence,
    e15_controlled,
)
from repro.experiments.common import ExperimentResult, ExperimentSpec

_MODULES = (
    e01_characterisation,
    e02_baseline_sizes,
    e03_sfp_coverage,
    e04_sfp,
    e05_pgu,
    e06_combined,
    e07_region_breakdown,
    e08_distance_sweep,
    e09_speedup,
    e10_ablations,
    e11_families,
    e12_btb,
    e13_frontend,
    e14_confidence,
    e15_controlled,
)

EXPERIMENTS: Dict[str, "module"] = {m.SPEC.id: m for m in _MODULES}


def experiment_ids() -> List[str]:
    return list(EXPERIMENTS)


def get_experiment(exp_id: str):
    """Look an experiment module up by id.

    Ids are case-insensitive and tolerate zero padding: ``"E6"``,
    ``"e6"`` and ``"e06"`` all name the same module (the module file is
    ``e06_combined.py``, so the padded spelling is natural to type).
    """
    normalized = exp_id.upper()
    if normalized not in EXPERIMENTS and normalized.startswith("E"):
        digits = normalized[1:]
        if digits.isdigit():
            normalized = f"E{int(digits)}"
    try:
        return EXPERIMENTS[normalized]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: "
            f"{', '.join(experiment_ids())}"
        ) from None


__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "experiment_ids",
    "get_experiment",
]
