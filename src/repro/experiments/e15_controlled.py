"""E15 — controlled correlation/spacing study (extension).

The mechanism-isolation experiment the paper could not run on SPEC:
synthetic workloads where the statistics are knobs
(:mod:`repro.workloads.synthetic`).

Part 1 sweeps *noise* — how loosely the region-based branch tracks the
predicate define.  PGU's benefit must be a monotone function of the
correlation: near-perfect at noise 0, zero at noise 50 (independence).

Part 2 sweeps *spacing* — the dynamic define-to-branch distance.  SFP's
coverage must switch on once the distance clears the pipeline's D.
"""

from repro.experiments.common import ExperimentResult, ExperimentSpec
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.sim import SimOptions, simulate
from repro.workloads.synthetic import make_synthetic

SPEC = ExperimentSpec(
    id="E15",
    title="Controlled correlation and spacing study (extension)",
    paper_artifact="Extension: mechanism isolation on synthetic knobs",
    description="PGU benefit vs correlation noise; SFP vs define spacing",
)

NOISES = (0, 5, 15, 30, 50)
SPACINGS = (0, 2, 5, 9)
FAST_NOISES = (0, 15, 50)
FAST_SPACINGS = (0, 5)


def run(scale: str = "small", workloads=None, fast: bool = False,
        entries: int = 1024, bias: int = 50) -> ExperimentResult:
    """``workloads`` is accepted for interface uniformity but ignored —
    this experiment generates its own synthetic programs."""
    noises = FAST_NOISES if fast else NOISES
    spacings = FAST_SPACINGS if fast else SPACINGS
    rows = []
    for noise in noises:
        # spacing=0 keeps the branch's own guard *fresh* (invisible at
        # fetch), so what remains is pure cross-predicate correlation:
        # the hammock's define vs the branch outcome.
        workload = make_synthetic(bias=bias, noise=noise, spacing=0)
        trace = workload.trace(scale=scale, hyperblocks=True)
        base = simulate(
            trace, make_predictor("gshare", entries=entries), SimOptions()
        )
        pgu = simulate(
            trace,
            make_predictor("gshare", entries=entries),
            SimOptions(pgu=PGUConfig()),
        )
        rows.append(
            {
                "knob": f"noise={noise}",
                "base": base.misprediction_rate,
                "treated": pgu.misprediction_rate,
                "benefit": base.misprediction_rate
                - pgu.misprediction_rate,
                "squash_coverage": 0.0,
            }
        )
    for spacing in spacings:
        workload = make_synthetic(bias=bias, noise=15, spacing=spacing)
        trace = workload.trace(scale=scale, hyperblocks=True)
        base = simulate(
            trace, make_predictor("gshare", entries=entries), SimOptions()
        )
        sfp = simulate(
            trace,
            make_predictor("gshare", entries=entries),
            SimOptions(sfp=SFPConfig()),
        )
        rows.append(
            {
                "knob": f"spacing={spacing}",
                "base": base.misprediction_rate,
                "treated": sfp.misprediction_rate,
                "benefit": base.misprediction_rate
                - sfp.misprediction_rate,
                "squash_coverage": sfp.squash_coverage,
            }
        )
    return ExperimentResult(
        spec=SPEC,
        columns=["knob", "base", "treated", "benefit", "squash_coverage"],
        rows=rows,
        notes=(
            f"Synthetic workloads, bias={bias}%. noise rows: treated = "
            "+PGU; spacing rows: treated = +SFP (noise fixed at 15)."
        ),
    )
