"""E3 — SFP applicability (paper's coverage figure).

What fraction of dynamic branches is fetched with its qualifying
predicate already resolved — and resolved *false*, making the branch
squashable — as the front-end distance D varies.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_traces,
)
from repro.pipeline import AvailabilityModel

SPEC = ExperimentSpec(
    id="E3",
    title="Squash false-path filter coverage vs distance",
    paper_artifact="Figure: fraction of branches with known guards",
    description=(
        "Per distance D: share of branches (and of region-based branches) "
        "whose guard is resolved / resolved-false at fetch"
    ),
)

DISTANCES = (0, 2, 4, 8, 16, 32)


def run(scale: str = "small", workloads=None,
        distances=DISTANCES) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    rows = []
    for distance in distances:
        model = AvailabilityModel(distance)
        known = known_false = region_false = 0.0
        for trace in traces.values():
            coverage = model.coverage(trace)
            known += coverage["guard_known"]
            known_false += coverage["guard_known_false"]
            region_false += coverage["region_guard_known_false"]
        count = len(traces)
        rows.append(
            {
                "distance": distance,
                "guard_known": known / count,
                "squashable": known_false / count,
                "region_squashable": region_false / count,
            }
        )
    return ExperimentResult(
        spec=SPEC,
        columns=["distance", "guard_known", "squashable",
                 "region_squashable"],
        rows=rows,
        notes=(
            "Suite means. D=0 is the perfect-knowledge bound; coverage "
            "decays as the pipeline gets deeper/wider."
        ),
    )
