"""E14 — predicate-aware branch confidence (extension).

A JRS confidence estimator classifies predictions as high/low
confidence; the squash false-path filter adds a third, *perfect* class
(direction proven by the guard).  The question a gating/fetch-steering
consumer asks: what fraction of predictions can be trusted, and how
accurate is the trusted set?  SFP should grow the trusted fraction at
100% accuracy; PGU should raise high-confidence accuracy by making the
underlying predictions better.
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    suite_traces,
)
from repro.predictors import PGUConfig, SFPConfig, make_predictor
from repro.predictors.confidence import ConfidenceEstimator
from repro.sim import SimOptions
from repro.sim.confidence import simulate_with_confidence

SPEC = ExperimentSpec(
    id="E14",
    title="Predicate-aware branch confidence (extension)",
    paper_artifact="Extension: confidence classes with/without techniques",
    description=(
        "JRS estimator coverage/accuracy; SFP adds a perfect-confidence "
        "class"
    ),
)

CONFIGS = {
    "plain": SimOptions(),
    "sfp": SimOptions(sfp=SFPConfig()),
    "sfp+pgu": SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
}


def run(scale: str = "small", workloads=None, entries: int = 1024,
        threshold: int = 8) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    rows = []
    for label, options in CONFIGS.items():
        totals = dict(branches=0, perfect=0, high=0, high_correct=0,
                      low=0, low_correct=0)
        for trace in traces.values():
            result = simulate_with_confidence(
                trace,
                make_predictor("gshare", entries=entries),
                ConfidenceEstimator(entries=entries, threshold=threshold),
                options,
            )
            totals["branches"] += result.branches
            totals["perfect"] += result.perfect
            totals["high"] += result.high
            totals["high_correct"] += result.high_correct
            totals["low"] += result.low
            totals["low_correct"] += result.low_correct
        branches = max(totals["branches"], 1)
        high = max(totals["high"], 1)
        low = max(totals["low"], 1)
        trusted = totals["perfect"] + totals["high"]
        rows.append(
            {
                "config": label,
                "perfect_cov": totals["perfect"] / branches,
                "high_cov": totals["high"] / branches,
                "high_acc": totals["high_correct"] / high,
                "low_acc": totals["low_correct"] / low,
                "trusted_cov": trusted / branches,
                "trusted_acc": (
                    (totals["perfect"] + totals["high_correct"]) / trusted
                    if trusted
                    else 1.0
                ),
            }
        )
    return ExperimentResult(
        spec=SPEC,
        columns=["config", "perfect_cov", "high_cov", "high_acc",
                 "low_acc", "trusted_cov", "trusted_acc"],
        rows=rows,
        notes=(
            f"gshare-{entries} + JRS estimator (threshold {threshold}). "
            "perfect = squashed (direction proven); trusted = perfect + "
            "high-confidence."
        ),
    )
