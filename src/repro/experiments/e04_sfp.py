"""E4 — squash false-path filter benefit (paper's first result figure).

gshare with and without SFP per workload, plus the pollution question:
does keeping squashed branches out of the pattern table (filtering)
beat training it with their certain not-taken outcomes?
"""

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSpec,
    arithmetic_mean,
    suite_traces,
)
from repro.predictors import SFPConfig, make_predictor
from repro.sim import SimOptions, simulate

SPEC = ExperimentSpec(
    id="E4",
    title="Squash false-path filter",
    paper_artifact="Figure: misprediction with/without the SFP filter",
    description=(
        "gshare vs gshare+SFP per workload; filter-vs-train PHT ablation"
    ),
)


def run(scale: str = "small", workloads=None,
        entries: int = 1024) -> ExperimentResult:
    traces = suite_traces(scale=scale, workloads=workloads)
    rows = []
    for name, trace in traces.items():
        base = simulate(
            trace, make_predictor("gshare", entries=entries), SimOptions()
        )
        filt = simulate(
            trace,
            make_predictor("gshare", entries=entries),
            SimOptions(sfp=SFPConfig(update_pht=False)),
        )
        train = simulate(
            trace,
            make_predictor("gshare", entries=entries),
            SimOptions(sfp=SFPConfig(update_pht=True)),
        )
        rows.append(
            {
                "workload": name,
                "base": base.misprediction_rate,
                "sfp_filter": filt.misprediction_rate,
                "sfp_train_pht": train.misprediction_rate,
                "squash_coverage": filt.squash_coverage,
            }
        )
    rows.append(
        {
            "workload": "MEAN",
            "base": arithmetic_mean([r["base"] for r in rows]),
            "sfp_filter": arithmetic_mean([r["sfp_filter"] for r in rows]),
            "sfp_train_pht": arithmetic_mean(
                [r["sfp_train_pht"] for r in rows]
            ),
            "squash_coverage": arithmetic_mean(
                [r["squash_coverage"] for r in rows]
            ),
        }
    )
    return ExperimentResult(
        spec=SPEC,
        columns=["workload", "base", "sfp_filter", "sfp_train_pht",
                 "squash_coverage"],
        rows=rows,
        notes=(
            "Squashed branches are predicted not-taken with certainty. "
            "sfp_filter keeps them out of the PHT; sfp_train_pht updates "
            "it anyway."
        ),
    )
