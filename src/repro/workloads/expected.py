"""Golden return values for every workload at the tested scales.

These pin down two properties at once, on every run of every compile
configuration: the workloads are deterministic, and the baseline and
hyperblock compilers agree (if-conversion must never change a result).
``ref`` scale is deliberately unpinned — it exists for long experiments
and would make adding scales tedious.
"""

EXPECTED = {
    "qsort": {"tiny": 1539567027, "small": 1244456945},
    "compress": {"tiny": 291591286, "small": 475323006},
    "grep": {"tiny": 583926371, "small": 168452006},
    "life": {"tiny": 420350169, "small": 51584205},
    "dijkstra": {"tiny": 117651844, "small": 794757740},
    "expr": {"tiny": 3230987, "small": 16966987},
    "crc": {"tiny": 56260610, "small": 37672972},
    "huffman": {"tiny": 112977106, "small": 674688737},
    "hashlookup": {"tiny": 978, "small": 6365},
    "lexer": {"tiny": 1170273, "small": 9763421},
    "nbody": {"tiny": 668431144, "small": 850660568},
    "mtf": {"tiny": 48223648, "small": 678134767},
    "parser": {"tiny": 10424, "small": 87266},
    "maze": {"tiny": 801, "small": 3634},
    "bitmix": {"tiny": 710247085, "small": 524396849},
}
