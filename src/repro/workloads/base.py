"""Workload descriptor: parameterized source, compile, run, trace."""

import hashlib
from dataclasses import dataclass, field
from string import Template
from typing import Dict, Optional

from repro import __version__
from repro.compiler import CompileConfig, compile_source, compile_with_profile
from repro.compiler import config as config_mod
from repro.engine import run as run_program
from repro.telemetry import span
from repro.trace import Trace, TraceCache, TraceMeta, TraceRecorder

#: Canonical scale names, smallest first.
SCALES = ("tiny", "small", "ref")


@dataclass
class WorkloadRun:
    """Result of executing a workload once."""

    return_value: int
    instructions: int


@dataclass
class Workload:
    """One benchmark: a ``minic`` source template plus input scales.

    Attributes:
        name: suite-unique identifier (e.g. ``"qsort"``).
        description: one line on what the kernel models.
        template: ``string.Template`` text with ``$param`` placeholders.
        scales: per-scale parameter dictionaries (keys: tiny/small/ref).
        expected: optional per-scale expected ``main`` return values,
            asserted whenever the workload runs (a built-in self-check
            that baseline and hyperblock compiles agree).
    """

    name: str
    description: str
    template: str
    scales: Dict[str, Dict[str, int]]
    expected: Dict[str, int] = field(default_factory=dict)

    def source(self, scale: str = "small") -> str:
        """The concrete ``minic`` source for ``scale``."""
        if scale not in self.scales:
            raise KeyError(
                f"workload {self.name!r} has no scale {scale!r}; "
                f"choose from {sorted(self.scales)}"
            )
        return Template(self.template).substitute(self.scales[scale])

    def compile(self, scale: str = "small",
                config: Optional[CompileConfig] = None):
        """Compile at ``scale``; hyperblock configs get the two-pass
        profile-guided flow automatically."""
        config = config or config_mod.BASELINE
        source = self.source(scale)
        if config.hyperblocks:
            return compile_with_profile(source, config)
        return compile_source(source, config)

    def run(self, scale: str = "small",
            config: Optional[CompileConfig] = None) -> WorkloadRun:
        """Compile and execute once (no tracing)."""
        compiled = self.compile(scale, config)
        result = run_program(compiled.executable)
        self._check_expected(scale, result.return_value)
        return WorkloadRun(
            return_value=result.return_value,
            instructions=result.instructions,
        )

    def trace(
        self,
        scale: str = "small",
        hyperblocks: bool = True,
        config: Optional[CompileConfig] = None,
        cache: Optional[TraceCache] = None,
        use_cache: bool = True,
    ) -> Trace:
        """Produce (or fetch from cache) the dynamic trace.

        ``hyperblocks`` picks between the two canonical configs when no
        explicit ``config`` is given.
        """
        if config is None:
            config = (
                config_mod.HYPERBLOCK if hyperblocks else config_mod.BASELINE
            )
        key = self._cache_key(scale, config)
        if use_cache:
            cache = cache or TraceCache()
            return cache.get_or_build(
                key, lambda: self._build_trace(scale, config)
            )
        return self._build_trace(scale, config)

    def _build_trace(self, scale: str, config: CompileConfig) -> Trace:
        with span("trace-build", workload=self.name, scale=scale):
            compiled = self.compile(scale, config)
            recorder = TraceRecorder()
            result = run_program(compiled.executable, recorder=recorder)
        self._check_expected(scale, result.return_value)
        meta = TraceMeta(
            workload=self.name,
            scale=scale,
            compile_config=config.cache_key(),
            instructions=result.instructions,
            return_value=result.return_value,
        )
        return recorder.finish(meta)

    def _check_expected(self, scale: str, value: int) -> None:
        if scale in self.expected and self.expected[scale] != value:
            raise AssertionError(
                f"workload {self.name!r} scale {scale!r} returned {value}, "
                f"expected {self.expected[scale]}"
            )

    def _cache_key(self, scale: str, config: CompileConfig) -> str:
        digest = hashlib.sha256(self.source(scale).encode()).hexdigest()[:16]
        return (
            f"v{__version__}|{self.name}|{scale}|{digest}|"
            f"{config.cache_key()}"
        )
