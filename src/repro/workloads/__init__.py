"""The deterministic benchmark suite.

Each workload is a ``minic`` program modelled on a SPECint-class kernel:
sorting, compression, string matching, cellular automata, graph search,
interpreters, checksums, coding, hashing and lexing.  Together they cover
the branch population the paper's techniques target — biased loop exits,
correlated if-ladders, data-dependent coin-flip branches, cold error
paths behind side exits, and calls inside predicated arms.

Inputs are generated in-program from seeded linear congruential
generators, so every trace is bit-reproducible.  Use
:func:`get_workload`/:func:`all_workloads` and
:meth:`Workload.trace` to obtain (cached) traces.
"""

from repro.workloads.base import Workload, WorkloadRun
from repro.workloads.suite import all_workloads, get_workload, workload_names

__all__ = [
    "Workload",
    "WorkloadRun",
    "all_workloads",
    "get_workload",
    "workload_names",
]
