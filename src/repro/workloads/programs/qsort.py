"""qsort — recursive quicksort with an insertion-sort base case.

Models the sorting kernels of SPECint-style integer codes: the partition
loop's comparison is a data-dependent near-coin-flip, the insertion sort
inner loop exit is short and biased, and median-of-three pivot selection
is a run of small swappable hammocks (prime if-conversion targets).
"""

from repro.workloads.base import Workload

SOURCE = """
global data[$n];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func insertion(lo, hi) {
    var i = lo + 1;
    var key = 0;
    var j = 0;
    while (i <= hi) {
        key = data[i];
        j = i - 1;
        while (j >= lo && data[j] > key) {
            data[j + 1] = data[j];
            j = j - 1;
        }
        data[j + 1] = key;
        i = i + 1;
    }
    return 0;
}

func median3(lo, mid, hi) {
    var a = data[lo];
    var b = data[mid];
    var c = data[hi];
    var t = 0;
    if (a > b) { t = a; a = b; b = t; }
    if (b > c) { t = b; b = c; c = t; }
    if (a > b) { t = a; a = b; b = t; }
    return b;
}

func quicksort(lo, hi) {
    if (hi - lo < 12) {
        insertion(lo, hi);
        return 0;
    }
    var pivot = median3(lo, (lo + hi) / 2, hi);
    var i = lo;
    var j = hi;
    var t = 0;
    while (i <= j) {
        while (data[i] < pivot) { i = i + 1; }
        while (data[j] > pivot) { j = j - 1; }
        if (i <= j) {
            t = data[i];
            data[i] = data[j];
            data[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    quicksort(lo, j);
    quicksort(i, hi);
    return 0;
}

func main() {
    var i = 0;
    var seed = $seed;
    while (i < $n) {
        seed = lcg(seed);
        data[i] = seed % 100000;
        i = i + 1;
    }
    quicksort(0, $n - 1);
    var check = 0;
    var sorted = 1;
    i = 0;
    while (i < $n) {
        check = (check * 31 + data[i]) % 1000000007;
        if (i > 0 && data[i] < data[i - 1]) {
            sorted = 0;
        }
        i = i + 1;
    }
    return check * 2 + sorted;
}
"""

WORKLOAD = Workload(
    name="qsort",
    description="recursive quicksort with insertion-sort base case",
    template=SOURCE,
    scales={
        "tiny": {"n": 256, "seed": 12345},
        "small": {"n": 2048, "seed": 12345},
        "ref": {"n": 12288, "seed": 12345},
    },
)
