"""hashlookup — open-addressing hash table build + probe.

Models symbol-table traffic (SPECint ``gcc``/``vortex``): probe loops
whose hit/miss/collision branches depend on occupancy, with a biased
early exit on first-probe hits and a cold table-full path.
"""

from repro.workloads.base import Workload

SOURCE = """
global keys[$tabsize];
global vals[$tabsize];
global queries[$nq];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func insert(key, value) {
    var slot = key * 2654435761 % $tabsize;
    if (slot < 0) { slot = 0 - slot; }
    var probes = 0;
    while (probes < $tabsize) {
        if (keys[slot] == 0) {
            keys[slot] = key;
            vals[slot] = value;
            return probes;
        }
        if (keys[slot] == key) {
            vals[slot] = vals[slot] + value;
            return probes;
        }
        slot = slot + 1;
        if (slot >= $tabsize) { slot = 0; }
        probes = probes + 1;
    }
    return 0 - 1;
}

func lookup(key) {
    var slot = key * 2654435761 % $tabsize;
    if (slot < 0) { slot = 0 - slot; }
    var probes = 0;
    while (probes < $tabsize) {
        if (keys[slot] == 0) {
            return 0 - 1;
        }
        if (keys[slot] == key) {
            return vals[slot];
        }
        slot = slot + 1;
        if (slot >= $tabsize) { slot = 0; }
        probes = probes + 1;
    }
    return 0 - 1;
}

func main() {
    var i = 0;
    var seed = $seed;
    var key = 0;
    var inserted = 0;
    // Fill to ~70% occupancy with nonzero keys.
    while (i < $nkeys) {
        seed = lcg(seed);
        key = seed % 100000 + 1;
        if (insert(key, key % 97) >= 0) { inserted = inserted + 1; }
        i = i + 1;
    }
    // Queries: half present-ish, half misses.
    i = 0;
    var qseed = $seed + 17;
    while (i < $nq) {
        qseed = lcg(qseed);
        if (qseed % 2 == 0) {
            queries[i] = qseed % 100000 + 1;
        } else {
            queries[i] = 100001 + qseed % 50000;  // guaranteed miss range
        }
        i = i + 1;
    }
    var hits = 0;
    var misses = 0;
    var sum = 0;
    var v = 0;
    i = 0;
    while (i < $nq) {
        v = lookup(queries[i]);
        if (v >= 0) {
            hits = hits + 1;
            sum = (sum + v) % 1000000007;
        } else {
            misses = misses + 1;
        }
        i = i + 1;
    }
    return sum + hits * 10 + misses + inserted;
}
"""

WORKLOAD = Workload(
    name="hashlookup",
    description="open-addressing hash table probes (hit/miss/collision)",
    template=SOURCE,
    scales={
        "tiny": {"tabsize": 512, "nkeys": 350, "nq": 600, "seed": 8088},
        "small": {"tabsize": 2048, "nkeys": 1400, "nq": 4000, "seed": 8088},
        "ref": {"tabsize": 8192, "nkeys": 5700, "nq": 24000, "seed": 8088},
    },
)
