"""parser — recursive-descent evaluation of a synthetic token stream.

Models SPECint front-end code (``gcc``'s parser, ``perl``'s evaluator):
token-kind dispatch ladders whose outcomes follow the grammar (strongly
correlated), recursion depth tracking, and a rare syntax-error recovery
path.
"""

from repro.workloads.base import Workload

SOURCE = """
global tokens[$n];
global errors[4];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

// Token kinds: 0..9 number, 10 '+', 11 '*', 12 '(', 13 ')', 14 end.
// parse_* return packed (value * 8 + consumed-position delta is too
// costly); instead a cursor lives in a global cell.
global cursor[1];

func peek() {
    return tokens[cursor[0]];
}

func advance() {
    cursor[0] = cursor[0] + 1;
    return 0;
}

func parse_primary(depth) {
    var t = peek();
    if (t < 10) {
        advance();
        return t;
    }
    if (t == 12 && depth < 24) {
        advance();
        var v = parse_expr(depth + 1);
        if (peek() == 13) {
            advance();
        } else {
            errors[0] = errors[0] + 1;   // missing ')': rare
        }
        return v;
    }
    // Unexpected token: error recovery (cold).
    errors[1] = errors[1] + 1;
    advance();
    return 1;
}

func parse_term(depth) {
    var v = parse_primary(depth);
    while (peek() == 11) {
        advance();
        v = v * parse_primary(depth) % 65536;
    }
    return v;
}

func parse_expr(depth) {
    var v = parse_term(depth);
    while (peek() == 10) {
        advance();
        v = (v + parse_term(depth)) % 65536;
    }
    return v;
}

func main() {
    var i = 0;
    var seed = $seed;
    var r = 0;
    var open = 0;
    // Generate a plausible token stream (numbers/ops/parens).
    while (i < $n - 1) {
        seed = lcg(seed);
        r = seed % 100;
        if (r < 45) { tokens[i] = seed % 10; }
        else if (r < 65) { tokens[i] = 10; }
        else if (r < 80) { tokens[i] = 11; }
        else if (r < 90) { tokens[i] = 12; open = open + 1; }
        else {
            if (open > 0) { tokens[i] = 13; open = open - 1; }
            else { tokens[i] = seed % 10; }
        }
        i = i + 1;
    }
    tokens[$n - 1] = 14;

    var total = 0;
    var parses = 0;
    var t = 0;
    cursor[0] = 0;
    while (peek() != 14) {
        total = (total + parse_expr(0)) % 1000000007;
        parses = parses + 1;
        // Skip separators the grammar did not consume.
        t = peek();
        if (t != 14 && t >= 10) {
            advance();
        }
    }
    return total + parses * 7 + errors[0] * 100 + errors[1];
}
"""

WORKLOAD = Workload(
    name="parser",
    description="recursive-descent parser over a synthetic token stream",
    template=SOURCE,
    scales={
        "tiny": {"n": 1200, "seed": 271828},
        "small": {"n": 9000, "seed": 271828},
        "ref": {"n": 60000, "seed": 271828},
    },
)
