"""maze — Lee-algorithm breadth-first maze routing.

Models CAD/routing kernels (and SPECint ``twolf``-adjacent behaviour):
wavefront expansion with four bounds-checked neighbour probes per cell
(correlated guard ladders), a visited test whose bias drifts as the
wave fills the grid, and a rare target-hit exit.
"""

from repro.workloads.base import Workload

SOURCE = """
global grid[$cells];
global dist[$cells];
global queue[$cells];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var w = $width;
    var h = $height;
    var cells = w * h;
    var i = 0;
    var seed = $seed;
    // Obstacles on ~30% of cells; start and goal kept clear.
    while (i < cells) {
        seed = lcg(seed);
        if (seed % 100 < 30) { grid[i] = 1; } else { grid[i] = 0; }
        dist[i] = 0 - 1;
        i = i + 1;
    }
    grid[0] = 0;
    grid[cells - 1] = 0;

    var routed = 0;
    var expansions = 0;
    var trial = 0;
    var start = 0;
    var goal = 0;
    var head = 0;
    var tail = 0;
    var u = 0;
    var x = 0;
    var y = 0;
    var v = 0;
    var found = 0;
    while (trial < $trials) {
        seed = lcg(seed);
        start = seed % cells;
        seed = lcg(seed);
        goal = seed % cells;
        if (grid[start] == 1 || grid[goal] == 1) {
            trial = trial + 1;
            continue;
        }
        // reset distances (counts as work, like rip-up in real routers)
        i = 0;
        while (i < cells) { dist[i] = 0 - 1; i = i + 1; }
        head = 0;
        tail = 0;
        queue[tail] = start;
        tail = tail + 1;
        dist[start] = 0;
        found = 0;
        while (head < tail) {
            u = queue[head];
            head = head + 1;
            if (u == goal) { found = 1; break; }
            x = u % w;
            y = u / w;
            if (x > 0) {
                v = u - 1;
                if (grid[v] == 0 && dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    queue[tail] = v; tail = tail + 1;
                }
            }
            if (x < w - 1) {
                v = u + 1;
                if (grid[v] == 0 && dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    queue[tail] = v; tail = tail + 1;
                }
            }
            if (y > 0) {
                v = u - w;
                if (grid[v] == 0 && dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    queue[tail] = v; tail = tail + 1;
                }
            }
            if (y < h - 1) {
                v = u + w;
                if (grid[v] == 0 && dist[v] < 0) {
                    dist[v] = dist[u] + 1;
                    queue[tail] = v; tail = tail + 1;
                }
            }
            expansions = expansions + 1;
        }
        if (found == 1) { routed = routed + dist[goal] + 1; }
        trial = trial + 1;
    }
    return routed * 17 + expansions % 1000000007;
}
"""

WORKLOAD = Workload(
    name="maze",
    description="Lee-algorithm BFS maze routing with neighbour guards",
    template=SOURCE,
    scales={
        "tiny": {"width": 14, "height": 10, "cells": 140, "trials": 6,
                 "seed": 141421},
        "small": {"width": 24, "height": 18, "cells": 432, "trials": 12,
                  "seed": 141421},
        "ref": {"width": 40, "height": 30, "cells": 1200, "trials": 30,
                "seed": 141421},
    },
)
