"""mtf — move-to-front transform plus run-length coding.

Models the front half of ``bzip2``: the move-to-front search loop exits
early for recently seen symbols (data-dependent, locality-driven), the
rank-0 test is biased by symbol clustering, and the RLE emitter has a
run-continuation branch whose bias tracks the input's repetitiveness.
"""

from repro.workloads.base import Workload

SOURCE = """
global text[$n];
global mtftab[64];
global ranks[$n];
global out[$n];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var i = 0;
    var seed = $seed;
    var sym = 0;
    // Clustered symbol stream: long stretches reuse a small working set.
    var base = 0;
    while (i < $n) {
        seed = lcg(seed);
        if (seed % 100 < 6) {
            base = seed % 48;            // switch working set (rare)
        }
        if (seed % 100 < 70) {
            sym = base + seed % 4;       // hot working set
        } else {
            sym = seed % 64;             // background noise
        }
        text[i] = sym;
        i = i + 1;
    }
    i = 0;
    while (i < 64) { mtftab[i] = i; i = i + 1; }

    // Move-to-front transform.
    var pos = 0;
    var j = 0;
    var c = 0;
    var prev = 0;
    var zeros = 0;
    while (pos < $n) {
        c = text[pos];
        j = 0;
        while (mtftab[j] != c) {
            j = j + 1;
        }
        ranks[pos] = j;
        if (j == 0) {
            zeros = zeros + 1;           // biased by clustering
        } else {
            // shift table entries down, put c in front
            while (j > 0) {
                mtftab[j] = mtftab[j - 1];
                j = j - 1;
            }
            mtftab[0] = c;
        }
        pos = pos + 1;
    }

    // Run-length code the rank stream.
    var emitted = 0;
    var run = 0;
    pos = 0;
    prev = 0 - 1;
    while (pos < $n) {
        c = ranks[pos];
        if (c == prev && run < 255) {
            run = run + 1;
        } else {
            if (run > 0) {
                out[emitted] = prev * 256 + run;
                emitted = emitted + 1;
            }
            prev = c;
            run = 1;
        }
        pos = pos + 1;
    }
    if (run > 0) {
        out[emitted] = prev * 256 + run;
        emitted = emitted + 1;
    }
    var check = 0;
    i = 0;
    while (i < emitted) {
        check = (check * 163 + out[i]) % 1000000007;
        i = i + 1;
    }
    return check + zeros * 3 + emitted;
}
"""

WORKLOAD = Workload(
    name="mtf",
    description="move-to-front transform with run-length coding",
    template=SOURCE,
    scales={
        "tiny": {"n": 1200, "seed": 70921},
        "small": {"n": 8000, "seed": 70921},
        "ref": {"n": 50000, "seed": 70921},
    },
)
