"""crc — bit-serial CRC over a message buffer.

Models checksum/codec kernels: the "is the low bit set" branch is a
data-dependent near-coin-flip that conventional predictors handle poorly
— the canonical if-conversion victory (the whole loop body becomes two
predicated ops), after which *no* branch remains to mispredict.
"""

from repro.workloads.base import Workload

SOURCE = """
global message[$n];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var i = 0;
    var seed = $seed;
    while (i < $n) {
        seed = lcg(seed);
        message[i] = seed % 65536;
        i = i + 1;
    }
    var crc = 65535;
    var word = 0;
    var bit = 0;
    var parityhits = 0;
    i = 0;
    while (i < $n) {
        word = message[i];
        crc = crc ^ word;
        bit = 0;
        while (bit < 16) {
            if (crc % 2 == 1) {
                crc = (crc >> 1) ^ 40961;
            } else {
                crc = crc >> 1;
            }
            bit = bit + 1;
        }
        if (crc % 256 == 0) {
            parityhits = parityhits + 1;   // cold path
        }
        i = i + 1;
    }
    return crc * 1024 + parityhits;
}
"""

WORKLOAD = Workload(
    name="crc",
    description="bit-serial CRC with coin-flip conditional XOR",
    template=SOURCE,
    scales={
        "tiny": {"n": 300, "seed": 60221},
        "small": {"n": 2000, "seed": 60221},
        "ref": {"n": 12000, "seed": 60221},
    },
)
