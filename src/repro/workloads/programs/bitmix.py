"""bitmix — an ARX-style block mixer with data-dependent rotations.

Models crypto/hash kernels (``sha``-like): mostly straight-line bit
arithmetic with *few* branches, so it anchors the low end of the
branch-density spectrum — a workload where neither technique should
matter much, keeping the suite honest.  The sole data-dependent branch
(a sparse feedback condition) resists history prediction.
"""

from repro.workloads.base import Workload

SOURCE = """
global state[16];
global digest[$blocks];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func rotl(v, r) {
    // rotate-left within 32 bits
    var lo = v % 4294967296;
    return (lo << (r % 32 + 32) % 32 | lo >> ((32 - r) % 32 + 32) % 32)
           % 4294967296;
}

func main() {
    var i = 0;
    while (i < 16) { state[i] = i * 2654435761 % 4294967296; i = i + 1; }

    var block = 0;
    var seed = $seed;
    var round = 0;
    var a = 0; var b = 0; var c = 0; var d = 0;
    var feedback = 0;
    while (block < $blocks) {
        seed = lcg(seed);
        state[block % 16] = (state[block % 16] + seed) % 4294967296;
        round = 0;
        while (round < $rounds) {
            a = state[(round * 4) % 16];
            b = state[(round * 4 + 5) % 16];
            c = state[(round * 4 + 10) % 16];
            d = state[(round * 4 + 15) % 16];
            a = (a + b) % 4294967296;
            d = rotl(d ^ a, 16);
            c = (c + d) % 4294967296;
            b = rotl(b ^ c, 12);
            a = (a + b) % 4294967296;
            d = rotl(d ^ a, 8);
            c = (c + d) % 4294967296;
            b = rotl(b ^ c, b);         // data-dependent rotation
            state[(round * 4) % 16] = a;
            state[(round * 4 + 5) % 16] = b;
            state[(round * 4 + 10) % 16] = c;
            state[(round * 4 + 15) % 16] = d;
            // Sparse, hard-to-predict feedback branch.
            if (a % 1024 < 3) {
                feedback = feedback + 1;
                state[0] = state[0] ^ b;
            }
            round = round + 1;
        }
        digest[block] = (state[0] ^ state[7] ^ state[13]) % 4294967296;
        block = block + 1;
    }
    var check = 0;
    i = 0;
    while (i < $blocks) {
        check = (check * 31 + digest[i]) % 1000000007;
        i = i + 1;
    }
    return check + feedback;
}
"""

WORKLOAD = Workload(
    name="bitmix",
    description="ARX-style block mixer, branch-sparse control",
    template=SOURCE,
    scales={
        "tiny": {"blocks": 40, "rounds": 12, "seed": 57721},
        "small": {"blocks": 220, "rounds": 16, "seed": 57721},
        "ref": {"blocks": 1200, "rounds": 20, "seed": 57721},
    },
)
