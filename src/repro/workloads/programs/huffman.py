"""huffman — static Huffman-style encoder with bit packing.

Models entropy-coding kernels: the symbol-to-code-length ladder follows
the skewed symbol distribution (correlated, biased levels), and the
bit-buffer flush branch fires at data-dependent intervals.
"""

from repro.workloads.base import Workload

SOURCE = """
global symbols[$n];
global packed[$n];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var i = 0;
    var seed = $seed;
    var r = 0;
    // Geometric-ish symbol distribution over 16 symbols.
    while (i < $n) {
        seed = lcg(seed);
        r = seed % 100;
        if (r < 40) { symbols[i] = 0; }
        else { if (r < 65) { symbols[i] = 1; }
        else { if (r < 80) { symbols[i] = 2; }
        else { if (r < 89) { symbols[i] = 3; }
        else { symbols[i] = 4 + seed % 12; } } } }
        i = i + 1;
    }

    var bits = 0;
    var nbits = 0;
    var outpos = 0;
    var sym = 0;
    var codelen = 0;
    var codeval = 0;
    var total = 0;
    i = 0;
    while (i < $n) {
        sym = symbols[i];
        if (sym == 0) { codelen = 1; codeval = 0; }
        else { if (sym == 1) { codelen = 2; codeval = 2; }
        else { if (sym == 2) { codelen = 3; codeval = 6; }
        else { if (sym == 3) { codelen = 4; codeval = 14; }
        else { codelen = 8; codeval = 240 + sym - 4; } } } }
        bits = bits * (1 << codelen) + codeval;
        nbits = nbits + codelen;
        total = total + codelen;
        if (nbits >= 16) {
            nbits = nbits - 16;
            packed[outpos] = (bits >> nbits) % 65536;
            bits = bits % (1 << nbits + 1);
            outpos = outpos + 1;
        }
        i = i + 1;
    }
    var check = 0;
    i = 0;
    while (i < outpos) {
        check = (check * 257 + packed[i]) % 1000000007;
        i = i + 1;
    }
    return check + total + outpos;
}
"""

WORKLOAD = Workload(
    name="huffman",
    description="static Huffman-style encoder with bit packing",
    template=SOURCE,
    scales={
        "tiny": {"n": 3000, "seed": 1009},
        "small": {"n": 20000, "seed": 1009},
        "ref": {"n": 120000, "seed": 1009},
    },
)
