"""nbody — fixed-point particle interaction with cutoff tests.

Models scientific-ish integer kernels with guard-heavy inner loops: the
cutoff test's bias depends on particle geometry, the cell-pair skip is
hot, and the close-encounter path is cold (a side-exit candidate).
"""

from repro.workloads.base import Workload

SOURCE = """
global px[$n];
global py[$n];
global vx[$n];
global vy[$n];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var i = 0;
    var j = 0;
    var seed = $seed;
    while (i < $n) {
        seed = lcg(seed);
        px[i] = seed % 1000;
        seed = lcg(seed);
        py[i] = seed % 1000;
        vx[i] = 0;
        vy[i] = 0;
        i = i + 1;
    }
    var step = 0;
    var dx = 0;
    var dy = 0;
    var d2 = 0;
    var f = 0;
    var close = 0;
    var interactions = 0;
    while (step < $steps) {
        i = 0;
        while (i < $n) {
            j = i + 1;
            while (j < $n) {
                dx = px[j] - px[i];
                dy = py[j] - py[i];
                if (dx < 0) { dx = 0 - dx; }
                if (dy < 0) { dy = 0 - dy; }
                // Cheap box cutoff before the expensive test.
                if (dx < 220 && dy < 220) {
                    d2 = dx * dx + dy * dy;
                    if (d2 < 48400) {
                        f = 1000 / (d2 / 100 + 1);
                        interactions = interactions + 1;
                        if (px[i] < px[j]) {
                            vx[i] = vx[i] - f;
                            vx[j] = vx[j] + f;
                        } else {
                            vx[i] = vx[i] + f;
                            vx[j] = vx[j] - f;
                        }
                        if (d2 < 400) {
                            close = close + 1;   // rare close encounter
                        }
                    }
                }
                j = j + 1;
            }
            i = i + 1;
        }
        i = 0;
        while (i < $n) {
            px[i] = (px[i] + vx[i] / 16) % 1000;
            py[i] = (py[i] + vy[i] / 16) % 1000;
            if (px[i] < 0) { px[i] = px[i] + 1000; }
            if (py[i] < 0) { py[i] = py[i] + 1000; }
            i = i + 1;
        }
        step = step + 1;
    }
    var check = 0;
    i = 0;
    while (i < $n) {
        check = (check * 17 + px[i] + py[i] * 3) % 1000000007;
        i = i + 1;
    }
    return check + interactions + close * 5;
}
"""

WORKLOAD = Workload(
    name="nbody",
    description="fixed-point particle kernel with cutoff guard ladders",
    template=SOURCE,
    scales={
        "tiny": {"n": 24, "steps": 4, "seed": 1618},
        "small": {"n": 56, "steps": 8, "seed": 1618},
        "ref": {"n": 128, "steps": 16, "seed": 1618},
    },
)
