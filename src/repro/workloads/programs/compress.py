"""compress — LZ77-style compressor with a hash-chain match finder.

Models SPECint ``compress``/``gzip``: the match-found branch depends on
data statistics, the match-extension inner loop has a biased early exit,
and literal-vs-match emission is a mid-bias hammock correlated with the
hash-probe outcome (a predicate-correlation target for PGU).
"""

from repro.workloads.base import Workload

SOURCE = """
global text[$n];
global hashtab[512];
global out[$n];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var i = 0;
    var seed = $seed;
    var sym = 0;
    // Skewed 16-symbol alphabet with runs: compressible but not trivial.
    while (i < $n) {
        seed = lcg(seed);
        if (seed % 100 < 55) {
            // repeat previous symbol (runs)
            if (i > 0) { sym = text[i - 1]; } else { sym = 3; }
        } else {
            sym = seed % 16;
            if (seed % 7 == 0) { sym = sym % 4; }
        }
        text[i] = sym;
        i = i + 1;
    }
    i = 0;
    while (i < 512) { hashtab[i] = 0 - 1; i = i + 1; }

    var pos = 0;
    var emitted = 0;
    var literals = 0;
    var matches = 0;
    var h = 0;
    var cand = 0;
    var len = 0;
    var maxlen = 0;
    var limit = 0;
    while (pos + 3 < $n) {
        h = (text[pos] * 33 * 33 + text[pos + 1] * 33 + text[pos + 2]) % 512;
        cand = hashtab[h];
        hashtab[h] = pos;
        maxlen = 0;
        if (cand >= 0 && pos - cand < 255) {
            len = 0;
            limit = $n - pos;
            if (limit > 32) { limit = 32; }
            while (len < limit && text[cand + len] == text[pos + len]) {
                len = len + 1;
            }
            maxlen = len;
        }
        if (maxlen >= 3) {
            out[emitted] = (pos - cand) * 64 + maxlen;
            emitted = emitted + 1;
            matches = matches + 1;
            pos = pos + maxlen;
        } else {
            out[emitted] = text[pos];
            emitted = emitted + 1;
            literals = literals + 1;
            pos = pos + 1;
        }
    }
    var check = 0;
    i = 0;
    while (i < emitted) {
        check = (check * 131 + out[i]) % 1000000007;
        i = i + 1;
    }
    return check + matches * 3 + literals;
}
"""

WORKLOAD = Workload(
    name="compress",
    description="LZ77-style compressor with hash-chain match finder",
    template=SOURCE,
    scales={
        "tiny": {"n": 2000, "seed": 99173},
        "small": {"n": 12000, "seed": 99173},
        "ref": {"n": 60000, "seed": 99173},
    },
)
