"""lexer — a tokenizer state machine over synthetic program text.

Models front-end scanning (SPECint ``gcc``'s lexer): character-class
if-ladders whose outcomes are strongly correlated within a token
(identifier and number runs), comment skipping with an inner loop, and a
rare bad-character path.
"""

from repro.workloads.base import Workload

SOURCE = """
global text[$n];
global counts[8];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

// Character classes: 0 space, 1..26 letters, 27..36 digits,
// 37 '+', 38 '(', 39 ')', 40 '#' comment-to-eol, 41 newline, 42 junk.
func main() {
    var i = 0;
    var seed = $seed;
    var r = 0;
    var run = 0;
    var cls = 0;
    while (i < $n) {
        if (run > 0) {
            // continue the current identifier/number run
            seed = lcg(seed);
            if (cls == 1) { text[i] = 1 + seed % 26; }
            else { text[i] = 27 + seed % 10; }
            run = run - 1;
        } else {
            seed = lcg(seed);
            r = seed % 100;
            if (r < 20) { text[i] = 0; }
            else { if (r < 55) {
                cls = 1;
                run = 2 + seed % 6;
                text[i] = 1 + seed % 26;
            } else { if (r < 75) {
                cls = 2;
                run = 1 + seed % 4;
                text[i] = 27 + seed % 10;
            } else { if (r < 85) { text[i] = 37; }
            else { if (r < 90) { text[i] = 38; }
            else { if (r < 95) { text[i] = 39; }
            else { if (r < 97) { text[i] = 40; }
            else { if (r < 99) { text[i] = 41; }
            else { text[i] = 42; } } } } } } } }
        }
        i = i + 1;
    }

    var pos = 0;
    var c = 0;
    var idents = 0;
    var numbers = 0;
    var ops = 0;
    var parens = 0;
    var comments = 0;
    var bad = 0;
    var depth = 0;
    var maxdepth = 0;
    while (pos < $n) {
        c = text[pos];
        if (c == 0 || c == 41) {
            pos = pos + 1;
            continue;
        }
        if (c >= 1 && c <= 26) {
            idents = idents + 1;
            while (pos < $n && text[pos] >= 1 && text[pos] <= 26) {
                pos = pos + 1;
            }
            counts[1] = counts[1] + 1;
            continue;
        }
        if (c >= 27 && c <= 36) {
            numbers = numbers + 1;
            while (pos < $n && text[pos] >= 27 && text[pos] <= 36) {
                pos = pos + 1;
            }
            counts[2] = counts[2] + 1;
            continue;
        }
        if (c == 37) {
            ops = ops + 1;
            pos = pos + 1;
            continue;
        }
        if (c == 38 || c == 39) {
            parens = parens + 1;
            if (c == 38) { depth = depth + 1; }
            else { if (depth > 0) { depth = depth - 1; } }
            if (depth > maxdepth) { maxdepth = depth; }
            pos = pos + 1;
            continue;
        }
        if (c == 40) {
            comments = comments + 1;
            while (pos < $n && text[pos] != 41) {
                pos = pos + 1;
            }
            continue;
        }
        bad = bad + 1;   // cold error path
        pos = pos + 1;
    }
    return idents * 10007 + numbers * 101 + ops * 13 + parens * 7
         + comments * 3 + bad + maxdepth + counts[1] + counts[2];
}
"""

WORKLOAD = Workload(
    name="lexer",
    description="tokenizer state machine with correlated class ladders",
    template=SOURCE,
    scales={
        "tiny": {"n": 4000, "seed": 5551},
        "small": {"n": 30000, "seed": 5551},
        "ref": {"n": 180000, "seed": 5551},
    },
)
