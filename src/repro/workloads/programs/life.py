"""life — Conway's Game of Life on a torus.

Models stencil codes with rule-based updates: the neighbour-count rules
are correlated hammocks (alive & n==2|3 vs dead & n==3), strongly
correlated cell-to-cell — good if-conversion and history-predictor
material.
"""

from repro.workloads.base import Workload

SOURCE = """
global grid[$cells];
global next[$cells];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var w = $width;
    var h = $height;
    var i = 0;
    var seed = $seed;
    while (i < w * h) {
        seed = lcg(seed);
        if (seed % 100 < 35) { grid[i] = 1; } else { grid[i] = 0; }
        i = i + 1;
    }
    var gen = 0;
    var pop = 0;
    var x = 0;
    var y = 0;
    var n = 0;
    var xm = 0; var xp = 0; var ym = 0; var yp = 0;
    var alive = 0;
    var idx = 0;
    while (gen < $gens) {
        y = 0;
        while (y < h) {
            ym = y - 1; if (ym < 0) { ym = h - 1; }
            yp = y + 1; if (yp >= h) { yp = 0; }
            x = 0;
            while (x < w) {
                xm = x - 1; if (xm < 0) { xm = w - 1; }
                xp = x + 1; if (xp >= w) { xp = 0; }
                n = grid[ym * w + xm] + grid[ym * w + x] + grid[ym * w + xp]
                  + grid[y * w + xm] + grid[y * w + xp]
                  + grid[yp * w + xm] + grid[yp * w + x] + grid[yp * w + xp];
                idx = y * w + x;
                alive = grid[idx];
                if (alive == 1) {
                    if (n == 2 || n == 3) { next[idx] = 1; }
                    else { next[idx] = 0; }
                } else {
                    if (n == 3) { next[idx] = 1; }
                    else { next[idx] = 0; }
                }
                x = x + 1;
            }
            y = y + 1;
        }
        i = 0;
        pop = 0;
        while (i < w * h) {
            grid[i] = next[i];
            pop = pop + grid[i];
            i = i + 1;
        }
        gen = gen + 1;
    }
    var check = 0;
    i = 0;
    while (i < w * h) {
        check = (check * 3 + grid[i]) % 1000000007;
        i = i + 1;
    }
    return check + pop;
}
"""

WORKLOAD = Workload(
    name="life",
    description="Game of Life stencil with correlated rule hammocks",
    template=SOURCE,
    scales={
        "tiny": {"width": 16, "height": 12, "cells": 192, "gens": 4,
                 "seed": 777},
        "small": {"width": 32, "height": 24, "cells": 768, "gens": 8,
                  "seed": 777},
        "ref": {"width": 64, "height": 48, "cells": 3072, "gens": 16,
                "seed": 777},
    },
)
