"""grep — substring search plus character-class scanning.

Models text-processing kernels (SPECint ``gcc``'s lexing, ``perl``'s
matching): the inner compare loop exits early on first mismatch (heavily
biased, history-predictable), and per-character class tests form
correlated if-ladders.
"""

from repro.workloads.base import Workload

SOURCE = """
global text[$n];
global pattern[8];
global freq[32];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func match_at(pos, plen) {
    var k = 0;
    while (k < plen) {
        if (text[pos + k] != pattern[k]) {
            return 0;
        }
        k = k + 1;
    }
    return 1;
}

func main() {
    var i = 0;
    var seed = $seed;
    var c = 0;
    while (i < $n) {
        seed = lcg(seed);
        c = seed % 32;
        // Make a few characters much more common, like real text.
        if (c > 20) { c = c % 8; }
        text[i] = c;
        i = i + 1;
    }
    // Plant the pattern at deterministic spots so matches exist.
    pattern[0] = 5; pattern[1] = 2; pattern[2] = 7; pattern[3] = 1;
    pattern[4] = 5; pattern[5] = 0; pattern[6] = 3; pattern[7] = 6;
    i = 400;
    while (i + 8 < $n) {
        var k = 0;
        while (k < 8) { text[i + k] = pattern[k]; k = k + 1; }
        i = i + $stride;
    }

    var found = 0;
    var vowels = 0;
    var digits = 0;
    var rare = 0;
    var pos = 0;
    while (pos + 8 <= $n) {
        c = text[pos];
        // Cheap first-character filter before the full compare.
        if (c == 5) {
            if (match_at(pos, 8) == 1) {
                found = found + 1;
                pos = pos + 7;
            }
        }
        if (c == 0 || c == 4 || c == 8) {
            vowels = vowels + 1;
        } else {
            if (c >= 16 && c < 26) {
                digits = digits + 1;
            }
        }
        if (c == 31) {
            rare = rare + 1;   // cold path
        }
        freq[c] = freq[c] + 1;
        pos = pos + 1;
    }
    var check = 0;
    i = 0;
    while (i < 32) {
        check = (check * 37 + freq[i]) % 1000000007;
        i = i + 1;
    }
    return check + found * 1000 + vowels + digits * 3 + rare * 7;
}
"""

WORKLOAD = Workload(
    name="grep",
    description="substring search with early-exit compare loop",
    template=SOURCE,
    scales={
        "tiny": {"n": 3000, "seed": 4242, "stride": 377},
        "small": {"n": 20000, "seed": 4242, "stride": 377},
        "ref": {"n": 120000, "seed": 4242, "stride": 377},
    },
)
