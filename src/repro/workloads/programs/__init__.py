"""Benchmark program definitions, one module per workload."""
