"""expr — a stack-based bytecode interpreter.

Models interpreter dispatch (SPECint ``li``/``perl``): an 8-way opcode
if-ladder whose outcome pattern follows the (synthetic) program text —
exactly the correlated branch population global-history predictors and
the predicate global-update mechanism feed on.
"""

from repro.workloads.base import Workload

SOURCE = """
global code[$proglen];
global stack[64];
global mem[16];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var i = 0;
    var seed = $seed;
    var op = 0;
    // Generate a bytecode program; bias toward push/add like real code.
    while (i < $proglen) {
        seed = lcg(seed);
        op = seed % 100;
        if (op < 30) { code[i] = 0; }        // PUSHC
        else if (op < 50) { code[i] = 1; }   // LOAD
        else if (op < 65) { code[i] = 2; }   // STORE
        else if (op < 80) { code[i] = 3; }   // ADD
        else if (op < 88) { code[i] = 4; }   // SUB
        else if (op < 94) { code[i] = 5; }   // MUL
        else if (op < 97) { code[i] = 6; }   // DUP
        else { code[i] = 7; }                // JNZ-back (rare)
        i = i + 1;
    }
    i = 0;
    while (i < 16) { mem[i] = i * 3 + 1; i = i + 1; }

    var sp = 0;
    var pc = 0;
    var steps = 0;
    var a = 0;
    var b = 0;
    var acc = 0;
    while (steps < $steps) {
        if (pc >= $proglen) { pc = 0; }
        op = code[pc];
        pc = pc + 1;
        steps = steps + 1;
        if (op == 0) {
            if (sp < 63) { stack[sp] = pc * 17 % 256; sp = sp + 1; }
        } else if (op == 1) {
            if (sp < 63) { stack[sp] = mem[pc % 16]; sp = sp + 1; }
        } else if (op == 2) {
            if (sp > 0) { sp = sp - 1; mem[pc % 16] = stack[sp]; }
        } else if (op == 3) {
            if (sp > 1) {
                sp = sp - 1; a = stack[sp];
                b = stack[sp - 1];
                stack[sp - 1] = (a + b) % 65536;
            }
        } else if (op == 4) {
            if (sp > 1) {
                sp = sp - 1; a = stack[sp];
                b = stack[sp - 1];
                stack[sp - 1] = (b - a) % 65536;
            }
        } else if (op == 5) {
            if (sp > 1) {
                sp = sp - 1; a = stack[sp];
                b = stack[sp - 1];
                stack[sp - 1] = a * b % 65536;
            }
        } else if (op == 6) {
            if (sp > 0 && sp < 63) { stack[sp] = stack[sp - 1]; sp = sp + 1; }
        } else {
            // JNZ: jump back a little if top of stack is nonzero (rare op)
            if (sp > 0) {
                sp = sp - 1;
                if (stack[sp] % 5 != 0) {
                    pc = pc - pc % 7;
                }
            }
        }
        if (sp > 0) { acc = (acc + stack[sp - 1]) % 1000000007; }
    }
    return acc * 4 + sp;
}
"""

WORKLOAD = Workload(
    name="expr",
    description="stack bytecode interpreter with 8-way dispatch ladder",
    template=SOURCE,
    scales={
        "tiny": {"proglen": 256, "steps": 3000, "seed": 2718},
        "small": {"proglen": 1024, "steps": 20000, "seed": 2718},
        "ref": {"proglen": 4096, "steps": 120000, "seed": 2718},
    },
)
