"""dijkstra — single-source shortest paths on a weighted grid graph.

Models pointer-chasing/graph kernels (SPECint ``mcf``-like): the
min-selection scan's "new best" branch decays from frequent to rare as
the frontier settles, and the relaxation test is data-dependent with
drifting bias.
"""

from repro.workloads.base import Workload

SOURCE = """
global weight[$cells];
global dist[$cells];
global visited[$cells];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func relax(u, v, w) {
    var cand = dist[u] + w;
    if (cand < dist[v]) {
        dist[v] = cand;
        return 1;
    }
    return 0;
}

func main() {
    var w = $width;
    var h = $height;
    var cells = w * h;
    var i = 0;
    var seed = $seed;
    while (i < cells) {
        seed = lcg(seed);
        weight[i] = seed % 9 + 1;
        dist[i] = 1000000000;
        visited[i] = 0;
        i = i + 1;
    }
    dist[0] = 0;
    var done = 0;
    var relaxed = 0;
    var u = 0;
    var best = 0;
    var x = 0;
    var y = 0;
    while (done < cells) {
        // pick the unvisited node with the smallest distance
        best = 1000000001;
        u = 0 - 1;
        i = 0;
        while (i < cells) {
            if (visited[i] == 0 && dist[i] < best) {
                best = dist[i];
                u = i;
            }
            i = i + 1;
        }
        if (u < 0) { break; }
        visited[u] = 1;
        x = u % w;
        y = u / w;
        if (x > 0)     { relaxed = relaxed + relax(u, u - 1, weight[u - 1]); }
        if (x < w - 1) { relaxed = relaxed + relax(u, u + 1, weight[u + 1]); }
        if (y > 0)     { relaxed = relaxed + relax(u, u - w, weight[u - w]); }
        if (y < h - 1) { relaxed = relaxed + relax(u, u + w, weight[u + w]); }
        done = done + 1;
    }
    var check = 0;
    i = 0;
    while (i < cells) {
        check = (check * 7 + dist[i]) % 1000000007;
        i = i + 1;
    }
    return check + relaxed;
}
"""

WORKLOAD = Workload(
    name="dijkstra",
    description="grid-graph shortest paths with min-scan and relaxation",
    template=SOURCE,
    scales={
        "tiny": {"width": 10, "height": 8, "cells": 80, "seed": 31415},
        "small": {"width": 20, "height": 16, "cells": 320, "seed": 31415},
        "ref": {"width": 32, "height": 28, "cells": 896, "seed": 31415},
    },
)
