"""The workload registry."""

from typing import Dict, List

from repro.workloads.base import Workload
from repro.workloads.programs import (
    bitmix,
    compress,
    crc,
    dijkstra,
    expr,
    grep,
    hashlookup,
    huffman,
    lexer,
    life,
    maze,
    mtf,
    nbody,
    parser,
    qsort,
)

_MODULES = (
    qsort,
    compress,
    grep,
    life,
    dijkstra,
    expr,
    crc,
    huffman,
    hashlookup,
    lexer,
    nbody,
    mtf,
    parser,
    maze,
    bitmix,
)

WORKLOADS: Dict[str, Workload] = {
    module.WORKLOAD.name: module.WORKLOAD for module in _MODULES
}

# Attach the golden return values (see repro.workloads.expected).
from repro.workloads.expected import EXPECTED  # noqa: E402

for _name, _values in EXPECTED.items():
    if _name in WORKLOADS:
        WORKLOADS[_name].expected.update(_values)


def workload_names() -> List[str]:
    """All workload names, in suite order."""
    return list(WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look a workload up by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(workload_names())}"
        ) from None


def all_workloads() -> List[Workload]:
    """Every workload in the suite."""
    return list(WORKLOADS.values())
