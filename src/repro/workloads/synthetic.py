"""Parametric synthetic workloads with *controlled* branch behaviour.

The benchmark suite tells you the techniques work on realistic code;
these generators tell you *why*, by making the relevant statistics
knobs:

* ``bias`` — P(condition true) of the hammock that gets if-converted
  (its compare becomes the predicate define the mechanisms feed on);
* ``noise`` — how loosely a later region-based branch tracks that
  predicate: its outcome is ``(r < bias) XOR noisebit``.  Crucially the
  noise bit is computed *arithmetically* (sign extraction, no compare),
  so it never enters the predicate-define stream: PGU sees the
  correlation source but not the noise, and its benefit must decay from
  near-perfect at ``noise = 0`` to nothing at ``noise = 50``
  (independence);
* ``spacing`` — straight-line filler statements inside the converted
  arms, between the predicate-defining compare and the correlated
  branch.  The branch's guard slice hoists above the filler, so the
  dynamic guard-to-branch distance grows with ``spacing`` and the
  squash filter switches on once it clears the pipeline's D.

Experiment E15 sweeps these.  The correlated branch stays a *branch*
because its arm contains a tiny loop (loops are never predicated) —
exactly the side-exit shape the paper studies.
"""

from repro.workloads.base import Workload

_TEMPLATE = """
global sink[64];

func lcg(s) {
    return (s * 1103515245 + 12345) % 2147483648;
}

func main() {
    var i = 0;
    var seed = $seed;
    var r = 0;
    var r2 = 0;
    var noisebit = 0;
    var cond = 0;
    var acc = 1;
    var j = 0;
    while (i < $iters) {
        seed = lcg(seed);
        r = seed % 100;
        seed = lcg(seed);
        r2 = seed % 100;
        // 1 iff r2 < noise, via sign extraction: no compare instruction,
        // hence invisible to the predicate-define stream.
        noisebit = ((r2 - $noise) >> 63) & 1;

        // The hammock: fully if-converted; its compare is the predicate
        // define the techniques feed on.  The filler gives the later
        // branch's hoisted guard its lead time.
        if (r < $bias) {
            cond = 1;
$then_filler
        } else {
            cond = 0;
$else_filler
        }

        // The correlated branch: outcome = cond XOR noisebit.  The arm's
        // inner loop keeps it un-predicable, so it stays a region-based
        // side exit.
        if ((cond + noisebit) % 2 == 1) {
            j = 0;
            while (j < 2) {
                sink[(acc + j) % 64 * ((acc + j) % 64 >= 0)] = acc;
                j = j + 1;
            }
        }
        i = i + 1;
    }
    var check = 0;
    i = 0;
    while (i < 64) { check = (check * 13 + sink[i]) % 1000000007; i = i + 1; }
    return check + acc % 1000000007;
}
"""

#: Largest spacing the default if-conversion heuristics still convert.
MAX_SPACING = 9


def _filler(count: int, salt: int) -> str:
    lines = [
        f"            acc = (acc * 3 + {17 * (k + 1) + salt}) % 65536;"
        for k in range(count)
    ]
    return "\n".join(lines)


def make_synthetic(
    bias: int = 50,
    noise: int = 0,
    spacing: int = 0,
    iters: int = 4000,
    seed: int = 90210,
) -> Workload:
    """Build a synthetic workload with the given branch statistics.

    Args:
        bias: percentage chance the hammock condition is true (0..100).
        noise: percentage chance the correlated branch's outcome is
            flipped relative to the hammock condition (0..50; 50 means
            statistically independent).
        spacing: filler statements per hammock arm (0..9; larger would
            stop the hammock from being if-converted under the default
            heuristics).
        iters: outer-loop trip count (dynamic size knob).
        seed: LCG seed.
    """
    if not 0 <= bias <= 100:
        raise ValueError("bias must be 0..100")
    if not 0 <= noise <= 50:
        raise ValueError("noise must be 0..50")
    if not 0 <= spacing <= MAX_SPACING:
        raise ValueError(f"spacing must be 0..{MAX_SPACING}")
    name = f"synthetic-b{bias}-n{noise}-s{spacing}"
    template = _TEMPLATE.replace(
        "$then_filler", _filler(spacing, salt=1)
    ).replace("$else_filler", _filler(spacing, salt=2))
    params = {"bias": bias, "noise": noise, "iters": iters, "seed": seed}
    return Workload(
        name=name,
        description=(
            f"controlled correlation: bias={bias}% noise={noise}% "
            f"spacing={spacing}"
        ),
        template=template,
        scales={
            "tiny": dict(params, iters=max(200, iters // 8)),
            "small": params,
            "ref": dict(params, iters=iters * 6),
        },
    )
