"""Reproduction of *Incorporating Predicate Information into Branch
Predictors* (B. Simon, B. Calder, J. Ferrante — HPCA-9, 2003).

The package provides, bottom-up:

* :mod:`repro.isa` — an EPIC-style predicated instruction set.
* :mod:`repro.lang` / :mod:`repro.compiler` — the ``minic`` language and
  an if-converting (hyperblock-forming) compiler targeting the ISA.
* :mod:`repro.engine` — an interpreter producing dynamic traces.
* :mod:`repro.trace` — packed trace containers with a disk cache.
* :mod:`repro.predictors` — bimodal/gshare/gselect/local/tournament
  predictors plus the paper's squash false-path filter and predicate
  global-update mechanisms.
* :mod:`repro.pipeline` — the front-end availability and cycle models.
* :mod:`repro.sim` — the trace-driven simulation driver and statistics.
* :mod:`repro.telemetry` — metrics, span tracing and sinks (see
  ``docs/observability.md``).
* :mod:`repro.workloads` — the deterministic benchmark suite.
* :mod:`repro.experiments` — one module per reproduced table/figure.

Quickstart::

    from repro.workloads import get_workload
    from repro.sim import SimOptions, simulate
    from repro.predictors import PGUConfig, SFPConfig, make_predictor

    trace = get_workload("qsort").trace(scale="small", hyperblocks=True)
    result = simulate(
        trace,
        make_predictor("gshare", entries=4096),
        SimOptions(sfp=SFPConfig(), pgu=PGUConfig()),
    )
    print(result.misprediction_rate)
"""

__version__ = "1.0.0"


def repro_version() -> str:
    """The installed package version, falling back to ``__version__``.

    ``PYTHONPATH=src`` runs (CI, dev checkouts) have no installed
    distribution metadata; the module constant keeps RunRecords and
    JSONL headers stamped either way.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
        return version("repro")
    except (ImportError, PackageNotFoundError):
        return __version__


__all__ = ["__version__", "repro_version"]
