"""Job execution: the worker half of the daemon.

:func:`execute_job` is a plain picklable function the server submits to
its persistent :class:`~concurrent.futures.ProcessPoolExecutor` (or, in
``--workers 0`` inline mode, to a thread).  It replays a canonical job
spec through the existing simulate/sweep/profile machinery and returns
the *payload metrics* — exactly the flat dict a ``--record``-ed CLI run
would have written — plus the worker's telemetry registry, which the
server merges so daemon-side ``sim.*``/``sweep.*`` counters stay
comparable with the serial harness.

Warm state amortized across requests, per worker process:

* traces are fetched through the shared on-disk
  :class:`~repro.trace.TraceCache` (cross-process warmth) *and* memoized
  decoded in :data:`_TRACE_MEMO` (per-worker warmth — repeat requests
  skip the npz decode entirely);
* the fast-core replay-plan cache inside :mod:`repro.sim.fastcore`
  persists with the process, so pre-decoded plans are reused too.

Core resolution (the ``--core`` satellite): the *server* resolves the
knob once at startup — argument > ambient ``use_core`` > ``$REPRO_SIM_CORE``
— and ships the resolved name both through the pool initializer (which
pins ``$REPRO_SIM_CORE`` in the worker, so any nested resolution agrees)
and as an explicit argument to every :func:`execute_job` call, mirroring
how the sweep engine threads the parent's resolution into its workers.
"""

import os
import time
from contextlib import ExitStack
from typing import Dict, Optional, Tuple

from repro.profiler.collector import AggregatingCollector
from repro.profiler.spec import ProfileSpec
from repro.runstore.record import metrics_from_sim_result
from repro.serve.protocol import build_options, build_predictor
from repro.sim.core import CORE_ENV
from repro.sim.driver import simulate
from repro.sim.sweep import ParallelSweepRunner
from repro.telemetry import MetricsRegistry, span, tracing, use_registry
from repro.trace.container import Trace
from repro.workloads import get_workload

#: Per-worker decoded-trace memo: (workload, scale, hyperblocks) -> Trace.
_TRACE_MEMO: Dict[Tuple[str, str, bool], Trace] = {}

#: Memo bound; tiny/small traces are a few MB so this stays modest.
_TRACE_MEMO_MAX = 32


def init_worker(core: str) -> None:
    """Pool initializer: pin the daemon's resolved core in the worker."""
    os.environ[CORE_ENV] = core


def _trace(workload: str, scale: str, baseline: bool) -> Trace:
    key = (workload, scale, not baseline)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        with span("serve-trace-load", workload=workload, scale=scale):
            trace = get_workload(workload).trace(
                scale=scale, hyperblocks=not baseline
            )
        if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = trace
    return trace


def _exec_simulate(spec: dict, core: str) -> Dict[str, float]:
    trace = _trace(spec["workload"], spec["scale"], spec["baseline"])
    result = simulate(
        trace, build_predictor(spec), build_options(spec), core=core
    )
    # Same shape as cli._cmd_simulate's recorder.add_sim_result.
    return metrics_from_sim_result(result, prefix=spec["workload"])


def _exec_sweep(spec: dict, core: str) -> Dict[str, float]:
    traces = {
        name: _trace(name, spec["scale"], spec["baseline"])
        for name in spec["workloads"]
    }
    factories = {}
    for predictor in spec["predictors"]:
        label = build_predictor(
            {"predictor": predictor["name"],
             "entries": predictor["entries"]}
        ).describe()
        factories[label] = (
            lambda p=predictor: build_predictor(
                {"predictor": p["name"], "entries": p["entries"]}
            )
        )
    grid = [build_options(options) for options in spec["options"]]
    # One job occupies one pool worker, so the grid runs serially here
    # (workers=1) through the standard runner — canonical point order,
    # deterministic merged telemetry, identical to the CLI sweep path.
    runner = ParallelSweepRunner(workers=1, core=core)
    results = runner.run(traces, factories, grid)
    metrics: Dict[str, float] = {}
    for result in results:
        prefix = (
            f"{result.workload}.{result.predictor}."
            f"{result.options.describe()}"
        )
        metrics.update(metrics_from_sim_result(result, prefix=prefix))
    return metrics


def _exec_profile(spec: dict, core: str) -> Dict[str, float]:
    trace = _trace(spec["workload"], spec["scale"], spec["baseline"])
    profile = ProfileSpec(rate=spec["rate"], seed=spec["seed"])
    collector = AggregatingCollector(profile, workload=spec["workload"])
    # Collectors force the object core inside simulate(); the knob is
    # still passed so the envelope reflects the daemon's configuration.
    result = simulate(
        trace, build_predictor(spec), build_options(spec),
        collector=collector, core=core,
    )
    metrics = metrics_from_sim_result(result, prefix=spec["workload"])
    aggregator = collector.aggregator
    totals = aggregator.totals()
    metrics.update({
        "profile.events": float(totals["events"]),
        "profile.mispredictions": float(totals["mispredictions"]),
        "profile.filtered": float(totals["filtered"]),
        "profile.static_sites": float(totals["static_sites"]),
        "profile.h2p_90": float(aggregator.h2p_count(0.9)),
    })
    for rank, record in enumerate(aggregator.top_branches(5), start=1):
        head = f"profile.top{rank:02d}"
        metrics[f"{head}.pc"] = float(record.pc)
        metrics[f"{head}.mispredictions"] = float(
            record.mispredictions
        )
    return metrics


_EXECUTORS = {
    "simulate": _exec_simulate,
    "sweep": _exec_sweep,
    "profile": _exec_profile,
}


def execute_job(spec: dict, core: Optional[str] = None,
                traceparent: Optional[str] = None) -> dict:
    """Run one canonical job spec; returns metrics + worker telemetry.

    ``core`` is the server's resolved knob, passed explicitly exactly
    like the sweep parent does for its workers; ``None`` falls back to
    the worker's pinned ``$REPRO_SIM_CORE`` (set by :func:`init_worker`)
    via the normal resolution inside :func:`simulate`.

    The job runs under a fresh :class:`MetricsRegistry` which rides back
    in the return value (registries pickle), so the server can merge
    worker counters deterministically — the same protocol the sweep
    engine uses for its points.

    ``traceparent`` (the server's ``serve.execute`` span) turns tracing
    on for the job: the ``serve-job`` span and everything under it —
    trace loads, ``sim.driver``, sweep points — link into the request's
    trace, and the records ride back in ``"spans"`` (a pickled
    :class:`~repro.telemetry.SpanCollector`), mirroring the registry.
    """
    start = time.perf_counter()
    with ExitStack() as stack:
        spans_out = None
        if traceparent is not None:
            spans_out = tracing.SpanCollector()
            stack.enter_context(tracing.use_tracing(True))
            stack.enter_context(tracing.use_collector(spans_out))
            stack.enter_context(tracing.use_context(
                tracing.from_traceparent(traceparent)
            ))
        registry = stack.enter_context(use_registry(MetricsRegistry()))
        with span("serve-job", op=spec["op"]):
            metrics = _EXECUTORS[spec["op"]](spec, core)
    return {
        "metrics": metrics,
        "registry": registry,
        "seconds": time.perf_counter() - start,
        "spans": spans_out,
    }
