"""The asyncio HTTP/JSON daemon: prediction-as-a-service.

One long-running process (``repro serve``) owns the expensive state —
a warm trace cache, a persistent process pool, the run-history store —
and amortizes it across every request:

* ``POST /v1/simulate`` / ``/v1/sweep`` / ``/v1/profile`` — canonicalize
  the body (:mod:`repro.serve.protocol`), look the request key up in the
  :class:`~repro.runstore.RunStore` (memoization: an identical request
  is a store lookup, not a re-simulation), otherwise admit a job into
  the priority queue (:mod:`repro.serve.jobqueue`).  ``"wait": true``
  (default) blocks until the job finishes; ``false`` returns 202 + a job
  id to poll.  Admission past ``--queue-depth`` is refused with 429.
* ``GET /v1/jobs/<id>`` — job status / result; ``DELETE`` cancels.
* ``GET /v1/runs/<run_id>`` — the full stored record.
* ``GET /v1/healthz`` / ``GET /v1/metrics`` — liveness and the live
  ``serve.*`` telemetry snapshot.

The HTTP layer is a deliberately small stdlib-only HTTP/1.1
implementation over ``asyncio.start_server`` — keep-alive,
Content-Length framing, bounded request sizes — because the service
surface is six JSON routes, not the open web.

Concurrency model: the event loop owns all bookkeeping (queue, memo
index, telemetry); simulation runs in ``--workers`` pool processes (or
an inline thread with ``--workers 0``).  Identical in-flight requests
coalesce onto one job.  Finished jobs publish their RunRecord with the
store's ``if_exists="skip"`` path, so even racing daemons sharing one
store write each result exactly once.
"""

import asyncio
import json
import os
import platform
import socket
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from repro import repro_version
from repro.runstore import RunRecord, RunStore
from repro.runstore.record import git_state
from repro.serve import jobqueue
from repro.serve.executor import execute_job, init_worker
from repro.serve.jobqueue import Job, JobQueue, QueueFull
from repro.serve.protocol import (
    OPS,
    JobSpec,
    ProtocolError,
    canonicalize,
    job_response,
    parse_controls,
)
from repro.sim.core import resolve_core
from repro.telemetry import MetricsRegistry, render_prometheus, tracing
from repro.telemetry.traceview import render_trace

#: Hard caps on the HTTP parser, defense against garbage input.
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 64
MAX_HEADER_LINE = 8192

#: How many finished jobs to keep around for ``GET /v1/jobs/<id>``.
FINISHED_JOBS_KEPT = 1024

#: How many distinct traces the daemon keeps for ``GET /v1/traces``
#: (oldest dropped first; a ``--trace-log`` file keeps everything).
TRACES_KEPT = 256


@dataclass
class ServeConfig:
    """Everything ``repro serve`` accepts on the command line."""

    host: str = "127.0.0.1"
    port: int = 8023  #: 0 = ephemeral (the bound port is reported)
    workers: int = 1  #: pool processes; 0 = inline thread (tests/dev)
    core: Optional[str] = None  #: simulation core knob (resolved once)
    store: Optional[str] = None  #: run-store root (memoization cache)
    max_queue_depth: int = 256
    job_timeout: float = 600.0  #: per-job execution ceiling, seconds
    idle_timeout: float = 60.0  #: keep-alive connection idle ceiling
    max_body_bytes: int = 1 << 20
    mp_context: Optional[str] = None  #: multiprocessing start method
    tracing: bool = False  #: record request/queue/worker trace spans
    trace_log: Optional[str] = None  #: append span JSONL here
    #: dump the span tree of any request slower than this (seconds)
    slow_request_seconds: Optional[float] = None


class ServeServer:
    """One daemon instance; start/stop from an asyncio event loop."""

    def __init__(self, config: ServeConfig,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config
        self.registry = registry or MetricsRegistry()
        self.core = resolve_core(config.core)
        self.store = RunStore(config.store)
        self.queue = JobQueue(max_depth=config.max_queue_depth)
        self.jobs: "Dict[str, Job]" = {}
        #: request_key -> run_id for every stored record (memo index)
        self.memo: Dict[str, str] = {}
        #: request_key -> not-yet-finished Job (request coalescing)
        self.inflight: Dict[str, Job] = {}
        self.started_at = 0.0
        #: git envelope, computed once — records are published per miss
        #: and must not each pay two subprocess calls
        self._git = git_state()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._dispatchers = []
        self._connections = set()
        self._paused: Optional[asyncio.Event] = None
        #: tracing is on via the config knob or the ambient flag
        self.tracing = config.tracing or tracing.tracing_enabled()
        #: trace_id -> finished span records, oldest trace evicted first
        self._trace_store: "OrderedDict[str, List[dict]]" = OrderedDict()
        self._trace_file = None
        self._busy = 0  #: jobs currently occupying pool workers

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self.started_at = time.monotonic()
        if self.tracing and self.config.trace_log:
            self._trace_file = open(self.config.trace_log, "a")
        self._index_store()
        self._pool = self._make_pool()
        self._paused = asyncio.Event()
        self._paused.set()  # not paused
        lanes = max(1, self.config.workers)
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(lanes)
        ]
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections) + self._dispatchers:
            task.cancel()
        for task in list(self._connections) + self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._trace_file is not None:
            self._trace_file.close()
            self._trace_file = None

    @property
    def port(self) -> int:
        """The actually bound port (after :meth:`start`)."""
        return self._server.sockets[0].getsockname()[1]

    def pause(self) -> None:
        """Hold dispatch (jobs queue but do not execute) — test seam."""
        self._paused.clear()

    def resume(self) -> None:
        self._paused.set()

    def _make_pool(self):
        if self.config.workers == 0:
            # Inline mode: jobs run on one thread in this process.  The
            # executor installs a fresh thread-local registry per job,
            # so worker counters never collide with the server's.
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serve-inline"
            )
        mp_context = None
        if self.config.mp_context:
            import multiprocessing

            mp_context = multiprocessing.get_context(
                self.config.mp_context
            )
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            mp_context=mp_context,
            initializer=init_worker,
            initargs=(self.core,),
        )

    def _index_store(self) -> None:
        """Prime the memo index from every record already on disk."""
        for record in self.store.records():
            self.memo[record.request_key()] = record.run_id
        self._gauge("serve.memo_entries", len(self.memo))

    # -- telemetry helpers -------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def _observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    # -- tracing helpers ---------------------------------------------------
    #
    # The daemon records spans with *explicit* contexts, never the
    # thread-local frame stack: interleaved coroutines share one event
    # loop thread, so a stack would braid unrelated requests together.
    # Span ids stay derived (child_context), so the tree is still
    # deterministic given the request's root context.

    def _record_trace_span(self, record: dict) -> None:
        trace_id = record["trace_id"]
        store = self._trace_store
        if trace_id not in store and len(store) >= TRACES_KEPT:
            store.popitem(last=False)
        store.setdefault(trace_id, []).append(record)
        if self._trace_file is not None:
            self._trace_file.write(
                json.dumps(record, sort_keys=True) + "\n"
            )
            self._trace_file.flush()

    def _request_context(self, controls) -> "tracing.TraceContext":
        """The ``serve.request`` span context for one incoming request.

        A client-supplied ``traceparent`` links the request under the
        caller's trace; otherwise a fresh trace is rooted.
        """
        if controls.traceparent:
            parent = tracing.from_traceparent(controls.traceparent)
            return tracing.child_context(parent, "serve.request", 0)
        trace_id = tracing.new_trace_id()
        return tracing.TraceContext(
            trace_id=trace_id,
            span_id=tracing.derive_span_id(
                trace_id, "", "serve.request", 0
            ),
        )

    def _log_slow_request(self, ctx, op: str, seconds: float) -> None:
        self._count("serve.slow_requests")
        tree = render_trace(
            self._trace_store.get(ctx.trace_id, []),
            trace_id=ctx.trace_id,
        )
        print(
            f"repro serve: SLOW {op} request took {seconds:.3f}s "
            f"(threshold {self.config.slow_request_seconds:.3f}s), "
            f"trace {ctx.trace_id}:\n{tree}",
            file=sys.stderr, flush=True,
        )

    # -- job machinery -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            job = await self.queue.get()
            self._gauge("serve.queue_depth", self.queue.depth)
            await self._paused.wait()
            if job.state == jobqueue.CANCELLED:
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        job.state = jobqueue.RUNNING
        job.started_at = time.monotonic()
        self._observe("serve.queue_wait_seconds", job.queue_seconds)
        ctx = job.trace_ctx
        exec_ctx = None
        traceparent = None
        if ctx is not None:
            # The queue wait is an async phase: its span is recorded
            # here, at dispatch, with the admission wall time as start.
            self._record_trace_span(tracing.make_record(
                tracing.child_context(ctx, "serve.queue", 0),
                "serve.queue", job.enqueued_wall, job.queue_seconds,
                {"job_id": job.id, "priority": job.controls.priority},
            ))
            exec_ctx = tracing.child_context(ctx, "serve.execute", 1)
            traceparent = exec_ctx.to_traceparent()
        loop = asyncio.get_running_loop()
        exec_wall = time.time()
        exec_start = time.perf_counter()

        def record_execute(error: str = "") -> None:
            if exec_ctx is None:
                return
            attrs = {"job_id": job.id, "op": job.spec.op}
            if error:
                attrs["error"] = error
            self._record_trace_span(tracing.make_record(
                exec_ctx, "serve.execute", exec_wall,
                time.perf_counter() - exec_start, attrs,
            ))

        self._busy += 1
        self._gauge("serve.workers_busy", self._busy)
        try:
            out = await asyncio.wait_for(
                loop.run_in_executor(
                    self._pool, execute_job, job.spec.spec, self.core,
                    traceparent,
                ),
                timeout=self.config.job_timeout,
            )
        except asyncio.TimeoutError:
            record_execute(error="job_timeout")
            self._finish_job(
                job, error="job execution timed out after "
                f"{self.config.job_timeout:.0f}s",
                error_code="job_timeout",
            )
            return
        except Exception as exc:  # worker died, pickling, bug...
            record_execute(error=type(exc).__name__)
            self._finish_job(
                job, error=f"{type(exc).__name__}: {exc}",
                error_code="execution_failed",
            )
            return
        finally:
            self._busy -= 1
            self._gauge("serve.workers_busy", self._busy)
        record_execute()
        if exec_ctx is not None and out.get("spans") is not None:
            for span_record in out["spans"].records:
                self._record_trace_span(span_record)
        if job.state == jobqueue.CANCELLED:
            return  # result discarded; record intentionally unpublished
        record = self._publish(job.spec, out)
        self.registry.merge(out["registry"])
        body = job_response(
            job.spec.stub, record.metrics, record.run_id,
            cached=False, sim_core=self.core,
        )
        job.result = body
        job.run_id = record.run_id
        self._finish_job(job)

    def _publish(self, spec: JobSpec, out: dict) -> RunRecord:
        """Seal and store the finished job's RunRecord (skip-if-exists)."""
        record = RunRecord(
            kind=spec.kind, label=spec.label,
            scale=spec.stub["scale"],
            compile_config=spec.stub["compile_config"],
            matrix=spec.stub["matrix"],
            metrics=out["metrics"],
            command=f"serve {spec.op}",
            wall_seconds=out["seconds"],
            sim_core=self.core,
            telemetry=out["registry"].snapshot(),
        )
        record.git = dict(self._git)
        record.seal()
        self.store.add(record, if_exists="skip")
        self.memo[spec.request_key] = record.run_id
        self._gauge("serve.memo_entries", len(self.memo))
        return record

    def _finish_job(self, job: Job, error: str = "",
                    error_code: str = "") -> None:
        job.finished_at = time.monotonic()
        if error:
            job.state = jobqueue.FAILED
            job.error = error
            job.error_code = error_code
            self._count("serve.jobs_failed")
        elif job.state != jobqueue.CANCELLED:
            job.state = jobqueue.DONE
            self._count("serve.jobs_completed")
            self._observe("serve.exec_seconds", job.exec_seconds)
        self.inflight.pop(job.spec.request_key, None)
        job.done_event.set()
        self._prune_jobs()

    def _prune_jobs(self) -> None:
        # Insertion order is creation order, so the slice drops oldest.
        finished = [
            job_id for job_id, job in self.jobs.items()
            if job.state in jobqueue.TERMINAL and not job.waiters
        ]
        excess = len(finished) - FINISHED_JOBS_KEPT
        for job_id in finished[:max(0, excess)]:
            del self.jobs[job_id]

    # -- request handling --------------------------------------------------

    async def _handle_post(self, op: str, body: dict,
                           peer: str) -> Tuple[int, dict]:
        spec = canonicalize(op, body)
        controls = parse_controls(body)
        if not self.tracing:
            return await self._handle_post_inner(
                op, spec, controls, peer, None
            )
        ctx = self._request_context(controls)
        wall = time.time()
        start = time.perf_counter()
        try:
            return await self._handle_post_inner(
                op, spec, controls, peer, ctx
            )
        finally:
            seconds = time.perf_counter() - start
            self._record_trace_span(tracing.make_record(
                ctx, "serve.request", wall, seconds,
                {"op": op, "client": controls.client or peer},
            ))
            if (self.config.slow_request_seconds is not None
                    and seconds >= self.config.slow_request_seconds):
                self._log_slow_request(ctx, op, seconds)

    async def _handle_post_inner(self, op, spec, controls, peer,
                                 ctx) -> Tuple[int, dict]:
        self._count(f"serve.requests.{op}")

        # Memoization: identical request -> store lookup, no simulation.
        run_id = self.memo.get(spec.request_key)
        if run_id is not None:
            record = self.store.find(run_id)
            if record is not None:
                self._count("serve.cache_hit")
                return 200, job_response(
                    spec.stub, record.metrics, record.run_id,
                    cached=True, sim_core=record.sim_core or self.core,
                )
            # Record gc'd behind our back: drop the stale index entry.
            del self.memo[spec.request_key]
        self._count("serve.cache_miss")

        # Coalescing: a second identical request while the first is
        # still queued/running shares its job instead of re-enqueueing.
        job = self.inflight.get(spec.request_key)
        if job is None:
            job = Job(
                id=self.queue.next_id(), spec=spec, controls=controls,
                client=controls.client or peer, trace_ctx=ctx,
            )
            try:
                self.queue.put(job)
            except QueueFull:
                self._count("serve.rejected_queue_full")
                return 429, {
                    "error": {
                        "code": "queue_full",
                        "message": (
                            f"job queue is at capacity "
                            f"({self.queue.max_depth}); retry later"
                        ),
                    },
                    "status": 429,
                    "retry_after": 1,
                }
            self.jobs[job.id] = job
            self.inflight[spec.request_key] = job
            self._count("serve.jobs_enqueued")
            self._gauge("serve.queue_depth", self.queue.depth)
        else:
            self._count("serve.coalesced")

        if not controls.wait:
            return 202, {
                "status": "accepted", "job_id": job.id,
                "state": job.state, "request_key": spec.request_key,
            }

        job.waiters += 1
        timeout = controls.timeout or self.config.job_timeout + 5.0
        try:
            await asyncio.wait_for(job.done_event.wait(), timeout)
        except asyncio.TimeoutError:
            return 504, {
                "error": {
                    "code": "wait_timeout",
                    "message": (
                        f"job {job.id} still {job.state} after "
                        f"{timeout:.1f}s; poll /v1/jobs/{job.id}"
                    ),
                },
                "status": 504, "job_id": job.id,
            }
        finally:
            job.waiters -= 1
        return self._job_outcome(job)

    def _job_outcome(self, job: Job) -> Tuple[int, dict]:
        if job.state == jobqueue.DONE:
            return 200, job.result
        if job.state == jobqueue.CANCELLED:
            return 409, {
                "error": {"code": "cancelled",
                          "message": f"job {job.id} was cancelled"},
                "status": 409, "job_id": job.id,
            }
        return 500, {
            "error": {"code": job.error_code or "job_failed",
                      "message": job.error or "job failed"},
            "status": 500, "job_id": job.id,
        }

    def _handle_get_job(self, job_id: str) -> Tuple[int, dict]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, _error(404, "unknown_job",
                               f"no job {job_id!r}")
        return 200, job.describe()

    def _handle_cancel_job(self, job_id: str) -> Tuple[int, dict]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, _error(404, "unknown_job",
                               f"no job {job_id!r}")
        if job.state in jobqueue.TERMINAL:
            return 409, _error(
                409, "not_cancellable",
                f"job {job_id} already {job.state}",
            )
        if job.state == jobqueue.RUNNING:
            # Best effort: the pool task cannot be interrupted, but its
            # result is discarded and never published.
            job.state = jobqueue.CANCELLED
            job.finished_at = time.monotonic()
            self.inflight.pop(job.spec.request_key, None)
            job.done_event.set()
        else:
            self.queue.cancel(job)
            self.inflight.pop(job.spec.request_key, None)
            self._gauge("serve.queue_depth", self.queue.depth)
        self._count("serve.jobs_cancelled")
        return 200, {"job_id": job_id, "state": job.state}

    def _handle_get_run(self, run_id: str) -> Tuple[int, dict]:
        record = self.store.find(run_id)
        if record is None:
            return 404, _error(
                404, "unknown_run",
                f"no stored run {run_id!r} (store: {self.store.root})",
            )
        return 200, record.to_dict()

    def _handle_healthz(self) -> Tuple[int, dict]:
        # Build/identity fields (version/core/pid/host/python) are what
        # tell the daemons of a fleet apart; the rest is live state the
        # `repro top` dashboard polls.
        return 200, {
            "status": "ok",
            "version": repro_version(),
            "core": self.core,
            "workers": self.config.workers,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "python": platform.python_version(),
            "tracing": self.tracing,
            "uptime_seconds": round(
                time.monotonic() - self.started_at, 3
            ),
            "queue_depth": self.queue.depth,
            "queue_lanes": self.queue.lane_depths(),
            "busy_workers": self._busy,
            "inflight": len(self.inflight),
            "memo_entries": len(self.memo),
            "store": str(self.store.root),
        }

    def _handle_metrics(self, query: str) -> Tuple[int, object]:
        fmt = parse_qs(query).get("format", ["json"])[-1]
        if fmt == "prom":
            return 200, render_prometheus(self.registry.snapshot())
        if fmt != "json":
            return 400, _error(
                400, "unknown_format",
                f"unknown metrics format {fmt!r} (json or prom)",
            )
        return 200, self.registry.snapshot()

    def _handle_traces(self) -> Tuple[int, dict]:
        traces = []
        for trace_id, records in self._trace_store.items():
            traces.append({
                "trace_id": trace_id,
                "spans": len(records),
                "names": sorted({r["name"] for r in records}),
            })
        return 200, {"traces": traces, "kept": TRACES_KEPT}

    def _handle_get_trace(self, trace_id: str) -> Tuple[int, dict]:
        records = self._trace_store.get(trace_id)
        if records is None:
            return 404, _error(
                404, "unknown_trace",
                f"no trace {trace_id!r} (daemon keeps the last "
                f"{TRACES_KEPT})",
            )
        return 200, {
            "trace_id": trace_id,
            "spans": sorted(
                records, key=lambda r: (r["trace_id"], r["span_id"])
            ),
        }

    # -- HTTP layer --------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.config.idle_timeout,
                    )
                except asyncio.TimeoutError:
                    break
                except ProtocolError as exc:
                    # Unparseable framing: answer once, then drop the
                    # connection (we cannot trust the stream position).
                    self._count("serve.http_errors")
                    await self._write_response(
                        writer, exc.status, exc.to_dict(), False
                    )
                    break
                if request is None:
                    break
                method, path, headers, body, http10 = request
                started = time.perf_counter()
                keep_alive = (
                    not http10
                    and headers.get("connection", "") != "close"
                )
                try:
                    status, payload = await self._route(
                        method, path, body, writer
                    )
                except ProtocolError as exc:
                    status, payload = exc.status, exc.to_dict()
                    self._count("serve.http_errors")
                except Exception as exc:  # never leak a traceback
                    status, payload = 500, _error(
                        500, "internal_error",
                        f"{type(exc).__name__}: {exc}",
                    )
                    self._count("serve.http_errors")
                self._observe(
                    "serve.request_seconds",
                    time.perf_counter() - started,
                )
                await self._write_response(
                    writer, status, payload, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the connection open.  Finish the
            # task cleanly: asyncio.streams' connection_made callback
            # calls task.exception(), which *raises* on a task that
            # ends cancelled and would spam the loop's error handler.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    RuntimeError):
                pass

    async def _read_request(self, reader):
        """Parse one HTTP/1.x request; None on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            raise ProtocolError("request line too long", status=431,
                                code="request_too_large")
        try:
            method, target, version = (
                line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise ProtocolError("malformed request line",
                                code="bad_request") from None
        headers = {}
        for _ in range(MAX_HEADERS):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            if len(header) > MAX_HEADER_LINE:
                raise ProtocolError("header line too long", status=431,
                                    code="request_too_large")
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ProtocolError("too many headers", status=431,
                                code="request_too_large")
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                raise ProtocolError("bad Content-Length",
                                    code="bad_request") from None
            if length > self.config.max_body_bytes:
                raise ProtocolError(
                    f"body larger than {self.config.max_body_bytes} "
                    "bytes", status=413, code="body_too_large",
                )
            body = await reader.readexactly(length)
        return (
            method.upper(), target, headers, body,
            version.upper() == "HTTP/1.0",
        )

    async def _route(self, method, path, body, writer):
        path, _, query = path.partition("?")
        path = path.rstrip("/") or "/"
        parts = path.strip("/").split("/")
        if parts and parts[0] == "v1":
            parts = parts[1:]
        elif parts not in (["metrics"], ["healthz"]):
            # Scraper-friendly aliases: /metrics and /healthz work
            # without the /v1 prefix; everything else requires it.
            return 404, _error(404, "unknown_route",
                               f"no route {path!r}")
        if method == "GET":
            if parts == ["healthz"]:
                return self._handle_healthz()
            if parts == ["metrics"]:
                return self._handle_metrics(query)
            if parts == ["traces"]:
                return self._handle_traces()
            if len(parts) == 2 and parts[0] == "traces":
                return self._handle_get_trace(parts[1])
            if len(parts) == 2 and parts[0] == "jobs":
                return self._handle_get_job(parts[1])
            if len(parts) == 2 and parts[0] == "runs":
                return self._handle_get_run(parts[1])
        elif method == "POST":
            if len(parts) == 1 and parts[0] in OPS:
                peer = writer.get_extra_info("peername")
                peer = peer[0] if peer else "unknown"
                return await self._handle_post(
                    parts[0], _parse_json(body), peer
                )
            if (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "cancel"):
                return self._handle_cancel_job(parts[1])
        elif method == "DELETE":
            if len(parts) == 2 and parts[0] == "jobs":
                return self._handle_cancel_job(parts[1])
        else:
            return 405, _error(405, "method_not_allowed",
                               f"method {method} not allowed")
        return 404, _error(404, "unknown_route",
                           f"no route {method} {path!r}")

    async def _write_response(self, writer, status, payload,
                              keep_alive) -> None:
        if isinstance(payload, str):
            # Text payloads (Prometheus exposition) ship verbatim.
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, sort_keys=True).encode()
            content_type = "application/json"
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if status == 429:
            head += "Retry-After: 1\r\n"
        head += (
            f"Connection: {'keep-alive' if keep_alive else 'close'}"
            "\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 504: "Gateway Timeout",
}


def _error(status: int, code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message},
            "status": status}


def _parse_json(body: bytes) -> dict:
    if not body:
        raise ProtocolError("empty request body (expected JSON)",
                            code="bad_json")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON body: {exc}",
                            code="bad_json") from None


# -- running the daemon --------------------------------------------------------


async def _run_until_cancelled(server: ServeServer) -> None:
    await server.start()
    print(
        f"repro serve: listening on "
        f"http://{server.config.host}:{server.port} "
        f"(workers={server.config.workers}, core={server.core}, "
        f"store={server.store.root})",
        flush=True,
    )
    try:
        await asyncio.Event().wait()  # until cancelled
    finally:
        await server.stop()


def run_server(config: ServeConfig,
               registry: Optional[MetricsRegistry] = None) -> int:
    """Blocking entry point used by ``repro serve``; 0 on clean exit."""
    server = ServeServer(config, registry=registry)
    try:
        asyncio.run(_run_until_cancelled(server))
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
    return 0


class ServerThread:
    """A live daemon on a background thread — tests and benchmarks.

    ::

        with ServerThread(ServeConfig(port=0, workers=0)) as handle:
            client = ServeClient(port=handle.port)
            ...

    The event loop runs on the thread; ``call`` hops a coroutine over
    for the rare test that pokes server internals (pause/resume).
    """

    def __init__(self, config: ServeConfig,
                 registry: Optional[MetricsRegistry] = None):
        self.server = ServeServer(config, registry=registry)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("serve thread failed to start")
        return self

    def __exit__(self, *exc) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), loop
            ).result(timeout=30.0)
            loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=30.0)

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self.server.start())
        self._started.set()
        loop.run_forever()
        loop.close()

    async def _shutdown(self) -> None:
        await self.server.stop()

    @property
    def port(self) -> int:
        return self.server.port

    def call(self, coro):
        """Run a coroutine on the server loop; returns its result."""
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout=30.0)

    def pause(self) -> None:
        self._loop.call_soon_threadsafe(self.server.pause)

    def resume(self) -> None:
        self._loop.call_soon_threadsafe(self.server.resume)
