"""Request canonicalization: JSON bodies -> deterministic job specs.

The memoization contract of the service lives here.  An incoming
``POST /v1/simulate|sweep|profile`` body is validated and normalised
into a :class:`JobSpec` whose canonical ``spec`` dict is a pure function
of the *logical* request — field order, omitted defaults, duplicate or
re-ordered grid axes all collapse to the same spec.  From the spec the
protocol derives exactly the payload layer a ``--record``-ed CLI run
would write into the run-history store (same kind/label/scale/compile
config/matrix), so:

* ``request_key`` — the hash of that payload *minus metrics* — is
  identical between the daemon and the serial CLI for the same logical
  request, and an identical request short-circuits to a
  :class:`~repro.runstore.RunStore` lookup;
* the record a daemon miss eventually publishes is byte-identical
  (payload and hence ``run_id``) to the record ``repro simulate
  --record`` would have produced for the same request.

Validation failures raise :class:`ProtocolError` carrying the HTTP
status and a stable machine-readable ``code``; the server maps these
onto structured 4xx JSON bodies.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.predictors import (
    PGUConfig,
    SFPConfig,
    available_predictors,
    make_predictor,
)
from repro.profiler.spec import ProfileSpec
from repro.runstore.record import SCHEMA_VERSION, request_key
from repro.sim.driver import SimOptions
from repro.workloads import workload_names
from repro.workloads.base import SCALES

#: Operations the service exposes as ``POST /v1/<op>``.
OPS = ("simulate", "sweep", "profile")

#: Priority range: 0 is most urgent, 9 least; default mid-range.
PRIORITY_MIN, PRIORITY_MAX, PRIORITY_DEFAULT = 0, 9, 5

#: Upper bounds keeping a single request's work (and the canonical
#: matrix documents) small enough for an interactive service.
MAX_ENTRIES = 1 << 22
MAX_DISTANCE = 256
MAX_SWEEP_POINTS = 64
MAX_CLIENT_CHARS = 64


class ProtocolError(ValueError):
    """A request failed validation; carries the HTTP mapping."""

    def __init__(self, message: str, status: int = 400,
                 code: str = "bad_request"):
        super().__init__(message)
        self.status = status
        self.code = code

    def to_dict(self) -> dict:
        return {
            "error": {"code": self.code, "message": str(self)},
            "status": self.status,
        }


@dataclass(frozen=True)
class JobSpec:
    """One canonicalized request, ready to queue, execute and memoize."""

    op: str  #: "simulate" / "sweep" / "profile"
    spec: dict  #: canonical, JSON-plain, deterministic job description
    #: payload layer minus metrics — what the finished record's payload
    #: will be once the executor fills metrics in
    stub: dict
    request_key: str  #: hash of ``stub``; the memoization key
    kind: str  #: RunRecord kind the result is stored under
    label: str


# -- field extraction ---------------------------------------------------------


def _require_object(body, what="request body") -> dict:
    if not isinstance(body, dict):
        raise ProtocolError(
            f"{what} must be a JSON object, got "
            f"{type(body).__name__}"
        )
    return body


def _unknown_fields(body: dict, allowed) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ProtocolError(
            f"unknown field(s): {', '.join(unknown)}",
            code="unknown_field",
        )


def _string(body, name, default=None, choices=None, required=False):
    if name not in body:
        if required:
            raise ProtocolError(f"missing required field {name!r}",
                                code="missing_field")
        return default
    value = body[name]
    if not isinstance(value, str):
        raise ProtocolError(
            f"field {name!r} must be a string, got "
            f"{type(value).__name__}", code="bad_type",
        )
    if choices is not None and value not in choices:
        raise ProtocolError(
            f"field {name!r}: unknown value {value!r}; choose from "
            f"{', '.join(sorted(choices))}", code="unknown_value",
        )
    return value


def _int(body, name, default, low, high):
    if name not in body:
        return default
    value = body[name]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"field {name!r} must be an integer, got "
            f"{type(value).__name__}", code="bad_type",
        )
    if not low <= value <= high:
        raise ProtocolError(
            f"field {name!r} must be in [{low}, {high}], got {value}",
            code="out_of_range",
        )
    return value


def _bool(body, name, default=False):
    if name not in body:
        return default
    value = body[name]
    if not isinstance(value, bool):
        raise ProtocolError(
            f"field {name!r} must be a boolean, got "
            f"{type(value).__name__}", code="bad_type",
        )
    return value


def _number(body, name, default, low, high):
    if name not in body:
        return default
    value = body[name]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"field {name!r} must be a number, got "
            f"{type(value).__name__}", code="bad_type",
        )
    if not low <= value <= high:
        raise ProtocolError(
            f"field {name!r} must be in [{low}, {high}], got {value}",
            code="out_of_range",
        )
    return float(value)


def _workload(body, name="workload") -> str:
    value = _string(body, name, required=True)
    if value not in workload_names():
        raise ProtocolError(
            f"unknown workload {value!r}", status=404,
            code="unknown_workload",
        )
    return value


def _predictor_name(value: str) -> str:
    if value not in available_predictors():
        raise ProtocolError(
            f"unknown predictor {value!r}; available: "
            f"{', '.join(available_predictors())}", status=404,
            code="unknown_predictor",
        )
    return value


# -- queue/transport controls (shared by all ops) -----------------------------

#: Fields that steer queueing and response delivery, not job identity.
#: ``traceparent`` is a control, not an axis: two requests differing
#: only in trace context are the same logical request and must share a
#: request_key (and hence a memo entry / coalesced job).
CONTROL_FIELDS = ("priority", "client", "wait", "timeout",
                  "traceparent")


@dataclass(frozen=True)
class RequestControls:
    """Per-request queue/transport knobs (never part of the job key)."""

    priority: int = PRIORITY_DEFAULT
    client: str = ""
    wait: bool = True
    timeout: Optional[float] = None  #: max seconds to block with wait
    traceparent: str = ""  #: W3C trace context to link spans under


def parse_controls(body: dict) -> RequestControls:
    client = _string(body, "client", default="")
    if len(client) > MAX_CLIENT_CHARS:
        raise ProtocolError(
            f"field 'client' longer than {MAX_CLIENT_CHARS} chars",
            code="out_of_range",
        )
    traceparent = _string(body, "traceparent", default="")
    if traceparent:
        from repro.telemetry.tracing import from_traceparent

        try:
            from_traceparent(traceparent)
        except ValueError as exc:
            raise ProtocolError(str(exc), code="bad_traceparent") from None
    return RequestControls(
        priority=_int(body, "priority", PRIORITY_DEFAULT,
                      PRIORITY_MIN, PRIORITY_MAX),
        client=client,
        wait=_bool(body, "wait", True),
        timeout=_number(body, "timeout", None, 0.001, 3600.0),
        traceparent=traceparent,
    )


# -- canonical simulate/profile axes ------------------------------------------


def _sim_fields(body: dict) -> dict:
    """The (workload, predictor, frontend) axes shared by simulate and
    profile requests, canonicalized to plain JSON values."""
    return {
        "workload": _workload(body),
        "predictor": _predictor_name(
            _string(body, "predictor", default="gshare")
        ),
        "entries": _int(body, "entries", 4096, 1, MAX_ENTRIES),
        "scale": _string(body, "scale", default="small", choices=SCALES),
        "distance": _int(body, "distance", 4, 0, MAX_DISTANCE),
        "sfp": _bool(body, "sfp"),
        "pgu": _bool(body, "pgu"),
        "baseline": _bool(body, "baseline"),
    }


def build_options(spec: dict) -> SimOptions:
    """The :class:`SimOptions` a canonical simulate/profile spec names."""
    return SimOptions(
        distance=spec["distance"],
        sfp=SFPConfig() if spec["sfp"] else None,
        pgu=PGUConfig() if spec["pgu"] else None,
    )


def build_predictor(spec: dict):
    """A fresh predictor instance for a canonical spec (cheap)."""
    return make_predictor(spec["predictor"], entries=spec["entries"])


def _compile_config(spec: dict) -> str:
    return "baseline" if spec["baseline"] else "hyperblock"


def _stub(kind: str, label: str, spec: dict, matrix: dict) -> dict:
    """Payload-minus-metrics, shaped exactly like
    :meth:`repro.runstore.RunRecord.payload`."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "label": label,
        "scale": spec["scale"],
        "compile_config": _compile_config(spec),
        "matrix": matrix,
    }


# -- per-op canonicalizers ----------------------------------------------------


def canonicalize_simulate(body: dict) -> JobSpec:
    """Mirror of the CLI's ``repro simulate <workload> --record``.

    The matrix (workload name + ``predictor.describe()`` +
    ``options.describe()``) is byte-identical to what
    ``cli._cmd_simulate`` records, which is what makes daemon and serial
    runs share run ids.
    """
    body = _require_object(body)
    _unknown_fields(
        body,
        ("workload", "predictor", "entries", "scale", "distance",
         "sfp", "pgu", "baseline") + CONTROL_FIELDS,
    )
    spec = dict(_sim_fields(body), op="simulate")
    matrix = {
        "workload": spec["workload"],
        "predictor": build_predictor(spec).describe(),
        "frontend": build_options(spec).describe(),
    }
    stub = _stub("simulate", spec["workload"], spec, matrix)
    return JobSpec(
        op="simulate", spec=spec, stub=stub,
        request_key=request_key(stub),
        kind="simulate", label=spec["workload"],
    )


def canonicalize_profile(body: dict) -> JobSpec:
    """Simulate plus deterministic misprediction attribution."""
    body = _require_object(body)
    _unknown_fields(
        body,
        ("workload", "predictor", "entries", "scale", "distance",
         "sfp", "pgu", "baseline", "rate", "seed") + CONTROL_FIELDS,
    )
    spec = dict(
        _sim_fields(body),
        op="profile",
        rate=_int(body, "rate", 1, 1, 1 << 20),
        seed=_int(body, "seed", 0, 0, 1 << 30),
    )
    matrix = {
        "workload": spec["workload"],
        "predictor": build_predictor(spec).describe(),
        "frontend": build_options(spec).describe(),
        "profile": ProfileSpec(
            rate=spec["rate"], seed=spec["seed"]
        ).describe(),
    }
    stub = _stub("profile", spec["workload"], spec, matrix)
    return JobSpec(
        op="profile", spec=spec, stub=stub,
        request_key=request_key(stub),
        kind="profile", label=spec["workload"],
    )


def _predictor_axis(body: dict) -> List[dict]:
    raw = body.get("predictors", [{"name": "gshare"}])
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(
            "field 'predictors' must be a non-empty list",
            code="bad_type",
        )
    axis = []
    for item in raw:
        if isinstance(item, str):
            item = {"name": item}
        item = _require_object(item, "predictor entry")
        _unknown_fields(item, ("name", "entries"))
        axis.append({
            "name": _predictor_name(
                _string(item, "name", required=True)
            ),
            "entries": _int(item, "entries", 4096, 1, MAX_ENTRIES),
        })
    # Canonical order + dedup: re-ordered or repeated axes are the same
    # logical request, so they must hash identically.
    unique = {(p["name"], p["entries"]): p for p in axis}
    return [unique[key] for key in sorted(unique)]


def _options_axis(body: dict) -> List[dict]:
    raw = body.get("options", [{}])
    if not isinstance(raw, list) or not raw:
        raise ProtocolError(
            "field 'options' must be a non-empty list", code="bad_type",
        )
    axis = []
    for item in raw:
        item = _require_object(item, "options entry")
        _unknown_fields(item, ("distance", "sfp", "pgu"))
        axis.append({
            "distance": _int(item, "distance", 4, 0, MAX_DISTANCE),
            "sfp": _bool(item, "sfp"),
            "pgu": _bool(item, "pgu"),
        })
    unique = {
        (o["distance"], o["sfp"], o["pgu"]): o for o in axis
    }
    return [unique[key] for key in sorted(unique)]


def canonicalize_sweep(body: dict) -> JobSpec:
    """A (workloads x predictors x options) grid, run as one job."""
    body = _require_object(body)
    _unknown_fields(
        body,
        ("workloads", "predictors", "options", "scale", "baseline")
        + CONTROL_FIELDS,
    )
    raw_workloads = body.get("workloads")
    if not isinstance(raw_workloads, list) or not raw_workloads:
        raise ProtocolError(
            "field 'workloads' must be a non-empty list of workload "
            "names", code="bad_type",
        )
    workloads = []
    for name in raw_workloads:
        if not isinstance(name, str):
            raise ProtocolError(
                "field 'workloads' entries must be strings",
                code="bad_type",
            )
        if name not in workload_names():
            raise ProtocolError(
                f"unknown workload {name!r}", status=404,
                code="unknown_workload",
            )
        workloads.append(name)
    workloads = sorted(set(workloads))
    predictors = _predictor_axis(body)
    options = _options_axis(body)
    points = len(workloads) * len(predictors) * len(options)
    if points > MAX_SWEEP_POINTS:
        raise ProtocolError(
            f"sweep grid has {points} points; the service caps requests "
            f"at {MAX_SWEEP_POINTS} (split the grid across requests)",
            status=413, code="grid_too_large",
        )
    spec = {
        "op": "sweep",
        "workloads": workloads,
        "predictors": predictors,
        "options": options,
        "scale": _string(body, "scale", default="small",
                         choices=SCALES),
        "baseline": _bool(body, "baseline"),
    }
    matrix = {
        "workloads": workloads,
        "predictors": [
            make_predictor(p["name"], entries=p["entries"]).describe()
            for p in predictors
        ],
        "frontend": [
            SimOptions(
                distance=o["distance"],
                sfp=SFPConfig() if o["sfp"] else None,
                pgu=PGUConfig() if o["pgu"] else None,
            ).describe()
            for o in options
        ],
    }
    stub = _stub("sweep", "sweep", spec, matrix)
    return JobSpec(
        op="sweep", spec=spec, stub=stub,
        request_key=request_key(stub), kind="sweep", label="sweep",
    )


_CANONICALIZERS = {
    "simulate": canonicalize_simulate,
    "sweep": canonicalize_sweep,
    "profile": canonicalize_profile,
}


def canonicalize(op: str, body: dict) -> JobSpec:
    """Validate and canonicalize one request body for ``op``."""
    try:
        handler = _CANONICALIZERS[op]
    except KeyError:
        raise ProtocolError(
            f"unknown operation {op!r}; choose from {', '.join(OPS)}",
            status=404, code="unknown_operation",
        ) from None
    return handler(body)


def job_response(stub: dict, metrics: Dict[str, float], run_id: str,
                 cached: bool, sim_core: str = "") -> dict:
    """The deterministic result body for a finished or memoized job.

    Built from the record's payload layer only — no timestamps or wall
    times — so the body for a fresh run and for a later cache hit of the
    same request differ in exactly one field: ``cached``.
    """
    return {
        "status": "done",
        "cached": cached,
        "run_id": run_id,
        "request_key": request_key(stub),
        "kind": stub["kind"],
        "label": stub["label"],
        "scale": stub["scale"],
        "compile_config": stub["compile_config"],
        "matrix": stub["matrix"],
        "metrics": metrics,
        "sim_core": sim_core,
    }
