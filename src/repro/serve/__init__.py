"""Prediction-as-a-service: the ``repro serve`` daemon.

A long-running asyncio HTTP/JSON server that turns the simulation
harness into shared infrastructure: one warm trace cache and one
persistent process pool amortized across every request, and the
run-history store doubling as a content-addressed result cache —
an identical request is a :class:`~repro.runstore.RunStore` lookup,
not a re-simulation.

Layers (each its own module):

* :mod:`repro.serve.protocol` — request validation + canonicalization;
  the request-key/run-id memoization contract.
* :mod:`repro.serve.jobqueue` — bounded priority queue with per-client
  fairness, 429 backpressure and cancellation.
* :mod:`repro.serve.executor` — picklable job bodies run inside the
  pool; per-worker warm trace memo; core-knob threading.
* :mod:`repro.serve.server` — the HTTP daemon, dispatch loops,
  memoization and ``serve.*`` telemetry.
* :mod:`repro.serve.client` — sync and asyncio keep-alive clients.

See ``docs/serve.md`` for the API reference and semantics, and
``tools/loadtest_serve.py`` for the load-test harness.
"""

from repro.serve.client import AsyncServeClient, ServeClient, ServeUnavailable
from repro.serve.executor import execute_job, init_worker
from repro.serve.jobqueue import Job, JobQueue, QueueFull
from repro.serve.protocol import (
    OPS,
    JobSpec,
    ProtocolError,
    RequestControls,
    canonicalize,
    job_response,
    parse_controls,
)
from repro.serve.server import (
    ServeConfig,
    ServeServer,
    ServerThread,
    run_server,
)

__all__ = [
    "AsyncServeClient",
    "Job",
    "JobQueue",
    "JobSpec",
    "OPS",
    "ProtocolError",
    "QueueFull",
    "RequestControls",
    "ServeClient",
    "ServeConfig",
    "ServeServer",
    "ServeUnavailable",
    "ServerThread",
    "canonicalize",
    "execute_job",
    "init_worker",
    "job_response",
    "parse_controls",
    "run_server",
]
