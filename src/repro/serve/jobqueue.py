"""The daemon's job queue: priorities, per-client fairness, backpressure.

Scheduling is two-level:

* **priority** — jobs carry a small integer priority (0 most urgent);
  the dispatcher always drains the lowest occupied priority band first.
* **fairness** — inside one band each client gets its own FIFO lane and
  lanes are served round-robin, so a client that floods the queue with
  hundreds of jobs cannot starve a client that submitted one (it waits
  behind at most one job per competing client, not behind the flood).

Depth is bounded: :meth:`JobQueue.put` raises :class:`QueueFull` once
``max_depth`` jobs are queued-but-not-dispatched, which the server maps
to HTTP 429 with a ``Retry-After`` hint — load is shed at admission,
before it costs simulation time.

Cancellation is lazy: a cancelled job stays in its lane but is skipped
(and dropped) when the dispatcher reaches it, keeping cancel O(1).
"""

import asyncio
import itertools
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from repro.serve.protocol import JobSpec, RequestControls

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled"
)

#: States a job can no longer leave.
TERMINAL = (DONE, FAILED, CANCELLED)


class QueueFull(RuntimeError):
    """Admission refused: the queue is at ``max_depth``."""


@dataclass
class Job:
    """One admitted request, from queue to terminal state."""

    id: str
    spec: JobSpec
    controls: RequestControls
    client: str  #: fairness lane (request field or peer address)
    state: str = QUEUED
    #: monotonic timestamps; 0.0 until the transition happens
    enqueued_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: deterministic result body (protocol.job_response) once DONE
    result: Optional[dict] = None
    run_id: str = ""
    error: str = ""
    error_code: str = ""
    #: requests currently blocked on this job (coalesced duplicates)
    waiters: int = 0
    #: physically sitting in a queue lane (False once dispatched, even
    #: if the dispatcher has not yet marked it RUNNING)
    in_queue: bool = False
    #: trace context of the admitting request (a
    #: :class:`repro.telemetry.TraceContext`, when tracing is on) — the
    #: queue/execute/worker spans of this job all hang under it
    trace_ctx: Optional[object] = None
    #: wall-clock admission time (trace spans use wall time; the
    #: monotonic ``enqueued_at`` stays the latency arithmetic source)
    enqueued_wall: float = 0.0
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def queue_seconds(self) -> float:
        if not self.started_at:
            return 0.0
        return self.started_at - self.enqueued_at

    @property
    def exec_seconds(self) -> float:
        if not (self.started_at and self.finished_at):
            return 0.0
        return self.finished_at - self.started_at

    def describe(self) -> dict:
        """Status body for ``GET /v1/jobs/<id>``."""
        body = {
            "job_id": self.id,
            "op": self.spec.op,
            "request_key": self.spec.request_key,
            "state": self.state,
            "priority": self.controls.priority,
            "client": self.client,
            "queue_seconds": round(self.queue_seconds, 6),
            "exec_seconds": round(self.exec_seconds, 6),
        }
        if self.state == DONE and self.result is not None:
            body["result"] = self.result
        if self.state == FAILED:
            body["error"] = {
                "code": self.error_code or "job_failed",
                "message": self.error,
            }
        return body


class JobQueue:
    """Bounded, priority-banded, client-fair asyncio job queue."""

    def __init__(self, max_depth: int = 256):
        if max_depth < 1:
            raise ValueError(
                f"max_depth must be >= 1, got {max_depth}"
            )
        self.max_depth = max_depth
        #: priority -> client -> FIFO lane; OrderedDict gives the
        #: round-robin rotation order inside the band.
        self._bands: Dict[int, "OrderedDict[str, Deque[Job]]"] = {}
        self._depth = 0  #: live (non-cancelled) queued jobs
        self._available = asyncio.Event()
        self._ids = itertools.count(1)

    def next_id(self) -> str:
        return f"job-{next(self._ids):06d}"

    @property
    def depth(self) -> int:
        return self._depth

    def put(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`QueueFull`."""
        if self._depth >= self.max_depth:
            raise QueueFull(
                f"queue depth {self._depth} at limit {self.max_depth}"
            )
        band = self._bands.setdefault(
            job.controls.priority, OrderedDict()
        )
        band.setdefault(job.client, deque()).append(job)
        job.enqueued_at = time.monotonic()
        job.enqueued_wall = time.time()
        job.in_queue = True
        self._depth += 1
        self._available.set()

    async def get(self) -> Job:
        """Next runnable job: lowest priority band, round-robin lanes."""
        while True:
            job = self._pop()
            if job is not None:
                return job
            self._available.clear()
            await self._available.wait()

    def _pop(self) -> Optional[Job]:
        for priority in sorted(self._bands):
            band = self._bands[priority]
            while band:
                client, lane = next(iter(band.items()))
                # Rotate the lane to the back of the band first, so the
                # next pop in this band serves a different client even
                # if this lane still has jobs.
                band.move_to_end(client)
                while lane:
                    job = lane.popleft()
                    if not lane:
                        del band[client]
                    job.in_queue = False
                    if job.state == CANCELLED:
                        continue  # lazily dropped
                    self._depth -= 1
                    return job
                if client in band and not band[client]:
                    del band[client]
            if not band:
                del self._bands[priority]
        return None

    def lane_depths(self) -> Dict[str, int]:
        """Live queued jobs per ``p<priority>/<client>`` lane.

        The ``repro top`` dashboard renders this via ``/v1/healthz`` —
        it is the per-lane view behind the scalar :attr:`depth`.
        """
        depths: Dict[str, int] = {}
        for priority in sorted(self._bands):
            for client, lane in self._bands[priority].items():
                live = sum(
                    1 for job in lane if job.state != CANCELLED
                )
                if live:
                    depths[f"p{priority}/{client}"] = live
        return depths

    def cancel(self, job: Job) -> bool:
        """Cancel a queued job (running/terminal jobs are not touched).

        Works both for jobs still sitting in a lane (their admission
        slot is freed immediately; the dispatcher drops them lazily)
        and for jobs already popped but not yet running — e.g. held at
        the pause gate — whose slot was freed at pop time.
        """
        if job.state != QUEUED:
            return False
        job.state = CANCELLED
        job.finished_at = time.monotonic()
        if job.in_queue:
            self._depth -= 1
        job.done_event.set()
        return True
