"""Clients for the serve daemon: one sync, one asyncio.

:class:`ServeClient` wraps :mod:`http.client` with a persistent
keep-alive connection — the convenient interface for tests, scripts and
the CLI.  :class:`AsyncServeClient` speaks the same six routes over raw
``asyncio`` streams and is what the load-test harness fans out by the
hundred; each instance owns one keep-alive connection and is safe for
*sequential* use from one task.

Both return ``(status, body)`` pairs — the service always answers JSON —
and raise :class:`ServeUnavailable` when the daemon cannot be reached.
"""

import http.client
import json
import socket
from typing import Optional, Tuple

Reply = Tuple[int, dict]


class ServeUnavailable(ConnectionError):
    """The daemon could not be reached (refused, reset, timeout)."""


class ServeClient:
    """Synchronous keep-alive client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023,
                 timeout: float = 630.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, method: str, path: str,
                body: Optional[dict] = None) -> Reply:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        # One transparent retry on a fresh connection: a keep-alive
        # socket the server closed (idle timeout) raises on reuse.
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=payload,
                                   headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                return response.status, _decode(data)
            except (ConnectionError, http.client.HTTPException,
                    socket.timeout, OSError) as exc:
                self.close()
                if attempt:
                    raise ServeUnavailable(
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc

    # -- route helpers ----------------------------------------------------

    def submit(self, op: str, **fields) -> Reply:
        return self.request("POST", f"/v1/{op}", fields)

    def simulate(self, **fields) -> Reply:
        return self.submit("simulate", **fields)

    def sweep(self, **fields) -> Reply:
        return self.submit("sweep", **fields)

    def profile(self, **fields) -> Reply:
        return self.submit("profile", **fields)

    def job(self, job_id: str) -> Reply:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Reply:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def run(self, run_id: str) -> Reply:
        return self.request("GET", f"/v1/runs/{run_id}")

    def healthz(self) -> Reply:
        return self.request("GET", "/v1/healthz")

    def metrics(self) -> Reply:
        return self.request("GET", "/v1/metrics")

    def traces(self) -> Reply:
        return self.request("GET", "/v1/traces")

    def trace(self, trace_id: str) -> Reply:
        return self.request("GET", f"/v1/traces/{trace_id}")


class AsyncServeClient:
    """Asyncio keep-alive client (one connection, sequential requests)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8023):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def _connect(self) -> None:
        import asyncio

        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise ServeUnavailable(
                f"{self.host}:{self.port}: {exc}"
            ) from exc

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def request(self, method: str, path: str,
                      body: Optional[dict] = None) -> Reply:
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._roundtrip(method, path, payload)
            except (ConnectionError, EOFError, OSError) as exc:
                await self.close()
                if attempt:
                    raise ServeUnavailable(
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc

    async def _roundtrip(self, method, path, payload) -> Reply:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise EOFError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        keep_alive = True
        while True:
            header = await self._reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection":
                keep_alive = value.strip().lower() != "close"
        data = await self._reader.readexactly(length) if length else b""
        if not keep_alive:
            await self.close()
        return status, _decode(data)

    async def submit(self, op: str, **fields) -> Reply:
        return await self.request("POST", f"/v1/{op}", fields)

    async def job(self, job_id: str) -> Reply:
        return await self.request("GET", f"/v1/jobs/{job_id}")

    async def metrics(self) -> Reply:
        return await self.request("GET", "/v1/metrics")

    async def healthz(self) -> Reply:
        return await self.request("GET", "/v1/healthz")


def _decode(data: bytes) -> dict:
    if not data:
        return {}
    try:
        return json.loads(data)
    except json.JSONDecodeError:
        return {"raw": data.decode("latin-1", "replace")}
