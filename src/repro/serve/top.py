"""``repro top`` — a live terminal dashboard for one serve daemon.

Polls ``GET /v1/healthz`` and ``GET /v1/metrics`` every ``interval``
seconds and renders queue depth per lane, worker utilization, memo hit
ratio, request rate and latency percentiles with stdlib curses — no
dependencies, works over ssh.

The module is split so the interesting parts are testable without a
terminal: :func:`sample` fetches one snapshot, :func:`deltas` computes
the rates between two snapshots, :func:`render_lines` turns a snapshot
into the list of strings the curses loop (or ``--once`` plain mode)
prints.
"""

import time
from typing import Dict, List, Optional

from repro.serve.client import ServeClient, ServeUnavailable


def sample(client: ServeClient) -> dict:
    """One dashboard snapshot: healthz + metrics + a wall timestamp."""
    status, health = client.healthz()
    if status != 200:
        raise ServeUnavailable(f"healthz answered {status}")
    status, metrics = client.metrics()
    if status != 200:
        raise ServeUnavailable(f"metrics answered {status}")
    return {"at": time.monotonic(), "health": health,
            "metrics": metrics}


def _counter_total(metrics: dict, prefix: str) -> int:
    return sum(
        value for name, value in metrics.get("counters", {}).items()
        if name.startswith(prefix)
    )


def deltas(previous: Optional[dict], current: dict) -> Dict[str, float]:
    """Rates between two snapshots (zeros on the first sample)."""
    requests = _counter_total(current["metrics"], "serve.requests.")
    jobs = _counter_total(current["metrics"], "serve.jobs_completed")
    if previous is None:
        return {"rps": 0.0, "jobs_per_s": 0.0, "requests": requests}
    dt = max(1e-9, current["at"] - previous["at"])
    prev_requests = _counter_total(
        previous["metrics"], "serve.requests."
    )
    prev_jobs = _counter_total(
        previous["metrics"], "serve.jobs_completed"
    )
    return {
        "rps": (requests - prev_requests) / dt,
        "jobs_per_s": (jobs - prev_jobs) / dt,
        "requests": requests,
    }


def _bar(fraction: float, width: int = 20) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def _latency(metrics: dict, name: str) -> str:
    data = metrics.get("histograms", {}).get(name)
    if not data or not data.get("count"):
        return "p50 -       p95 -       p99 -"
    return (
        f"p50 {1e3 * data.get('p50', 0.0):8.2f}ms  "
        f"p95 {1e3 * data.get('p95', 0.0):8.2f}ms  "
        f"p99 {1e3 * data.get('p99', 0.0):8.2f}ms  "
        f"(n={data['count']})"
    )


def render_lines(snapshot: dict, rates: Dict[str, float]) -> List[str]:
    """The dashboard as plain strings — curses and ``--once`` share it."""
    health = snapshot["health"]
    metrics = snapshot["metrics"]
    counters = metrics.get("counters", {})
    workers = max(1, health.get("workers", 1))
    busy = health.get("busy_workers", 0)
    hits = counters.get("serve.cache_hit", 0)
    misses = counters.get("serve.cache_miss", 0)
    looked_up = hits + misses
    hit_ratio = hits / looked_up if looked_up else 0.0

    lines = [
        (
            f"repro top — {health.get('host', '?')} "
            f"pid {health.get('pid', '?')} "
            f"v{health.get('version', '?')} "
            f"core={health.get('core', '?')} "
            f"python {health.get('python', '?')} "
            f"up {health.get('uptime_seconds', 0.0):.0f}s"
        ),
        "",
        (
            f"requests  {rates.get('requests', 0):>8}  "
            f"rps {rates.get('rps', 0.0):7.1f}   "
            f"jobs/s {rates.get('jobs_per_s', 0.0):6.1f}   "
            f"failed {counters.get('serve.jobs_failed', 0)}"
        ),
        (
            f"workers   [{_bar(busy / workers)}] {busy}/{workers} busy"
        ),
        (
            f"memo      [{_bar(hit_ratio)}] "
            f"{100.0 * hit_ratio:5.1f}% hit "
            f"({hits} hit / {misses} miss, "
            f"{health.get('memo_entries', 0)} entries)"
        ),
        (
            f"queue     depth {health.get('queue_depth', 0)}  "
            f"inflight {health.get('inflight', 0)}  "
            f"coalesced {counters.get('serve.coalesced', 0)}  "
            f"rejected {counters.get('serve.rejected_queue_full', 0)}"
        ),
    ]
    lanes = health.get("queue_lanes", {}) or {}
    for lane, depth in sorted(lanes.items()):
        lines.append(f"  lane {lane:<24} {depth}")
    lines.extend([
        "",
        f"request   {_latency(metrics, 'serve.request_seconds')}",
        f"queue     {_latency(metrics, 'serve.queue_wait_seconds')}",
        f"execute   {_latency(metrics, 'serve.exec_seconds')}",
    ])
    if health.get("tracing"):
        lines.append("tracing   on (GET /v1/traces)")
    return lines


def run_top(host: str = "127.0.0.1", port: int = 8023,
            interval: float = 1.0, once: bool = False) -> int:
    """Entry point for ``repro top``; returns a process exit code."""
    client = ServeClient(host=host, port=port, timeout=10.0)
    try:
        snapshot = sample(client)
    except ServeUnavailable as exc:
        print(f"repro top: cannot reach daemon: {exc}")
        return 1
    rates = deltas(None, snapshot)
    if once:
        print("\n".join(render_lines(snapshot, rates)))
        return 0

    import curses

    def loop(screen) -> None:
        nonlocal snapshot, rates
        curses.curs_set(0)
        screen.timeout(int(interval * 1000))
        while True:
            screen.erase()
            height, width = screen.getmaxyx()
            for row, line in enumerate(render_lines(snapshot, rates)):
                if row >= height - 1:
                    break
                screen.addnstr(row, 0, line, width - 1)
            screen.addnstr(
                min(height - 1, len(render_lines(snapshot, rates)) + 1),
                0, "q to quit", width - 1,
            )
            screen.refresh()
            key = screen.getch()
            if key in (ord("q"), ord("Q")):
                return
            try:
                fresh = sample(client)
            except ServeUnavailable:
                continue  # daemon restarting; keep the last frame
            rates = deltas(snapshot, fresh)
            snapshot = fresh

    try:
        curses.wrapper(loop)
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
    return 0
