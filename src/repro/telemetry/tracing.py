"""Distributed tracing: trace-context propagation and span collection.

One request to the serve daemon — or one sweep grid point — crosses
several process boundaries: HTTP handler, job queue, pool worker,
simulation driver.  This module gives every such unit of work a
**trace context** (W3C-traceparent-style ``trace_id`` / ``span_id`` /
``parent_id``) that is carried across those boundaries explicitly, so
all the spans it produces reassemble into one tree no matter which
process timed them.

Design constraints, in order:

* **Deterministic span identity.**  Child span ids are *derived* —
  ``sha256(trace_id : parent_span_id : name : seq)`` truncated to 16 hex
  digits — never random.  A sweep run over 1 worker and over 4 workers
  produces the *same* span set (same ids, same parent links) because
  each grid point's context is derived from the sweep span and the
  point's canonical index, independent of scheduling.  Only timestamps
  differ.
* **Mergeable collection.**  Spans land in a :class:`SpanCollector` — a
  plain picklable list of JSON-ready dicts with a concatenating
  :meth:`~SpanCollector.merge`, mirroring how
  :class:`~repro.telemetry.MetricsRegistry` travels from sweep workers
  back to the parent.
* **Zero cost when off.**  Tracing defaults to disabled; every helper
  reduces to one flag check.  The existing
  :func:`~repro.telemetry.spans.span` timers pick tracing up
  automatically when it is on, so instrumented phases need no second
  annotation.

Propagation format is a W3C ``traceparent`` string,
``00-<trace_id:32hex>-<span_id:16hex>-01``, accepted from HTTP clients
and shipped verbatim through pool-worker arguments.
"""

import hashlib
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Environment knob: ``REPRO_TRACING=1`` turns tracing on at import.
TRACING_ENV = "REPRO_TRACING"

#: traceparent version prefix / flags we emit (always sampled).
_TP_VERSION = "00"
_TP_FLAGS = "01"


@dataclass(frozen=True)
class TraceContext:
    """Identity of one span: where its children hang in the tree."""

    trace_id: str  #: 32 lowercase hex chars, shared by the whole tree
    span_id: str  #: 16 lowercase hex chars, this span
    parent_id: str = ""  #: 16 hex chars, or "" for a root span

    def to_traceparent(self) -> str:
        return f"{_TP_VERSION}-{self.trace_id}-{self.span_id}-{_TP_FLAGS}"


def new_trace_id() -> str:
    """A fresh random 32-hex trace id (roots of *new* traces only)."""
    return uuid.uuid4().hex


def derive_span_id(trace_id: str, parent_id: str, name: str,
                   seq: int) -> str:
    """Deterministic child span id — pure function of the tree position.

    Two processes deriving the id for the same (parent, name, seq) get
    the same 16-hex digits, which is what makes 1-worker and N-worker
    runs produce identical span sets.
    """
    material = f"{trace_id}:{parent_id}:{name}:{seq}"
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def child_context(parent: TraceContext, name: str,
                  seq: int) -> TraceContext:
    """The context of ``parent``'s ``seq``-th child named ``name``."""
    return TraceContext(
        trace_id=parent.trace_id,
        span_id=derive_span_id(
            parent.trace_id, parent.span_id, name, seq
        ),
        parent_id=parent.span_id,
    )


def from_traceparent(value: str) -> TraceContext:
    """Parse a W3C traceparent string; raises ``ValueError`` if malformed."""
    parts = value.strip().split("-")
    if len(parts) != 4:
        raise ValueError(
            f"malformed traceparent {value!r} "
            "(want version-traceid-spanid-flags)"
        )
    version, trace_id, span_id, _flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        raise ValueError(f"malformed traceparent {value!r}")
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        raise ValueError(
            f"malformed traceparent {value!r} (non-hex ids)"
        ) from None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def make_record(ctx: TraceContext, name: str, start: float,
                seconds: float, attrs: Optional[dict] = None) -> dict:
    """One finished span as its JSONL dict.

    Identity fields (``trace_id``/``span_id``/``parent_id``/``name``/
    ``attrs``) are deterministic; ``start``/``seconds``/``pid`` are the
    per-run measurement and are excluded from
    :meth:`SpanCollector.identity`.
    """
    record = {
        "event": "trace-span",
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_id": ctx.parent_id,
        "name": name,
        "start": start,
        "seconds": seconds,
        "pid": os.getpid(),
    }
    if attrs:
        record["attrs"] = attrs
    return record


class SpanCollector:
    """A picklable bag of finished span records with deterministic merge.

    The cross-process protocol mirrors :class:`MetricsRegistry`: each
    worker collects into a fresh collector, ships it back pickled, and
    the parent merges in canonical point order.  Because span ids are
    derived (not random) and :meth:`canonical` sorts by
    ``(trace_id, span_id)``, the merged set is bit-identical however the
    work was scheduled — only timestamps and pids vary.
    """

    def __init__(self):
        self.records: List[dict] = []

    def add(self, record: dict) -> None:
        self.records.append(record)

    def merge(self, other: "SpanCollector") -> None:
        self.records.extend(other.records)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def canonical(self) -> List[dict]:
        """Records sorted by (trace_id, span_id) — scheduling-invariant."""
        return sorted(
            self.records,
            key=lambda r: (r["trace_id"], r["span_id"]),
        )

    def identity(self) -> List[Tuple[str, str, str, str]]:
        """The deterministic skeleton: sorted (trace, span, parent, name).

        Two runs of the same work agree on this exactly — it is the
        "same span set modulo timestamps" the merge tests assert.
        """
        return sorted(
            (r["trace_id"], r["span_id"], r["parent_id"], r["name"])
            for r in self.records
        )

    def traces(self) -> Dict[str, List[dict]]:
        """Records grouped by trace id, each group in canonical order."""
        grouped: Dict[str, List[dict]] = {}
        for record in self.canonical():
            grouped.setdefault(record["trace_id"], []).append(record)
        return grouped

    def write_jsonl(self, path) -> int:
        """Append canonical records to ``path`` (one JSON object/line)."""
        import json
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        records = self.canonical()
        with open(path, "a") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def read_spans(path) -> List[dict]:
    """Read span records back from a JSONL file (non-span lines skipped).

    Tolerates mixed streams: a ``--metrics`` file carries ``span`` and
    ``metrics`` events too, and a daemon trace log may be appended to
    by a still-running process (trailing partial line).
    """
    import json

    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (isinstance(event, dict)
                    and event.get("event") == "trace-span"):
                records.append(event)
    return records


# -- process-global tracing state ---------------------------------------------

#: Each frame is ``[context, next_child_seq]`` — the mutable seq gives
#: deterministic sibling numbering inside one thread.
_state = threading.local()
_GLOBAL_COLLECTOR = SpanCollector()
_TRACING = os.environ.get(TRACING_ENV, "").strip() == "1"


def tracing_enabled() -> bool:
    """Whether trace spans are recorded at all."""
    return _TRACING


def set_tracing(value: bool) -> None:
    global _TRACING
    _TRACING = bool(value)


@contextmanager
def use_tracing(value: bool = True):
    """Temporarily flip tracing on (or off) for the duration."""
    global _TRACING
    previous = _TRACING
    _TRACING = bool(value)
    try:
        yield
    finally:
        _TRACING = previous


def get_collector() -> SpanCollector:
    """The collector finished spans are currently recorded into."""
    # Explicit None test: an *empty* collector is falsy (__len__), and
    # falling back to the global one would silently drop its spans.
    collector = getattr(_state, "collector", None)
    return collector if collector is not None else _GLOBAL_COLLECTOR


def set_collector(collector: Optional[SpanCollector]) -> None:
    _state.collector = collector


@contextmanager
def use_collector(collector: SpanCollector):
    """Temporarily record spans into ``collector`` (nestable)."""
    previous = getattr(_state, "collector", None)
    _state.collector = collector
    try:
        yield collector
    finally:
        _state.collector = previous


def _frames() -> list:
    frames = getattr(_state, "frames", None)
    if frames is None:
        frames = _state.frames = []
    return frames


def current_context() -> Optional[TraceContext]:
    """The innermost open span's context on this thread (None if none)."""
    frames = getattr(_state, "frames", None)
    return frames[-1][0] if frames else None


@contextmanager
def use_context(ctx: TraceContext, next_seq: int = 0):
    """Install ``ctx`` as the root frame for the duration.

    This *replaces* the thread's frame stack (saving and restoring it),
    which is exactly what a worker wants: a sweep point or serve job
    runs under precisely the context its parent derived for it, with
    child numbering starting at ``next_seq`` — so the span tree a point
    produces is identical whether it ran in-process (under the parent's
    own stack) or in a pool worker (with no stack at all).
    """
    previous = getattr(_state, "frames", None)
    _state.frames = [[ctx, next_seq]]
    try:
        yield ctx
    finally:
        _state.frames = previous if previous is not None else []


def push_span(name: str) -> TraceContext:
    """Open a span named ``name`` under the current context.

    With no current context a new trace is rooted (random trace id).
    Returns the new span's context; pair with :func:`pop_span`.
    """
    frames = _frames()
    if frames:
        parent, seq = frames[-1][0], frames[-1][1]
        frames[-1][1] += 1
        ctx = child_context(parent, name, seq)
    else:
        trace_id = new_trace_id()
        ctx = TraceContext(
            trace_id=trace_id,
            span_id=derive_span_id(trace_id, "", name, 0),
        )
    frames.append([ctx, 0])
    return ctx


def pop_span(ctx: TraceContext, name: str, start: float,
             seconds: float, attrs: Optional[dict] = None) -> dict:
    """Close the span opened by :func:`push_span` and record it."""
    frames = _frames()
    if frames and frames[-1][0] is ctx:
        frames.pop()
    record = make_record(ctx, name, start, seconds, attrs)
    get_collector().add(record)
    return record


def record_span(ctx: TraceContext, name: str, start: float,
                seconds: float, attrs: Optional[dict] = None) -> dict:
    """Record a finished span directly (for async phases — e.g. a job's
    queue wait — whose lifetime cannot wrap a ``with`` block)."""
    record = make_record(ctx, name, start, seconds, attrs)
    get_collector().add(record)
    return record


@contextmanager
def trace_span(name: str, **attrs):
    """Record a trace span around a block — and nothing else.

    Unlike :func:`repro.telemetry.spans.span` this does *not* touch the
    metrics registry or the event sink, so it can annotate sites whose
    counter sets must stay unchanged (the simulation driver, the fast
    cores).  With tracing disabled it is a single flag check.
    """
    if not _TRACING:
        yield None
        return
    ctx = push_span(name)
    start = time.time()
    t0 = time.perf_counter()
    try:
        yield ctx
    finally:
        pop_span(
            ctx, name, start, time.perf_counter() - t0,
            attrs or None,
        )
