"""Render collected trace spans: tree, critical path, per-span self-time.

``repro trace show run-trace.jsonl`` reads the span JSONL a traced run
(or the serve daemon's ``--trace-log``) wrote and prints, per trace:

* the span **tree**, indented by parent links, with wall time, self
  time (own duration minus direct children) and the recording pid —
  the pid column is what makes the cross-process hand-offs visible;
* the **critical path** — from each root, repeatedly descend into the
  child that finished last — flagged with ``*`` in the tree and
  restated as a chain, since that is the chain a latency fix has to
  shorten.

Everything here is a pure function of the record list, so tests and
the slow-request log reuse the same renderer.
"""

from typing import Dict, List, Optional, Tuple


def _by_trace(records: List[dict]) -> Dict[str, List[dict]]:
    grouped: Dict[str, List[dict]] = {}
    for record in records:
        grouped.setdefault(record["trace_id"], []).append(record)
    return grouped


def build_tree(
    records: List[dict],
) -> Tuple[List[dict], Dict[str, List[dict]]]:
    """Roots and a parent->children map for one trace's records.

    A span whose ``parent_id`` is empty — or names a span that was never
    collected (its parent ran in a process whose collector was not
    merged) — counts as a root.  Children are ordered by start time,
    with the deterministic span id as tie-break.
    """
    ids = {record["span_id"] for record in records}
    roots: List[dict] = []
    children: Dict[str, List[dict]] = {}
    for record in records:
        parent = record.get("parent_id", "")
        if parent and parent in ids:
            children.setdefault(parent, []).append(record)
        else:
            roots.append(record)

    def order(record: dict):
        return (record.get("start", 0.0), record["span_id"])

    roots.sort(key=order)
    for siblings in children.values():
        siblings.sort(key=order)
    return roots, children


def self_seconds(record: dict,
                 children: Dict[str, List[dict]]) -> float:
    """Own duration minus the duration of direct children (floored at 0)."""
    own = record.get("seconds", 0.0)
    spent = sum(
        child.get("seconds", 0.0)
        for child in children.get(record["span_id"], [])
    )
    return max(0.0, own - spent)


def critical_path(root: dict,
                  children: Dict[str, List[dict]]) -> List[dict]:
    """From ``root`` down, always take the child that finished last."""
    path = [root]
    node = root
    while True:
        branch = children.get(node["span_id"])
        if not branch:
            return path
        node = max(
            branch,
            key=lambda r: (
                r.get("start", 0.0) + r.get("seconds", 0.0),
                r["span_id"],
            ),
        )
        path.append(node)


def render_trace(records: List[dict],
                 trace_id: Optional[str] = None) -> str:
    """Render the span tree(s) in ``records`` as text.

    With several traces present, ``trace_id`` picks one; by default all
    are rendered, separated by blank lines.
    """
    grouped = _by_trace(records)
    if trace_id is not None:
        if trace_id not in grouped:
            return f"(no spans for trace {trace_id})"
        grouped = {trace_id: grouped[trace_id]}
    if not grouped:
        return "(no trace spans)"

    sections = []
    for tid in sorted(grouped):
        trace = grouped[tid]
        roots, children = build_tree(trace)
        marked = set()
        chains = []
        for root in roots:
            chain = critical_path(root, children)
            chains.append(chain)
            marked.update(span["span_id"] for span in chain)

        lines = [f"trace {tid}  ({len(trace)} span(s))"]

        def walk(record: dict, depth: int) -> None:
            flag = "*" if record["span_id"] in marked else " "
            own = record.get("seconds", 0.0)
            self_s = self_seconds(record, children)
            attrs = record.get("attrs") or {}
            suffix = (
                "  " + " ".join(
                    f"{key}={value}"
                    for key, value in sorted(attrs.items())
                )
                if attrs else ""
            )
            lines.append(
                f"{flag} {'  ' * depth}{record['name']}"
                f"  {own * 1e3:10.3f} ms"
                f"  self {self_s * 1e3:9.3f} ms"
                f"  pid {record.get('pid', '?')}{suffix}"
            )
            for child in children.get(record["span_id"], []):
                walk(child, depth + 1)

        for root in roots:
            walk(root, 0)

        for chain in chains:
            total = sum(self_seconds(r, children) for r in chain)
            lines.append(
                "critical path: "
                + " -> ".join(span["name"] for span in chain)
                + f"  ({chain[0].get('seconds', 0.0) * 1e3:.3f} ms, "
                f"self-time sum {total * 1e3:.3f} ms)"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def render_trace_list(records: List[dict]) -> str:
    """One line per trace: id, root span, span count, wall time."""
    grouped = _by_trace(records)
    if not grouped:
        return "(no trace spans)"
    lines = []
    for tid in sorted(grouped):
        trace = grouped[tid]
        roots, _children = build_tree(trace)
        root_name = roots[0]["name"] if roots else "?"
        wall = max(
            (r.get("start", 0.0) + r.get("seconds", 0.0) for r in trace),
            default=0.0,
        ) - min((r.get("start", 0.0) for r in trace), default=0.0)
        lines.append(
            f"{tid}  root={root_name}  spans={len(trace)}"
            f"  wall={wall * 1e3:.3f} ms"
        )
    return "\n".join(lines)
