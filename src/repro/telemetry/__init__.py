"""Telemetry: metrics, span tracing and cross-process aggregation.

Three small pieces, composable and individually optional:

* :mod:`repro.telemetry.registry` — a process-local
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket
  histograms, with deterministic :meth:`~MetricsRegistry.merge` so sweep
  workers can ship their numbers back to the parent as pickled
  registries.
* :mod:`repro.telemetry.spans` — nestable :func:`span` timers for
  phase-level tracing (trace build → cache publish → sweep → sim →
  aggregate).
* :mod:`repro.telemetry.sinks` — pluggable event sinks.  The default is
  a :class:`NullSink`, so instrumented hot paths cost nothing until a
  real sink (:class:`MemorySink`, :class:`JsonlSink`) is installed.
* :mod:`repro.telemetry.tracing` — distributed trace contexts
  (trace_id / span_id / parent_id) propagated across process
  boundaries, collected into a mergeable :class:`SpanCollector`, and
  rendered by :mod:`repro.telemetry.traceview` (``repro trace show``).
* :mod:`repro.telemetry.prom` — Prometheus text exposition of a
  registry snapshot (``GET /metrics?format=prom``).

Typical use (what ``repro run E2 --metrics run.jsonl`` does)::

    from repro import telemetry

    registry = telemetry.MetricsRegistry()
    with telemetry.use_registry(registry), \\
            telemetry.JsonlSink("run.jsonl") as sink, \\
            telemetry.use_sink(sink):
        ...  # instrumented work
        sink.emit({"event": "metrics", **registry.snapshot()})

See ``docs/observability.md`` for metric names, the span hierarchy and
the JSONL schema.
"""

from repro.telemetry.prom import render_prometheus
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    PERCENTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    disabled,
    enabled,
    get_registry,
    set_enabled,
    set_registry,
    use_registry,
)
from repro.telemetry.report import (
    render_history_trend,
    render_profile_events,
    render_profile_markdown,
    render_report,
    summarize_events,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    get_sink,
    read_events,
    read_events_lenient,
    set_sink,
    use_sink,
)
from repro.telemetry.spans import current_path, span
from repro.telemetry.tracing import (
    SpanCollector,
    TraceContext,
    child_context,
    current_context,
    from_traceparent,
    get_collector,
    new_trace_id,
    read_spans,
    record_span,
    set_collector,
    set_tracing,
    trace_span,
    tracing_enabled,
    use_collector,
    use_context,
    use_tracing,
)
from repro.telemetry.traceview import (
    critical_path,
    render_trace,
    render_trace_list,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "PERCENTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "QuantileSketch",
    "Sink",
    "SpanCollector",
    "TraceContext",
    "child_context",
    "critical_path",
    "current_context",
    "current_path",
    "disabled",
    "enabled",
    "from_traceparent",
    "get_collector",
    "get_registry",
    "get_sink",
    "new_trace_id",
    "read_events",
    "read_events_lenient",
    "read_spans",
    "record_span",
    "render_history_trend",
    "render_profile_events",
    "render_profile_markdown",
    "render_prometheus",
    "render_report",
    "render_trace",
    "render_trace_list",
    "set_collector",
    "set_enabled",
    "set_registry",
    "set_sink",
    "set_tracing",
    "span",
    "summarize_events",
    "trace_span",
    "tracing_enabled",
    "use_collector",
    "use_context",
    "use_registry",
    "use_sink",
    "use_tracing",
]
