"""Telemetry: metrics, span tracing and cross-process aggregation.

Three small pieces, composable and individually optional:

* :mod:`repro.telemetry.registry` — a process-local
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket
  histograms, with deterministic :meth:`~MetricsRegistry.merge` so sweep
  workers can ship their numbers back to the parent as pickled
  registries.
* :mod:`repro.telemetry.spans` — nestable :func:`span` timers for
  phase-level tracing (trace build → cache publish → sweep → sim →
  aggregate).
* :mod:`repro.telemetry.sinks` — pluggable event sinks.  The default is
  a :class:`NullSink`, so instrumented hot paths cost nothing until a
  real sink (:class:`MemorySink`, :class:`JsonlSink`) is installed.

Typical use (what ``repro run E2 --metrics run.jsonl`` does)::

    from repro import telemetry

    registry = telemetry.MetricsRegistry()
    with telemetry.use_registry(registry), \\
            telemetry.JsonlSink("run.jsonl") as sink, \\
            telemetry.use_sink(sink):
        ...  # instrumented work
        sink.emit({"event": "metrics", **registry.snapshot()})

See ``docs/observability.md`` for metric names, the span hierarchy and
the JSONL schema.
"""

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled,
    enabled,
    get_registry,
    set_enabled,
    set_registry,
    use_registry,
)
from repro.telemetry.report import (
    render_history_trend,
    render_profile_events,
    render_profile_markdown,
    render_report,
    summarize_events,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    Sink,
    get_sink,
    read_events,
    read_events_lenient,
    set_sink,
    use_sink,
)
from repro.telemetry.spans import current_path, span

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "Sink",
    "current_path",
    "disabled",
    "enabled",
    "get_registry",
    "get_sink",
    "read_events",
    "read_events_lenient",
    "render_history_trend",
    "render_profile_events",
    "render_profile_markdown",
    "render_report",
    "set_enabled",
    "set_registry",
    "set_sink",
    "span",
    "summarize_events",
    "use_registry",
    "use_sink",
]
